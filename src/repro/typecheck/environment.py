"""Typing environments (contexts) for the refinement checker.

An :class:`Environment` is an immutable sequence of variable bindings plus
path assumptions (branch guards).  Three projections of it drive the
reduction to Horn constraints:

* :meth:`Environment.embedding` — the premises every subtyping obligation
  inherits: each scalar binding ``x : {B | psi}`` contributes ``[x/nu]psi``
  and each assumption contributes itself (``⟦Γ⟧`` in Sec. 3.5 of the
  paper);
* :meth:`Environment.scope_candidates` — the formulas allowed to fill
  qualifier placeholders when a fresh predicate unknown is created here
  (the liquid abstraction of Sec. 3.6);
* :meth:`Environment.sort_scope` — the sort context used to check
  well-formedness of refinements written at this point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..logic.formulas import Formula, Var, is_true
from ..logic.sorts import Sort
from ..logic.substitution import instantiate_value_var, substitute
from ..logic.transform import free_vars
from ..syntax.types import RType, ScalarType, TypeSchema, substitute_in_type, type_free_vars

#: What an environment may bind a name to.
Binding = Union[RType, TypeSchema]


@dataclass(frozen=True)
class Environment:
    """An immutable typing context; extension returns a new environment."""

    bindings: Tuple[Tuple[str, Binding], ...] = ()
    assumptions: Tuple[Formula, ...] = ()

    # -- construction --------------------------------------------------------

    def bind(self, name: str, rtype: Binding) -> "Environment":
        """Extend with ``name : rtype`` (shadowing any earlier binding)."""
        return Environment(self.bindings + ((name, rtype),), self.assumptions)

    def bind_all(self, pairs: "Tuple[Tuple[str, RType], ...]") -> "Environment":
        """Extend with several dependent bindings, in order."""
        env = self
        for name, rtype in pairs:
            env = env.bind(name, rtype)
        return env

    def assume(self, guard: Formula) -> "Environment":
        """Extend with a path condition (a branch guard)."""
        if is_true(guard):
            return self
        return Environment(self.bindings, self.assumptions + (guard,))

    def unshadow(self, name: str) -> "Tuple[Environment, Dict[str, Formula]]":
        """Alpha-rename an existing scalar binding of ``name`` out of the
        way of a new binder of the same name.

        Returns the renamed environment and the substitution the caller
        must apply to any types it captured under the old name (empty when
        nothing scalar was shadowed).  Without this, a binder reusing an
        in-scope name would capture the context's facts about the outer
        variable — branch guards recorded by conditionals, refinements of
        other bindings — and the checker would certify unsound programs.
        """
        bound = self.lookup(name)
        if not isinstance(bound, ScalarType):
            # Nothing scalar to protect: refinements and guards can only
            # mention scalar-typed variables, so plain shadowing is sound.
            return self, {}
        avoid = {bound_name for bound_name, _ in self.bindings}
        for assumption in self.assumptions:
            avoid |= free_vars(assumption)
        for _, rtype in self.bindings:
            body = rtype.body if isinstance(rtype, TypeSchema) else rtype
            avoid |= type_free_vars(body)
        fresh = name
        while fresh in avoid:
            fresh += "'"
        mapping: Dict[str, Formula] = {name: Var(fresh, bound.sort)}
        bindings = []
        for bound_name, rtype in self.bindings:
            if isinstance(rtype, TypeSchema):
                rtype = TypeSchema(
                    rtype.type_vars,
                    rtype.pred_vars,
                    substitute_in_type(rtype.body, mapping),
                )
            else:
                rtype = substitute_in_type(rtype, mapping)
            bindings.append((fresh if bound_name == name else bound_name, rtype))
        assumptions = tuple(substitute(a, mapping) for a in self.assumptions)
        return Environment(tuple(bindings), assumptions), mapping

    # -- queries -------------------------------------------------------------

    def lookup(self, name: str) -> Optional[Binding]:
        """The latest binding of ``name``, or ``None``."""
        for bound_name, rtype in reversed(self.bindings):
            if bound_name == name:
                return rtype
        return None

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def _effective(self) -> Iterator[Tuple[str, Binding]]:
        """Bindings with shadowing resolved (latest value, stable order)."""
        effective: Dict[str, Binding] = {}
        for name, rtype in self.bindings:
            effective[name] = rtype
        seen = set()
        for name, _ in self.bindings:
            if name not in seen:
                seen.add(name)
                yield name, effective[name]

    def scalar_bindings(self) -> Iterator[Tuple[str, ScalarType]]:
        """The scalar-typed bindings, shadowing resolved."""
        for name, rtype in self._effective():
            if isinstance(rtype, ScalarType):
                yield name, rtype

    def effective_bindings(self) -> Iterator[Tuple[str, Binding]]:
        """Every binding with shadowing resolved — the component pool the
        synthesis enumerator draws atoms and application heads from."""
        yield from self._effective()

    # -- projections into the refinement logic -------------------------------

    def sort_scope(self) -> Dict[str, Sort]:
        """Sorts of the scalar-typed variables in scope."""
        return {name: scalar.sort for name, scalar in self.scalar_bindings()}

    def scope_candidates(self) -> List[Formula]:
        """The variables available to instantiate qualifier placeholders."""
        return [Var(name, scalar.sort) for name, scalar in self.scalar_bindings()]

    def embedding(self) -> List[Formula]:
        """The formulas this context contributes as premises: ``[x/nu]psi``
        for every scalar binding ``x : {B | psi}``, then the assumptions."""
        premises: List[Formula] = []
        for name, scalar in self.scalar_bindings():
            if not is_true(scalar.refinement):
                premises.append(instantiate_value_var(scalar.refinement, Var(name, scalar.sort)))
        premises.extend(self.assumptions)
        return premises


#: The empty context.
EMPTY = Environment()
