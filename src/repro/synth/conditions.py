"""Condition abduction for branching programs (Sec. 5.2 of the paper).

When no single E-term satisfies a goal everywhere, the synthesizer splits
the input space with a conditional.  Rather than enumerating guard and
branches together, the paper *abduces* the guard from a branch candidate:
the candidate is checked under a fresh predicate unknown ``C`` assumed as
a path condition (``Γ; C ⊢ e :: T``), and the Horn system is then solved
for the **weakest** valuation of ``C`` — the weakest formula in the
qualifier space under which the branch checks.  ``C``'s space is
instantiated from the variables in scope exactly like a liquid refinement
(:meth:`~repro.typecheck.session.TypecheckSession.fresh_unknown`, no value
variable), so abduction reuses the same unknowns, spaces, and incremental
backend as ordinary liquid inference.

Because ``C`` occurs only in premises (a *negative* position), the
greatest-fixpoint solver cannot weaken it — and a greedy subset
minimization of the strongest valuation is order-fragile (it can return a
minimal-but-strong conjunction such as ``x == 0 && y == 0`` where
``y <= x`` suffices).  Weakest-first search does the right thing: try
conjunctions of the space smallest-first (the empty conjunction is
``True``; then single qualifiers; then pairs, up to ``max_conjuncts``),
accepting the first one that validates every constraint *and* is
consistent with the environment.  Smaller conjunctions are logically
weaker, so the first hit is the weakest abducible condition up to the
space's granularity.  Inconsistent conditions are rejected because they
validate the branch vacuously and no executable guard can establish them.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

from ..horn.constraints import substitute_unknowns
from ..horn.solver import HornSolver
from ..horn.spaces import QualifierSpace
from ..logic import ops
from ..logic.formulas import Formula
from ..syntax.terms import Term
from ..syntax.types import RType
from ..typecheck.environment import Environment
from ..typecheck.errors import TypecheckError
from ..typecheck.session import TypecheckSession


@dataclass(frozen=True)
class AbducedCondition:
    """The weakest path condition under which a branch candidate checks.

    ``qualifiers`` is the abduced conjunction, smallest-first search order;
    an empty tuple means the candidate checks unconditionally.
    """

    qualifiers: Tuple[Formula, ...]

    @property
    def formula(self) -> Formula:
        return ops.conj(self.qualifiers)

    def is_trivial(self) -> bool:
        """Does the candidate check under no assumption at all?"""
        return not self.qualifiers


def abduce_condition(
    session: TypecheckSession,
    env: Environment,
    candidate: Term,
    goal: RType,
    where: str = "abduce",
    max_conjuncts: int = 2,
) -> Optional[AbducedCondition]:
    """The weakest qualifier-space condition validating ``candidate``
    against ``goal``, or ``None`` when no consistent condition of at most
    ``max_conjuncts`` qualifiers does.

    The candidate's constraints are collected in a trial scope (no
    residue); the weakest-first search then re-solves the system once per
    tentative condition, every query running on the session's shared
    incremental backend.
    """
    with session.trial():
        unknown = session.fresh_unknown(env, None, kind="C")
        space = session.spaces[unknown.name].qualifiers
        try:
            session.check(env.assume(unknown), candidate, goal, where)
        except TypecheckError:
            return None
        constraints = list(session.constraints)
        other_spaces: Dict[str, QualifierSpace] = {
            name: qspace
            for name, qspace in session.spaces.items()
            if name != unknown.name
        }

    solver = HornSolver(session.backend)
    context = env.embedding()
    for size in range(0, max_conjuncts + 1):
        for subset in combinations(space, size):
            if subset and not _consistent(session, context, subset):
                continue
            condition = {unknown.name: ops.conj(subset)}
            grounded = [substitute_unknowns(constr, condition) for constr in constraints]
            if solver.solve(grounded, other_spaces).solved:
                return AbducedCondition(subset)
    return None


def _consistent(
    session: TypecheckSession, context: List[Formula], subset: Sequence[Formula]
) -> bool:
    """Is the tentative condition satisfiable together with the context?"""
    premises = list(context) + list(subset)
    return not session.backend.is_valid_implication(premises, ops.bool_lit(False))
