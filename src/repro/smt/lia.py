"""Linear integer arithmetic over conjunctions of literals.

The theory solver receives a conjunction of linear constraints (produced by
the purifier in ``repro.smt.theory``) and decides feasibility.  The decision
procedure is Fourier–Motzkin elimination over the rationals with integer
tightening of strict inequalities and Gaussian substitution of equalities;
disequalities are handled by case splitting.

Soundness note (documented in DESIGN.md): an *infeasible* verdict is always
correct (rational infeasibility implies integer infeasibility), which is the
direction refinement-type soundness depends on — ``Valid(phi)`` is decided as
``not Sat(not phi)``.  A *feasible* verdict can in rare corner cases (for
example ``2*x == 1``) be rationally feasible but integer-infeasible; this can
only make the type checker reject a correct program, never accept a wrong
one.  The benchmark suite's constraints are unit-coefficient, where the
procedure is exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple


class Relation(enum.Enum):
    """Relation of a linear constraint ``expr REL 0``."""

    LE = "<="
    EQ = "=="
    NEQ = "!="


@dataclass(frozen=True)
class LinearExpr:
    """A linear expression ``sum(coeff * var) + constant``.

    Coefficients are :class:`fractions.Fraction` so eliminations stay exact.
    """

    coefficients: Tuple[Tuple[str, Fraction], ...] = ()
    constant: Fraction = Fraction(0)

    @staticmethod
    def from_dict(coefficients: Dict[str, Fraction], constant: Fraction) -> "LinearExpr":
        """Build an expression, dropping zero coefficients and fixing order."""
        cleaned = tuple(
            sorted((name, coeff) for name, coeff in coefficients.items() if coeff != 0)
        )
        return LinearExpr(cleaned, constant)

    @staticmethod
    def constant_expr(value: int) -> "LinearExpr":
        """The constant expression ``value``."""
        return LinearExpr((), Fraction(value))

    @staticmethod
    def variable(name: str) -> "LinearExpr":
        """The expression consisting of a single variable."""
        return LinearExpr(((name, Fraction(1)),), Fraction(0))

    def as_dict(self) -> Dict[str, Fraction]:
        """Coefficients as a mutable dictionary."""
        return dict(self.coefficients)

    def scale(self, factor: Fraction) -> "LinearExpr":
        """Multiply the whole expression by ``factor``."""
        return LinearExpr.from_dict(
            {name: coeff * factor for name, coeff in self.coefficients},
            self.constant * factor,
        )

    def add(self, other: "LinearExpr") -> "LinearExpr":
        """Pointwise sum of two expressions."""
        coefficients = self.as_dict()
        for name, coeff in other.coefficients:
            coefficients[name] = coefficients.get(name, Fraction(0)) + coeff
        return LinearExpr.from_dict(coefficients, self.constant + other.constant)

    def subtract(self, other: "LinearExpr") -> "LinearExpr":
        """Pointwise difference of two expressions."""
        return self.add(other.scale(Fraction(-1)))

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of ``name`` (zero if absent)."""
        return dict(self.coefficients).get(name, Fraction(0))

    def variables(self) -> List[str]:
        """Names of variables with non-zero coefficients."""
        return [name for name, _ in self.coefficients]

    def is_constant(self) -> bool:
        """Does the expression mention no variables?"""
        return not self.coefficients


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr REL 0``."""

    expr: LinearExpr
    relation: Relation

    def variables(self) -> List[str]:
        """Variables mentioned by the constraint."""
        return self.expr.variables()


def le(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs <= rhs``."""
    return Constraint(lhs.subtract(rhs), Relation.LE)


def lt(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs < rhs`` tightened over the integers to ``lhs + 1 <= rhs``."""
    return Constraint(lhs.subtract(rhs).add(LinearExpr.constant_expr(1)), Relation.LE)


def eq(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs == rhs``."""
    return Constraint(lhs.subtract(rhs), Relation.EQ)


def neq(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs != rhs``."""
    return Constraint(lhs.subtract(rhs), Relation.NEQ)


class LiaSolver:
    """Feasibility checking for conjunctions of linear integer constraints."""

    #: Safety cap on Fourier–Motzkin growth; queries stay far below it.
    MAX_INEQUALITIES = 20_000

    def is_feasible(self, constraints: Sequence[Constraint]) -> bool:
        """Is the conjunction of ``constraints`` satisfiable?"""
        return self._solve(list(constraints))

    # -- internals ---------------------------------------------------------

    def _solve(self, constraints: List[Constraint]) -> bool:
        # Split on the first disequality, if any.
        for index, constraint in enumerate(constraints):
            if constraint.relation is Relation.NEQ:
                rest = constraints[:index] + constraints[index + 1:]
                strictly_less = Constraint(
                    constraint.expr.add(LinearExpr.constant_expr(1)), Relation.LE
                )
                strictly_greater = Constraint(
                    constraint.expr.scale(Fraction(-1)).add(LinearExpr.constant_expr(1)),
                    Relation.LE,
                )
                return self._solve(rest + [strictly_less]) or self._solve(
                    rest + [strictly_greater]
                )

        # Eliminate equalities by substitution (or split into two inequalities
        # when no unit coefficient is available).
        for index, constraint in enumerate(constraints):
            if constraint.relation is Relation.EQ:
                rest = constraints[:index] + constraints[index + 1:]
                if constraint.expr.is_constant():
                    if constraint.expr.constant != 0:
                        return False
                    return self._solve(rest)
                substituted = self._substitute_equality(constraint, rest)
                if substituted is not None:
                    return self._solve(substituted)
                as_inequalities = [
                    Constraint(constraint.expr, Relation.LE),
                    Constraint(constraint.expr.scale(Fraction(-1)), Relation.LE),
                ]
                return self._solve(rest + as_inequalities)

        inequalities = [c.expr for c in constraints]
        return self._fourier_motzkin(inequalities)

    @staticmethod
    def _substitute_equality(
        equality: Constraint, others: List[Constraint]
    ) -> Optional[List[Constraint]]:
        """Solve ``equality`` for one of its variables and substitute it away.

        Any variable can be isolated because coefficients are rational; the
        substitution preserves rational feasibility exactly.
        """
        expr = equality.expr
        if not expr.coefficients:
            return None
        name, coeff = expr.coefficients[0]
        # name = -(rest)/coeff
        rest = LinearExpr.from_dict(
            {n: c for n, c in expr.coefficients if n != name}, expr.constant
        )
        replacement = rest.scale(Fraction(-1) / coeff)

        def substitute(target: LinearExpr) -> LinearExpr:
            c = target.coefficient(name)
            if c == 0:
                return target
            without = LinearExpr.from_dict(
                {n: k for n, k in target.coefficients if n != name}, target.constant
            )
            return without.add(replacement.scale(c))

        return [Constraint(substitute(c.expr), c.relation) for c in others]

    def _fourier_motzkin(self, inequalities: List[LinearExpr]) -> bool:
        """Rational feasibility of ``expr <= 0`` constraints by elimination."""
        inequalities = list(inequalities)
        while True:
            # Constant rows are decided immediately.
            remaining: List[LinearExpr] = []
            for expr in inequalities:
                if expr.is_constant():
                    if expr.constant > 0:
                        return False
                else:
                    remaining.append(expr)
            inequalities = remaining
            if not inequalities:
                return True

            variable = self._pick_variable(inequalities)
            lower, upper, unrelated = [], [], []
            for expr in inequalities:
                coeff = expr.coefficient(variable)
                if coeff > 0:
                    upper.append(expr)       # variable <= bound
                elif coeff < 0:
                    lower.append(expr)       # bound <= variable
                else:
                    unrelated.append(expr)

            combined: List[LinearExpr] = []
            for up in upper:
                for low in lower:
                    up_coeff = up.coefficient(variable)
                    low_coeff = -low.coefficient(variable)
                    merged = up.scale(low_coeff).add(low.scale(up_coeff))
                    combined.append(merged)
            inequalities = unrelated + combined
            if len(inequalities) > self.MAX_INEQUALITIES:
                # Give up on proving infeasibility; "feasible" is the safe
                # (sound) answer for validity checking.
                return True

    @staticmethod
    def _pick_variable(inequalities: List[LinearExpr]) -> str:
        """Choose the variable whose elimination creates the fewest rows."""
        occurrences: Dict[str, Tuple[int, int]] = {}
        for expr in inequalities:
            for name, coeff in expr.coefficients:
                lower, upper = occurrences.get(name, (0, 0))
                if coeff < 0:
                    occurrences[name] = (lower + 1, upper)
                else:
                    occurrences[name] = (lower, upper + 1)
        return min(occurrences, key=lambda n: occurrences[n][0] * occurrences[n][1])
