"""Formula simplification.

The simplifier performs cheap, purely syntactic rewrites (constant folding,
unit laws, flattening of equal operands).  It is used to keep verification
conditions small before they reach the SMT substrate and to normalise
abduced branch conditions before they are turned into program guards.
"""

from __future__ import annotations

from typing import List

from . import ops
from .formulas import (
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    Unary,
    UnaryOp,
    is_true,
)
from .transform import transform


def simplify(formula: Formula) -> Formula:
    """Apply local simplification rules bottom-up until no rule applies."""
    previous = None
    current = formula
    # The rule set strictly decreases formula size, so this terminates fast.
    while previous != current:
        previous = current
        current = transform(current, _simplify_node)
    return current


def _simplify_node(node: Formula) -> Formula:
    if isinstance(node, Unary):
        if node.op is UnaryOp.NOT:
            return ops.not_(node.arg)
        return ops.neg(node.arg)
    if isinstance(node, Binary):
        return _simplify_binary(node)
    return node


def _simplify_binary(node: Binary) -> Formula:
    lhs, rhs, op = node.lhs, node.rhs, node.op
    builders = {
        BinaryOp.AND: ops.and_,
        BinaryOp.OR: ops.or_,
        BinaryOp.IMPLIES: ops.implies,
        BinaryOp.IFF: ops.iff,
        BinaryOp.PLUS: ops.plus,
        BinaryOp.MINUS: ops.minus,
        BinaryOp.TIMES: ops.times,
        BinaryOp.LT: ops.lt,
        BinaryOp.LE: ops.le,
        BinaryOp.GT: ops.gt,
        BinaryOp.GE: ops.ge,
        BinaryOp.EQ: ops.eq,
        BinaryOp.NEQ: ops.neq,
        BinaryOp.UNION: ops.union,
    }
    builder = builders.get(op)
    if builder is None:
        return node
    rebuilt = builder(lhs, rhs)
    return rebuilt


def conjuncts(formula: Formula) -> List[Formula]:
    """Split a formula into its top-level conjuncts (dropping ``True``)."""
    result: List[Formula] = []

    def walk(node: Formula) -> None:
        if isinstance(node, Binary) and node.op is BinaryOp.AND:
            walk(node.lhs)
            walk(node.rhs)
        elif not is_true(node):
            result.append(node)

    walk(formula)
    return result


def negation_normal_form(formula: Formula) -> Formula:
    """Push negations to the atoms (used by the SMT preprocessor)."""
    return _nnf(formula, positive=True)


def _nnf(formula: Formula, positive: bool) -> Formula:
    if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
        return _nnf(formula.arg, not positive)
    if isinstance(formula, BoolLit):
        return ops.bool_lit(formula.value if positive else not formula.value)
    if isinstance(formula, Binary):
        op = formula.op
        if op is BinaryOp.AND:
            combine = ops.and_ if positive else ops.or_
            return combine(_nnf(formula.lhs, positive), _nnf(formula.rhs, positive))
        if op is BinaryOp.OR:
            combine = ops.or_ if positive else ops.and_
            return combine(_nnf(formula.lhs, positive), _nnf(formula.rhs, positive))
        if op is BinaryOp.IMPLIES:
            if positive:
                return ops.or_(_nnf(formula.lhs, False), _nnf(formula.rhs, True))
            return ops.and_(_nnf(formula.lhs, True), _nnf(formula.rhs, False))
        if op is BinaryOp.IFF:
            both = ops.and_(
                ops.implies(formula.lhs, formula.rhs),
                ops.implies(formula.rhs, formula.lhs),
            )
            return _nnf(both, positive)
    # Atom (comparison, equality, membership, unknown, variable...).
    return formula if positive else ops.not_(formula)
