"""The command-line driver: ``python -m repro {check,synth} file.sq``.

A ``.sq`` file interleaves ``data`` / ``measure`` declarations, component
signatures ``name :: type``, checked definitions ``name = term``, and
synthesis goals ``name = ??`` (see :func:`repro.syntax.parser.
parse_program` for the exact layout rules).  ``check`` runs every
definition through the refinement type checker against its signature;
``synth`` runs the round-trip synthesizer on every goal, prints the
programs it finds together with enumeration statistics, and re-checks
each one through the ordinary checker before reporting success.

Exit codes: ``0`` — everything checked / every goal synthesized and
verified; ``1`` — a definition was refuted or a goal was not synthesized;
``2`` — usage errors, unreadable files, or parse errors.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, TextIO

from .horn.solver import SolveOptions
from .syntax.parser import ParseError, Program, parse_program
from .syntax.types import generalize
from .synth.synthesizer import SynthesisGoal, Synthesizer, describe_goal
from .typecheck.environment import EMPTY
from .typecheck.errors import TypecheckError
from .typecheck.session import TypecheckSession

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2


class _CliError(Exception):
    """A user-facing failure with an exit code."""

    def __init__(self, message: str, code: int = EXIT_USAGE) -> None:
        super().__init__(message)
        self.code = code


def _load_program(path: str) -> Program:
    try:
        with open(path, "r") as handle:
            source = handle.read()
    except OSError as error:
        raise _CliError(f"cannot read {path}: {error.strerror or error}") from error
    try:
        return parse_program(source)
    except ParseError as error:
        raise _CliError(f"{path}: parse error: {error}") from error


def _component_environment(program: Program, upto: str):
    """A fresh session and environment for checking or synthesizing the
    item named ``upto``: constructors plus every signature declared
    *before* it in the file (so later components cannot be assumed —
    recursion goes through ``fix`` and its termination metric instead)."""
    session = TypecheckSession(
        datatypes=program.datatypes.values(),
        measure_defs=program.measures.values(),
    )
    env = session.bind_constructors(EMPTY)
    for name, rtype in program.signatures.items():
        if name == upto:
            break
        env = env.bind(name, generalize(rtype))
    return session, env


def _run_check(program: Program, path: str, args, out: TextIO) -> int:
    options = SolveOptions(max_workers=args.workers)
    failures = 0
    for name, term in program.definitions.items():
        session, env = _component_environment(program, name)
        goal = program.signatures[name]
        try:
            session.check_program(term, goal, env, where=name)
            outcome = session.solve(options)
        except TypecheckError as error:
            print(f"{name}: REJECTED — {error}", file=out)
            failures += 1
            continue
        if outcome.solved:
            print(f"{name}: OK", file=out)
        else:
            print(f"{name}: REJECTED — {outcome.error_message}", file=out)
            failures += 1
    for name in program.goals:
        print(f"{name}: skipped (synthesis goal; run `synth`)", file=out)
    if not program.definitions:
        # A file of signatures and goals is valid input with nothing to do —
        # not an error (the exit-code contract reserves 1 for refutations).
        print(f"{path}: no definitions to check (only signatures or goals)", file=out)
    return EXIT_FAILURE if failures else EXIT_OK


def _run_synth(program: Program, path: str, args, out: TextIO) -> int:
    goals: List[str] = list(program.goals)
    if args.only is not None:
        if args.only not in program.signatures:
            raise _CliError(f"{path}: no signature for goal `{args.only}`")
        goals = [args.only]
    if not goals:
        print(f"{path}: no synthesis goals (write `name = ??` after a signature)", file=out)
        return EXIT_FAILURE
    failures = 0
    for name in goals:
        # Every *other* signature in the file is a component — the same
        # pool the scriptable API and the benchmarks use.  (Definitions
        # are still checked in declaration order by `check`; synthesis
        # trusts signatures, so order does not matter here.)
        goal = SynthesisGoal.from_program(program, name)
        print(f"synthesizing {describe_goal(goal)}", file=out)
        synthesizer = Synthesizer(
            goal,
            max_depth=args.depth,
            max_conditionals=args.max_conditionals,
            max_matches=args.max_matches,
        )
        result = synthesizer.synthesize()
        if not result.solved:
            print(f"  {result.reason}", file=out)
            failures += 1
            continue
        print(result.pretty(), file=out)
        if not args.quiet:
            stats = result.statistics
            print(
                f"  candidates generated: {stats.generated}, "
                f"pruned early: {stats.pruned_early} "
                f"(+{stats.pruned_shape} by shape), "
                f"local checks: {stats.checked}, "
                f"goal checks: {stats.goal_checks}, "
                f"abductions: {stats.abductions}, "
                f"verified: {'yes' if result.verified else 'NO'}",
                file=out,
            )
        if not result.verified:
            print(f"  {name}: synthesized program failed re-checking", file=out)
            failures += 1
    return EXIT_FAILURE if failures else EXIT_OK


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Refinement-type checking and round-trip program synthesis.",
    )
    commands = parser.add_subparsers(dest="command", metavar="{check,synth}")
    check = commands.add_parser(
        "check", help="type-check every definition in a .sq file against its signature"
    )
    check.add_argument("file", help="the .sq source file")
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the candidate-set Horn portfolio (default 1 = serial)",
    )
    synth = commands.add_parser("synth", help="synthesize every `name = ??` goal in a .sq file")
    synth.add_argument("file", help="the .sq source file")
    synth.add_argument(
        "--depth", type=int, default=4, help="E-term enumeration depth bound (default 4)"
    )
    synth.add_argument(
        "--max-conditionals",
        type=int,
        default=1,
        help="how many nested abduced conditionals to allow (default 1)",
    )
    synth.add_argument(
        "--max-matches",
        type=int,
        default=1,
        help="how many nested matches to allow (default 1)",
    )
    synth.add_argument("--only", metavar="NAME", help="synthesize just this goal")
    synth.add_argument(
        "--quiet", action="store_true", help="suppress the enumeration statistics line"
    )
    return parser


def main(argv: Optional[List[str]] = None, out: TextIO = sys.stdout) -> int:
    """Entry point; returns the process exit code (see module docstring)."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse already printed a usage or "invalid choice" message.
        code = exit_.code
        return EXIT_OK if code in (0, None) else EXIT_USAGE
    if args.command is None:
        parser.print_usage(sys.stderr)
        print("error: expected a subcommand: check or synth", file=sys.stderr)
        return EXIT_USAGE
    try:
        program = _load_program(args.file)
        if args.command == "check":
            return _run_check(program, args.file, args, out)
        return _run_synth(program, args.file, args, out)
    except _CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
