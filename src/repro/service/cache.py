"""The persistent content-addressed result cache.

Every service query — ``check`` or ``synth`` over a parsed ``.sq``
program — is keyed by a *stable digest*: the SHA-256 of the program's
canonical pretty-printed form (declarations, signatures, definitions and
goals re-rendered from the interned formulas, so whitespace, comments and
formula interning order cannot perturb the key), the verb, the solver
options, and a schema/version salt.  Two processes that parse the same
program — in any order, under any ``PYTHONHASHSEED`` — derive the same
key; bumping :data:`CACHE_SCHEMA_VERSION` (or the package version)
invalidates every persisted entry at once, because old entries simply
stop being addressed.

Entries are JSON files under ``<cache_dir>/objects/<digest[:2]>/``,
written atomically (temp file + rename) and validated on read: a
corrupted or schema-mismatched entry is treated as a miss, counted, and
deleted so it can be recomputed.  The cache never changes *what* a query
answers — payloads are exactly the structures a fresh computation
produces, so serial CLI output is byte-identical with and without it —
only how fast.  Eviction is size-bounded: when ``max_entries`` is
exceeded the oldest entries (by file modification time) are dropped.

Next to the result objects lives the :class:`LemmaStore`: the pool of
alpha-canonical theory lemmas exported from
:meth:`repro.smt.solver.IncrementalSolver.export_theory_lemmas`.  Lemmas
are valid sentences of the pure theory, independent of any query, so the
pool is shared across all keys — a warm worker imports it at startup and
merges what it learned back after serving.  (The pool is pickled —
formulas already define cross-process ``__reduce__`` for the portfolio —
so treat the cache directory with the trust you would give any local
build cache.)
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..syntax.datatypes import pretty_datatype, pretty_measure
from ..syntax.parser import Program
from ..syntax.terms import pretty_term
from ..syntax.types import pretty_type
from ..testing import faults
from ..version import package_version

#: Bump to invalidate every persisted cache entry (schema salt).
#: v2: synth payload statistics gained ``depth_reached``.
CACHE_SCHEMA_VERSION = 2

#: Default location, overridable per invocation (``--cache-dir``) or via
#: the ``REPRO_CACHE_DIR`` environment variable.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> str:
    """The cache directory the CLI verbs use unless told otherwise."""
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


def canonical_program_text(program: Program) -> str:
    """The program re-rendered from its parsed (interned) form.

    Declaration kinds are emitted in a fixed order but *within* a kind the
    file order is kept: signature order is semantically significant (the
    ``check`` component environment binds earlier signatures only), so two
    programs that differ in it must not share a key.
    """
    lines: List[str] = []
    for datatype in program.datatypes.values():
        lines.append(pretty_datatype(datatype))
    for measure in program.measures.values():
        lines.append(pretty_measure(measure))
    for name, rtype in program.signatures.items():
        lines.append(f"{name} :: {pretty_type(rtype)}")
    for name, term in program.definitions.items():
        lines.append(f"{name} = {pretty_term(term)}")
    for name in program.goals:
        lines.append(f"{name} = ??")
    return "\n".join(lines)


def program_digest(program: Program) -> str:
    """The content address of a program alone (lemma-pool grouping key)."""
    return hashlib.sha256(canonical_program_text(program).encode()).hexdigest()


def query_digest(verb: str, program: Program, options: Dict[str, object]) -> str:
    """The full cache key of one query: program + verb + options + salt."""
    payload = "\n\x00".join(
        (
            f"repro-cache/v{CACHE_SCHEMA_VERSION}/{package_version()}",
            verb,
            json.dumps(options, sort_keys=True),
            canonical_program_text(program),
        )
    )
    return hashlib.sha256(payload.encode()).hexdigest()


class ResultCache:
    """Content-addressed result store with hit/miss/evict counters.

    Thread-safe: the service's batch pipeline and the threaded HTTP server
    share one instance across workers.
    """

    def __init__(self, root: os.PathLike, max_entries: int = 4096) -> None:
        self.root = Path(root)
        self.objects = self.root / "objects"
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.corrupt = 0
        self._lock = threading.Lock()
        self.objects.mkdir(parents=True, exist_ok=True)

    # -- result objects ------------------------------------------------------

    def _path(self, digest: str) -> Path:
        return self.objects / digest[:2] / f"{digest}.json"

    def get(self, digest: str) -> Optional[dict]:
        """The stored payload for ``digest``, or ``None`` on a miss.

        A file that cannot be parsed, or whose recorded schema/digest does
        not match, counts as corrupt: it is removed and reported as a miss
        so the caller recomputes (and rewrites) the entry.
        """
        path = self._path(digest)
        try:
            entry = json.loads(path.read_text())
            if faults.maybe_fire("cache.corrupt-read"):
                raise ValueError("injected: cache entry corrupted mid-read")
            payload = entry["payload"]
            ok = entry["schema"] == CACHE_SCHEMA_VERSION and entry["digest"] == digest
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            ok, payload = False, None
        if not ok:
            with self._lock:
                self.corrupt += 1
                self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        with self._lock:
            self.hits += 1
        return payload

    def put(self, digest: str, payload: dict) -> None:
        """Persist ``payload`` under ``digest`` (atomic write + eviction)."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "digest": digest, "payload": payload},
            sort_keys=True,
        )
        _atomic_write(path, body.encode())
        with self._lock:
            self.puts += 1
        self._evict_overflow()

    def _evict_overflow(self) -> None:
        entries = sorted(
            self.objects.glob("*/*.json"), key=lambda p: (p.stat().st_mtime, p.name)
        )
        excess = len(entries) - self.max_entries
        for path in entries[: max(0, excess)]:
            try:
                path.unlink()
            except OSError:
                continue
            with self._lock:
                self.evictions += 1

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """The counters every surface (``/stats``, batch summary) reports."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "corrupt": self.corrupt,
                "entries": sum(1 for _ in self.objects.glob("*/*.json")),
            }


#: One exported lemma: ``(atom, polarity)`` pairs in alpha-canonical form.
LemmaLike = Tuple[Tuple[object, bool], ...]


class LemmaStore:
    """The cross-run pool of alpha-canonical theory lemmas.

    Unlike result objects the pool is not keyed per query — canonical
    lemmas are valid for *every* query — so one bounded pickle file serves
    the whole cache directory.  A pool that fails to unpickle is dropped
    (warm-start is an optimization, never a correctness dependency).
    """

    def __init__(self, root: os.PathLike, max_lemmas: int = 1024) -> None:
        self.path = Path(root) / f"lemmas.v{CACHE_SCHEMA_VERSION}.pickle"
        self.max_lemmas = max_lemmas
        self.corrupt = 0

    def load(self) -> List[LemmaLike]:
        try:
            pool = pickle.loads(self.path.read_bytes())
            if not isinstance(pool, list):
                raise ValueError("lemma pool is not a list")
            return pool
        except FileNotFoundError:
            return []
        except Exception:
            self.corrupt += 1
            try:
                self.path.unlink()
            except OSError:
                pass
            return []

    def merge(self, lemmas: Sequence[LemmaLike]) -> int:
        """Union ``lemmas`` into the pool on disk; returns the new total."""
        pool = self.load()
        seen = {repr(lemma) for lemma in pool}
        for lemma in lemmas:
            key = repr(lemma)
            if key not in seen:
                seen.add(key)
                pool.append(lemma)
        pool = pool[-self.max_lemmas :]
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write(self.path, pickle.dumps(pool))
        return len(pool)


def _atomic_write(path: Path, data: bytes) -> None:
    handle, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-")
    try:
        with os.fdopen(handle, "wb") as stream:
            stream.write(data)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def open_cache(
    cache_dir: Optional[str], enabled: bool = True
) -> Tuple[Optional[ResultCache], Optional[LemmaStore]]:
    """The (cache, lemma store) pair a CLI verb or server should use.

    ``enabled=False`` (``--no-cache``) yields ``(None, None)``: callers
    treat a ``None`` cache as compute-always, which is exactly the fresh
    path — the differential guarantee that cached and uncached runs agree
    falls out of rendering both from the same payload structures.
    """
    if not enabled:
        return None, None
    root = Path(cache_dir if cache_dir is not None else default_cache_dir())
    return ResultCache(root), LemmaStore(root)
