#!/usr/bin/env python
"""Per-file coverage floors on top of a ``coverage json`` report.

The global ``--cov-fail-under`` gate can mask a critical file going dark
as long as the rest of the tree compensates; this check pins named files
to their own floors.  CI runs it right after pytest-cov::

    python scripts/check_file_coverage.py --report coverage.json \\
        --require src/repro/synth/conditions.py=90

Each ``--require`` is ``<path>=<min percent>`` with the path as recorded
in the report (repo-relative).  Exit code 1 when any file is below its
floor or missing from the report entirely (a renamed file silently
escaping its floor must fail, not pass).
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path


def parse_requirement(spec: str):
    path, _, floor = spec.rpartition("=")
    if not path:
        raise argparse.ArgumentTypeError(f"expected <path>=<min percent>, got {spec!r}")
    return path, float(floor)


def file_percent(report: dict, path: str):
    """The line coverage percent of ``path`` in the report, or ``None``."""
    files = report.get("files", {})
    entry = files.get(path)
    if entry is None:
        # coverage.py keys by the measured path; tolerate os-specific
        # separators and leading "./" without guessing further.
        normalized = {name.replace("\\", "/").lstrip("./"): value for name, value in files.items()}
        entry = normalized.get(path.replace("\\", "/").lstrip("./"))
    if entry is None:
        return None
    return entry["summary"]["percent_covered"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--report", type=Path, default=Path("coverage.json"))
    parser.add_argument(
        "--require",
        action="append",
        type=parse_requirement,
        required=True,
        metavar="PATH=PCT",
        help="file-level floor, e.g. src/repro/synth/conditions.py=90 (repeatable)",
    )
    args = parser.parse_args()

    report = json.loads(args.report.read_text())
    failures = []
    lines = []
    for path, floor in args.require:
        percent = file_percent(report, path)
        if percent is None:
            failures.append(f"{path} missing from {args.report}")
            continue
        lines.append(f"{path} {percent:.1f}% (floor {floor:.0f}%)")
        if percent < floor:
            failures.append(f"{path} {percent:.2f}% < {floor:.2f}%")

    verdict = "FAIL" if failures else "OK"
    detail = "; ".join(failures if failures else lines)
    print(f"file coverage [{args.report}]: {verdict} — {detail}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
