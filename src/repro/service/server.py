"""The synthesis service: a long-running stdlib HTTP/JSON server.

``python -m repro serve`` boots a :class:`ThreadingHTTPServer` (no
dependencies beyond the standard library) that keeps one warm
:class:`~repro.service.worker.WarmStack` alive across requests and
answers four routes:

===========  ======  ====================================================
``/healthz``  GET    liveness: ``{"status": "ok", "version": ...}``
``/stats``    GET    cache + worker counters (hits, misses, queries, ...)
``/check``    POST   ``{"program": "<.sq source>", "workers"?: int}``
``/synth``    POST   ``{"program": "<.sq source>", "only"?, "depth"?,
                     "max_conditionals"?, "max_matches"?, "recheck"?}``
===========  ======  ====================================================

POST responses wrap the ordinary query payloads (see
:mod:`repro.service.api`) as ``{"digest", "cached", "result"}`` — the
same structures the CLI renders, so a client can diff server answers
against local runs byte for byte.  Errors are JSON too: ``400`` for a
malformed body, a parse error, or an unknown goal; ``404`` for any other
path; ``500`` for an unexpected solver crash (the warm stack has already
been reset by then).

**Deadlines.** ``--request-timeout`` arms every POST with a wall-clock
budget (a per-request ``"timeout_ms"`` body field tightens it further);
the budget propagates through every solver layer via
:mod:`repro.limits`.  A query that degrades into a partial payload
(``result["timeout"]``) or trips outright is answered ``503`` with
``{"error", "timeout": true, ...}`` plus whatever partial results and
stats were gathered — the same degradation contract the CLI renders.
On ``SIGTERM`` the server stops accepting connections, drains in-flight
requests (bounded), flushes lemmas, and exits 0.

Solver work is serialized through the stack's lock (the SAT core is
single-threaded state); the threaded server still overlaps request I/O,
and cached answers never touch the solver at all.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple

from .. import limits
from ..syntax.parser import ParseError, parse_program
from ..version import package_version
from . import api
from .cache import LemmaStore, ResultCache, open_cache
from .worker import WarmStack

#: Request bodies beyond this are rejected outright (64 MiB of ``.sq``
#: source is not a synthesis query, it is a mistake).
MAX_BODY_BYTES = 64 * 1024 * 1024


class _BadRequest(Exception):
    """A client error: reported as a 400 with the message as JSON."""


class ServiceHandler(BaseHTTPRequestHandler):
    """One request against the shared :class:`ReproServer` state."""

    server_version = f"repro-service/{package_version()}"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _json_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0 or length > MAX_BODY_BYTES:
            raise _BadRequest("expected a JSON body with Content-Length")
        try:
            body = json.loads(self.rfile.read(length))
        except ValueError as error:
            raise _BadRequest(f"malformed JSON body: {error}") from error
        if not isinstance(body, dict):
            raise _BadRequest("JSON body must be an object")
        return body

    def _program(self, body: dict):
        source = body.get("program")
        if not isinstance(source, str):
            raise _BadRequest("missing `program`: the .sq source text")
        try:
            return parse_program(source)
        except ParseError as error:
            raise _BadRequest(f"parse error: {error}") from error

    @staticmethod
    def _int(body: dict, key: str, default: int) -> int:
        value = body.get(key, default)
        if not isinstance(value, int) or isinstance(value, bool):
            raise _BadRequest(f"`{key}` must be an integer")
        return value

    def _timeout_ms(self, body: dict) -> Optional[float]:
        """The request's wall-clock budget: the tighter of the server's
        ``--request-timeout`` and the body's ``timeout_ms``, if any."""
        value = body.get("timeout_ms")
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0
        ):
            raise _BadRequest("`timeout_ms` must be a positive number")
        server_default = getattr(self.server, "request_timeout_ms", None)
        candidates = [t for t in (value, server_default) if t is not None]
        return min(candidates) if candidates else None

    def _budget(self, body: dict) -> Optional[limits.Budget]:
        timeout_ms = self._timeout_ms(body)
        return limits.Budget.from_timeout_ms(timeout_ms) if timeout_ms else None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            self._reply(200, {"status": "ok", "version": package_version()})
        elif self.path == "/stats":
            self._reply(200, self.server.service_stats())
        else:
            self._reply(404, {"error": f"no such route: {self.path}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        server: ReproServer = self.server
        server.request_started()
        try:
            if self.path == "/check":
                self._reply(*self._handle_check(self._json_body()))
            elif self.path == "/synth":
                self._reply(*self._handle_synth(self._json_body()))
            else:
                self._reply(404, {"error": f"no such route: {self.path}"})
        except _BadRequest as error:
            self._reply(400, {"error": str(error)})
        except limits.BudgetExhausted as exhausted:
            # The budget tripped outside the degradation paths the query
            # layer absorbs (e.g. mid-setup): still a structured answer.
            self._reply(503, self._timeout_body(exhausted))
        except Exception as error:  # noqa: BLE001 - the server must survive
            self._reply(500, {"error": f"internal error: {error}"})
        finally:
            server.request_finished()

    def _timeout_body(self, exhausted: limits.BudgetExhausted) -> dict:
        return {
            "error": str(exhausted),
            "timeout": True,
            "limit": exhausted.limit,
            "progress": dict(exhausted.progress),
            "stats": self.server.service_stats(),
        }

    def _finish(self, payload: dict, cached: bool, digest: str) -> Tuple[int, dict]:
        """Wrap a query payload; a degraded (timed-out) one answers 503."""
        body = {"digest": digest, "cached": cached, "result": payload}
        if payload.get("timeout"):
            body["timeout"] = True
            body["stats"] = self.server.service_stats()
            return 503, body
        return 200, body

    def _handle_check(self, body: dict) -> Tuple[int, dict]:
        program = self._program(body)
        workers = self._int(body, "workers", 1)
        server: ReproServer = self.server
        with limits.budget_scope(self._budget(body)):
            with server.stack.query() as backend:
                payload, cached, digest = api.check_query(
                    program, workers=workers, cache=server.cache, backend=backend
                )
        server.stack.flush_lemmas()
        return self._finish(payload, cached, digest)

    def _handle_synth(self, body: dict) -> Tuple[int, dict]:
        program = self._program(body)
        only = body.get("only")
        if only is not None and not isinstance(only, str):
            raise _BadRequest("`only` must be a goal name")
        server: ReproServer = self.server
        try:
            with limits.budget_scope(self._budget(body)):
                with server.stack.query() as backend:
                    payload, cached, digest = api.synth_query(
                        program,
                        only=only,
                        depth=self._int(body, "depth", 4),
                        max_conditionals=self._int(body, "max_conditionals", 2),
                        max_matches=self._int(body, "max_matches", 1),
                        cache=server.cache,
                        backend=backend,
                        recheck=bool(body.get("recheck", False)),
                    )
        except api.UnknownGoal as error:
            raise _BadRequest(f"no signature for goal `{error}`") from error
        server.stack.flush_lemmas()
        return self._finish(payload, cached, digest)


class ReproServer(ThreadingHTTPServer):
    """The service process: HTTP front, one warm stack, one cache."""

    daemon_threads = True

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8729,
        cache: Optional[ResultCache] = None,
        lemma_store: Optional[LemmaStore] = None,
        verbose: bool = False,
        request_timeout_ms: Optional[float] = None,
    ) -> None:
        super().__init__((host, port), ServiceHandler)
        self.cache = cache
        self.verbose = verbose
        self.request_timeout_ms = request_timeout_ms
        self.stack = WarmStack(lemma_store)
        self._inflight = 0
        self._inflight_lock = threading.Lock()

    # Handler threads are daemons (a wedged request must not block
    # shutdown), so graceful drain is tracked by hand:

    def request_started(self) -> None:
        with self._inflight_lock:
            self._inflight += 1

    def request_finished(self) -> None:
        with self._inflight_lock:
            self._inflight -= 1

    def inflight(self) -> int:
        with self._inflight_lock:
            return self._inflight

    def drain(self, grace_s: float = 5.0) -> bool:
        """Wait (bounded) for in-flight requests; True if all finished."""
        deadline = time.monotonic() + grace_s
        while self.inflight() > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        return self.inflight() == 0

    def service_stats(self) -> dict:
        return {
            "version": package_version(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "worker": self.stack.stats(),
            "inflight": self.inflight(),
        }


def serve(
    host: str = "127.0.0.1",
    port: int = 8729,
    cache_dir: Optional[str] = None,
    no_cache: bool = False,
    verbose: bool = False,
    out=None,
    request_timeout_ms: Optional[float] = None,
) -> int:
    """Run the service until interrupted (the ``serve`` verb's body).

    ``SIGTERM`` (when running on the main thread — tests boot the server
    from a worker thread, where installing handlers is illegal) triggers
    a graceful stop: no new connections, a bounded drain of in-flight
    requests, one final lemma flush.
    """
    cache, lemma_store = open_cache(cache_dir, enabled=not no_cache)
    server = ReproServer(
        host, port, cache, lemma_store, verbose, request_timeout_ms=request_timeout_ms
    )
    if out is not None:
        where = cache.root if cache is not None else "disabled"
        print(f"repro service on http://{host}:{server.server_port} (cache: {where})", file=out)
        out.flush()

    previous_handler = None
    if threading.current_thread() is threading.main_thread():

        def _terminate(signum, frame):
            # shutdown() blocks until serve_forever() exits, so it must
            # run off the serving thread.
            threading.Thread(target=server.shutdown, daemon=True).start()

        previous_handler = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.drain()
        server.stack.flush_lemmas()
        server.server_close()
    return 0
