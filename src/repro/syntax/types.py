"""Refinement types of the program language (Fig. 2 of the paper).

The grammar distinguishes *base types* from *types*:

.. code-block:: text

    B ::= Int | Bool | D T1 ... Tk | alpha          (base types)
    T ::= {B | psi} | x:T -> T                      (scalar / dependent arrow)
    S ::= T | forall alpha. S | forall P :: Δ. S    (type schemas)

A scalar type ``{B | psi}`` refines the base ``B`` with a formula over the
program variables in scope and the value variable ``nu``; an arrow
``x:T1 -> T2`` binds ``x`` in the refinements of ``T2`` (dependent
function types).  Schemas add type polymorphism and *predicate
polymorphism*: a quantified predicate variable ``P`` of signature ``Δ``
stands for an unknown refinement, instantiated by the type checker with a
fresh :class:`~repro.logic.formulas.Unknown` whose valuation the Horn
solver discovers.

Contextual types ``<x1:T1, ...; T>`` (Sec. 3.2) package a type together
with bindings for fresh variables its refinements mention — the checker
produces them when the result of a dependent application names an argument
that is not a pure variable.

All nodes are immutable; :func:`substitute_in_type` is the capture-avoiding
substitution on refinements used by dependent application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Set, Tuple, Union

from ..logic import ops
from ..logic.formulas import TRUE, VALUE_VAR, Formula, Unknown, Var, is_true
from ..logic.sorts import BOOL, INT, Sort, UninterpretedSort, VarSort
from ..logic.substitution import substitute
from ..logic.transform import free_vars, transform

# ---------------------------------------------------------------------------
# base types
# ---------------------------------------------------------------------------


class BaseType:
    """Base class of base types ``B``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return pretty_base(self)


@dataclass(frozen=True, repr=False)
class IntBase(BaseType):
    """The base type ``Int``."""


@dataclass(frozen=True, repr=False)
class BoolBase(BaseType):
    """The base type ``Bool``."""


@dataclass(frozen=True, repr=False)
class DataBase(BaseType):
    """A datatype ``D T1 ... Tk`` applied to refinement-type arguments."""

    name: str
    args: Tuple["RType", ...] = ()


@dataclass(frozen=True, repr=False)
class TypeVarBase(BaseType):
    """A type variable ``alpha``."""

    name: str


INT_BASE = IntBase()
BOOL_BASE = BoolBase()


def base_sort(base: BaseType) -> Sort:
    """The refinement-logic sort of values of a base type."""
    if isinstance(base, IntBase):
        return INT
    if isinstance(base, BoolBase):
        return BOOL
    if isinstance(base, TypeVarBase):
        return VarSort(base.name)
    if isinstance(base, DataBase):
        return UninterpretedSort(
            base.name,
            tuple(base_sort(arg.base) for arg in base.args if isinstance(arg, ScalarType)),
        )
    raise TypeError(f"unknown base type: {base!r}")


# ---------------------------------------------------------------------------
# types
# ---------------------------------------------------------------------------


class RType:
    """Base class of refinement types ``T``."""

    def is_scalar(self) -> bool:
        return isinstance(self, ScalarType)

    def is_function(self) -> bool:
        return isinstance(self, FunctionType)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return pretty_type(self)


@dataclass(frozen=True, repr=False)
class ScalarType(RType):
    """A refined base type ``{B | psi}``; ``psi`` mentions ``nu``."""

    base: BaseType
    refinement: Formula = TRUE

    @property
    def sort(self) -> Sort:
        """The sort of the value variable of this scalar."""
        return base_sort(self.base)


@dataclass(frozen=True, repr=False)
class FunctionType(RType):
    """A dependent arrow ``x:T1 -> T2``; ``x`` scopes over ``T2``."""

    arg_name: str
    arg_type: RType
    result_type: RType


@dataclass(frozen=True, repr=False)
class ContextualType(RType):
    """``<bindings; body>``: a type whose refinements mention the bound
    fresh variables (Sec. 3.2).  Bindings are ordered and dependent: each
    binding's type may mention the variables bound before it."""

    bindings: Tuple[Tuple[str, RType], ...]
    body: RType


def int_type(refinement: Formula = TRUE) -> ScalarType:
    """The scalar ``{Int | refinement}``."""
    return ScalarType(INT_BASE, refinement)


def bool_type(refinement: Formula = TRUE) -> ScalarType:
    """The scalar ``{Bool | refinement}``."""
    return ScalarType(BOOL_BASE, refinement)


def data_type(name: str, args: Iterable[RType] = (), refinement: Formula = TRUE) -> ScalarType:
    """The scalar ``{D T1 ... Tk | refinement}``."""
    return ScalarType(DataBase(name, tuple(args)), refinement)


def type_var(name: str, refinement: Formula = TRUE) -> ScalarType:
    """The scalar ``{alpha | refinement}``."""
    return ScalarType(TypeVarBase(name), refinement)


def arrow(arg_name: str, arg_type: RType, result_type: RType) -> FunctionType:
    """The dependent arrow ``arg_name:arg_type -> result_type``."""
    return FunctionType(arg_name, arg_type, result_type)


def shape(rtype: RType) -> RType:
    """Erase every refinement, keeping the simple-type skeleton."""
    if isinstance(rtype, ScalarType):
        base = rtype.base
        if isinstance(base, DataBase):
            base = DataBase(base.name, tuple(shape(arg) for arg in base.args))
        return ScalarType(base, TRUE)
    if isinstance(rtype, FunctionType):
        return FunctionType(rtype.arg_name, shape(rtype.arg_type), shape(rtype.result_type))
    if isinstance(rtype, ContextualType):
        return shape(rtype.body)
    raise TypeError(f"unknown type node: {rtype!r}")


def same_shape(lhs: RType, rhs: RType) -> bool:
    """Do two types share a simple-type skeleton (up to type variables and
    binder names)?"""
    if isinstance(lhs, ContextualType):
        return same_shape(lhs.body, rhs)
    if isinstance(rhs, ContextualType):
        return same_shape(lhs, rhs.body)
    if isinstance(lhs, ScalarType) and isinstance(rhs, ScalarType):
        if isinstance(lhs.base, TypeVarBase) or isinstance(rhs.base, TypeVarBase):
            return True
        if isinstance(lhs.base, DataBase) and isinstance(rhs.base, DataBase):
            return lhs.base.name == rhs.base.name and len(lhs.base.args) == len(rhs.base.args)
        return type(lhs.base) is type(rhs.base)
    if isinstance(lhs, FunctionType) and isinstance(rhs, FunctionType):
        return same_shape(lhs.arg_type, rhs.arg_type) and same_shape(
            lhs.result_type, rhs.result_type
        )
    return False


# ---------------------------------------------------------------------------
# substitution on refinements (dependent application)
# ---------------------------------------------------------------------------


def type_free_vars(rtype: RType) -> Set[str]:
    """Variables free in the refinements of a type (binders excluded)."""
    if isinstance(rtype, ScalarType):
        result = free_vars(rtype.refinement) - {VALUE_VAR}
        if isinstance(rtype.base, DataBase):
            for arg in rtype.base.args:
                result |= type_free_vars(arg)
        return result
    if isinstance(rtype, FunctionType):
        result = type_free_vars(rtype.arg_type)
        result |= type_free_vars(rtype.result_type) - {rtype.arg_name}
        return result
    if isinstance(rtype, ContextualType):
        result: Set[str] = set()
        bound: Set[str] = set()
        for name, bound_type in rtype.bindings:
            result |= type_free_vars(bound_type) - bound
            bound.add(name)
        return result | (type_free_vars(rtype.body) - bound)
    raise TypeError(f"unknown type node: {rtype!r}")


def _fresh_binder(name: str, avoid: Set[str]) -> str:
    candidate = name
    while candidate in avoid:
        candidate += "'"
    return candidate


def _binder_var(name: str, arg_type: RType) -> Optional[Var]:
    """The logical variable an arrow binder contributes to refinements.

    Only scalar-typed binders occur in refinements; function-typed binders
    are invisible to the logic.
    """
    if isinstance(arg_type, ScalarType):
        return Var(name, arg_type.sort)
    return None


def substitute_in_type(rtype: RType, mapping: Mapping[str, Formula]) -> RType:
    """Capture-avoiding substitution of variables inside a type's refinements.

    The value variable is never substituted (each scalar rebinds it), and
    arrow binders both shadow the mapping and are alpha-renamed when a
    mapping value would otherwise capture them — the case the paper hits in
    dependent application ``T2[e/x]`` when the callee reuses a name the
    caller also has in scope.
    """
    live = {name: value for name, value in mapping.items() if name != VALUE_VAR}
    if not live:
        return rtype
    if isinstance(rtype, ScalarType):
        base = rtype.base
        if isinstance(base, DataBase):
            base = DataBase(
                base.name,
                tuple(substitute_in_type(arg, live) for arg in base.args),
            )
        return ScalarType(base, substitute(rtype.refinement, live))
    if isinstance(rtype, FunctionType):
        arg_type = substitute_in_type(rtype.arg_type, live)
        inner = {k: v for k, v in live.items() if k != rtype.arg_name}
        arg_name = rtype.arg_name
        result_type = rtype.result_type
        captured = any(arg_name in free_vars(value) for value in inner.values())
        if captured:
            avoid = type_free_vars(result_type) | set(inner)
            for value in inner.values():
                avoid |= free_vars(value)
            renamed = _fresh_binder(arg_name, avoid)
            binder = _binder_var(arg_name, rtype.arg_type)
            if binder is not None:
                result_type = substitute_in_type(
                    result_type, {arg_name: Var(renamed, binder.var_sort)}
                )
            arg_name = renamed
        return FunctionType(arg_name, arg_type, substitute_in_type(result_type, inner))
    if isinstance(rtype, ContextualType):
        bindings = []
        inner = dict(live)
        for name, bound_type in rtype.bindings:
            bindings.append((name, substitute_in_type(bound_type, inner)))
            inner.pop(name, None)
        return ContextualType(tuple(bindings), substitute_in_type(rtype.body, inner))
    raise TypeError(f"unknown type node: {rtype!r}")


def rename_predicates(rtype: RType, mapping: Mapping[str, str]) -> RType:
    """Rename predicate unknowns inside a type's refinements."""

    def rename(formula: Formula) -> Formula:
        def replace(node: Formula) -> Formula:
            if isinstance(node, Unknown) and node.name in mapping:
                return Unknown(mapping[node.name], node.substitution)
            return node

        return transform(formula, replace)

    if isinstance(rtype, ScalarType):
        base = rtype.base
        if isinstance(base, DataBase):
            base = DataBase(
                base.name,
                tuple(rename_predicates(arg, mapping) for arg in base.args),
            )
        return ScalarType(base, rename(rtype.refinement))
    if isinstance(rtype, FunctionType):
        return FunctionType(
            rtype.arg_name,
            rename_predicates(rtype.arg_type, mapping),
            rename_predicates(rtype.result_type, mapping),
        )
    if isinstance(rtype, ContextualType):
        return ContextualType(
            tuple((name, rename_predicates(bound, mapping)) for name, bound in rtype.bindings),
            rename_predicates(rtype.body, mapping),
        )
    raise TypeError(f"unknown type node: {rtype!r}")


def subst_type_vars(rtype: RType, mapping: Mapping[str, RType]) -> RType:
    """Substitute type variables by types, conjoining refinements.

    ``{alpha | psi}[T/alpha]`` with ``T = {B | phi}`` is ``{B | phi && psi}``
    — the paper's refinement-preserving type-variable instantiation.
    """
    if not mapping:
        return rtype
    if isinstance(rtype, ScalarType):
        base = rtype.base
        if isinstance(base, TypeVarBase) and base.name in mapping:
            target = mapping[base.name]
            if isinstance(target, ScalarType):
                return ScalarType(target.base, ops.and_(target.refinement, rtype.refinement))
            if is_true(rtype.refinement):
                return target
            raise TypeError(
                f"cannot refine type variable {base.name} instantiated with "
                f"the function type {target!r}"
            )
        if isinstance(base, DataBase):
            base = DataBase(
                base.name,
                tuple(subst_type_vars(arg, mapping) for arg in base.args),
            )
        return ScalarType(base, rtype.refinement)
    if isinstance(rtype, FunctionType):
        return FunctionType(
            rtype.arg_name,
            subst_type_vars(rtype.arg_type, mapping),
            subst_type_vars(rtype.result_type, mapping),
        )
    if isinstance(rtype, ContextualType):
        return ContextualType(
            tuple((name, subst_type_vars(bound, mapping)) for name, bound in rtype.bindings),
            subst_type_vars(rtype.body, mapping),
        )
    raise TypeError(f"unknown type node: {rtype!r}")


# ---------------------------------------------------------------------------
# type schemas (type and predicate polymorphism)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PredSig:
    """The signature ``P :: Δ`` of a quantified predicate variable: the
    sorts of its arguments (the last one conventionally being the value the
    predicate refines)."""

    name: str
    arg_sorts: Tuple[Sort, ...] = ()


@dataclass(frozen=True, repr=False)
class TypeSchema:
    """``forall alphas. forall preds. body`` — a polymorphic refinement type.

    Monomorphic signatures are schemas with empty quantifier lists; the
    checker calls :func:`instantiate_schema` to strip the quantifiers,
    substituting concrete types for type variables and fresh predicate
    unknowns for predicate variables.
    """

    type_vars: Tuple[str, ...]
    pred_vars: Tuple[PredSig, ...]
    body: RType

    def monotype(self) -> RType:
        """The body of a quantifier-free schema."""
        if self.type_vars or self.pred_vars:
            raise TypeError(f"schema {self!r} is polymorphic; instantiate it first")
        return self.body

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        quants = "".join(f"<{a}> . " for a in self.type_vars)
        quants += "".join(f"<{p.name}> . " for p in self.pred_vars)
        return f"{quants}{pretty_type(self.body)}"


def monomorphic(body: RType) -> TypeSchema:
    """A schema with no quantifiers."""
    return TypeSchema((), (), body)


def free_type_variables(rtype: RType) -> Set[str]:
    """Names of the type variables occurring free in ``rtype``."""
    if isinstance(rtype, ScalarType):
        base = rtype.base
        if isinstance(base, TypeVarBase):
            return {base.name}
        if isinstance(base, DataBase):
            result: Set[str] = set()
            for arg in base.args:
                result |= free_type_variables(arg)
            return result
        return set()
    if isinstance(rtype, FunctionType):
        return free_type_variables(rtype.arg_type) | free_type_variables(rtype.result_type)
    if isinstance(rtype, ContextualType):
        result = free_type_variables(rtype.body)
        for _, bound in rtype.bindings:
            result |= free_type_variables(bound)
        return result
    raise TypeError(f"unknown type node: {rtype!r}")


def generalize(rtype: RType) -> TypeSchema:
    """Quantify every free type variable of ``rtype`` into a schema.

    This is how a surface signature such as ``id :: x:a -> {a | nu == x}``
    becomes a polymorphic component: its free type variables are implicitly
    universally quantified, so each use site instantiates them afresh
    (via :func:`~repro.typecheck.checker._instantiate_at_application`).
    """
    return TypeSchema(tuple(sorted(free_type_variables(rtype))), (), rtype)


def instantiate_schema(
    schema: TypeSchema,
    type_args: Optional[Mapping[str, RType]] = None,
    pred_args: Optional[Mapping[str, str]] = None,
) -> RType:
    """Strip a schema's quantifiers.

    ``type_args`` maps quantified type variables to types (missing ones stay
    as free type variables); ``pred_args`` maps quantified predicate names
    to the names of fresh unknowns minted by the caller (typically
    :meth:`repro.typecheck.session.TypecheckSession.instantiate`).
    """
    body = schema.body
    if pred_args:
        body = rename_predicates(body, pred_args)
    if type_args:
        body = subst_type_vars(
            body, {name: type_args[name] for name in schema.type_vars if name in type_args}
        )
    return body


# ---------------------------------------------------------------------------
# pretty printing
# ---------------------------------------------------------------------------


def pretty_base(base: BaseType) -> str:
    """Render a base type in surface syntax."""
    if isinstance(base, IntBase):
        return "Int"
    if isinstance(base, BoolBase):
        return "Bool"
    if isinstance(base, TypeVarBase):
        return base.name
    if isinstance(base, DataBase):
        if not base.args:
            return base.name
        return f"{base.name} {' '.join(pretty_type(arg) for arg in base.args)}"
    raise TypeError(f"unknown base type: {base!r}")


def pretty_type(rtype: RType) -> str:
    """Render a type in surface syntax, e.g. ``x:Int -> {Int | nu >= x}``."""
    if isinstance(rtype, ScalarType):
        if is_true(rtype.refinement):
            return pretty_base(rtype.base)
        return f"{{{pretty_base(rtype.base)} | {rtype.refinement!r}}}"
    if isinstance(rtype, FunctionType):
        arg = pretty_type(rtype.arg_type)
        if isinstance(rtype.arg_type, FunctionType):
            arg = f"({arg})"
        return f"{rtype.arg_name}:{arg} -> {pretty_type(rtype.result_type)}"
    if isinstance(rtype, ContextualType):
        bindings = ", ".join(f"{name}:{pretty_type(bound)}" for name, bound in rtype.bindings)
        return f"<{bindings}; {pretty_type(rtype.body)}>"
    raise TypeError(f"unknown type node: {rtype!r}")


TypeLike = Union[RType, TypeSchema]
