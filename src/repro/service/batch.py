"""Batch screening: sweep a directory of ``.sq`` files through the cache.

The screening loop the paper's evaluation section implies but never
ships: point the tool at a corpus, get one line per file and a summary.
Each file is parsed once and routed through the same query layer the CLI
and server use — ``check`` when it has definitions, ``synth`` when it
has goals — so results are content-addressed: a warm second sweep (or a
sweep over a corpus that shares files with a previous one) answers from
the :class:`~repro.service.cache.ResultCache` without touching a solver.

Files are processed by a bounded worker pool.  Workers are threads (the
solver stack is pure Python, but the cache is I/O and corpora are many
small independent jobs), and each worker thread owns its own
:class:`~repro.service.worker.WarmStack` so solver state is never shared
across threads; learned lemmas from every stack are merged into the
store at the end of the sweep.

Because it reports wall-clock time and cache counters, the sweep doubles
as the service throughput benchmark (``scripts/bench_service.py`` runs
it cold and warm and asserts the ratio).

**Robustness.** A sweep is only useful if one bad file cannot sink it:
any per-file exception is recorded on that file's line and the sweep
continues.  Three failure classes are distinguished — a *timeout*
(``--file-timeout-ms`` budget exhausted; the file reports partial
progress), a *transient worker death* (:class:`BrokenProcessPool` and
friends, retried with exponential backoff up to ``retries`` times before
being recorded), and everything else (recorded once, no retry).  Warm
stacks that had to be reset mid-sweep surface in the summary.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import List, Optional

from .. import limits
from ..syntax.parser import ParseError, parse_program
from ..testing import faults
from . import api
from .cache import LemmaStore, ResultCache
from .worker import WarmStack

#: Worker-death shapes worth one more try: the pool process vanished or
#: its pipe closed mid-answer — load-dependent, not a property of the
#: file being screened.
TRANSIENT_ERRORS = (BrokenProcessPool, EOFError, BrokenPipeError)


def discover_files(root: str) -> List[Path]:
    """The ``.sq`` files under ``root`` (a directory, recursively, in
    sorted order — the sweep's result order is deterministic) or the
    single file ``root`` itself."""
    path = Path(root)
    if path.is_dir():
        return sorted(path.rglob("*.sq"))
    return [path]


def screen_file(
    path: Path,
    cache: Optional[ResultCache] = None,
    backend=None,
    depth: int = 4,
    max_conditionals: int = 2,
    max_matches: int = 1,
) -> dict:
    """One file through the query layer; the per-file batch record.

    ``{"file", "failures", "cached", "fresh", "check"?, "synth"?,
    "error"?, "timeout"?}`` — ``check``/``synth`` hold the ordinary
    query payloads, ``error`` a parse failure (one failure, sweep goes
    on).  Solver exceptions deliberately propagate: :func:`run_batch`
    catches them *outside* the warm stack's query guard, so a crashed
    query resets the stack before the failure is recorded.
    """
    record: dict = {"file": str(path), "failures": 0, "cached": 0, "fresh": 0}
    try:
        program = parse_program(path.read_text())
    except (OSError, ParseError) as error:
        record["error"] = str(error)
        record["failures"] = 1
        return record
    if faults.maybe_fire("batch.worker-death"):
        raise BrokenProcessPool("injected: batch worker process died")
    if program.definitions:
        payload, was_cached, _ = api.check_query(program, cache=cache, backend=backend)
        record["check"] = payload
        record["failures"] += payload["failures"]
        record["cached" if was_cached else "fresh"] += 1
        if payload.get("timeout"):
            record["timeout"] = True
    if program.goals:
        payload, was_cached, _ = api.synth_query(
            program,
            depth=depth,
            max_conditionals=max_conditionals,
            max_matches=max_matches,
            cache=cache,
            backend=backend,
        )
        record["synth"] = payload
        record["failures"] += payload["failures"]
        record["cached" if was_cached else "fresh"] += 1
        if payload.get("timeout"):
            record["timeout"] = True
    return record


def run_batch(
    root: str,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    lemma_store: Optional[LemmaStore] = None,
    depth: int = 4,
    max_conditionals: int = 2,
    max_matches: int = 1,
    file_timeout_ms: Optional[float] = None,
    retries: int = 1,
    backoff_s: float = 0.05,
) -> dict:
    """Sweep ``root`` and return the batch report.

    ``{"files": [record, ...], "failures", "queries", "cached",
    "timeouts", "retries", "resets", "timeout_resets", "elapsed",
    "cache": counters-or-None}`` — everything except ``elapsed`` (and
    the counters) is deterministic, which is what the cold-vs-warm
    determinism test pins down.

    ``file_timeout_ms`` installs a fresh :class:`~repro.limits.Budget`
    per file (nested inside any enclosing scope, e.g. a server
    request's); transient worker deaths are retried up to ``retries``
    times with exponential backoff before the file is marked failed.
    """
    paths = discover_files(root)
    local = threading.local()
    stacks: List[WarmStack] = []
    stacks_lock = threading.Lock()
    retry_count = [0]

    def stack() -> WarmStack:
        if getattr(local, "stack", None) is None:
            local.stack = WarmStack(lemma_store)
            with stacks_lock:
                stacks.append(local.stack)
        return local.stack

    def attempt(path: Path) -> dict:
        # Exceptions are caught *outside* the stack's query guard, so a
        # crashed or cancelled query resets the warm stack (and is
        # counted) before the per-file record is written.
        worker = stack()
        budget = (
            limits.Budget.from_timeout_ms(file_timeout_ms) if file_timeout_ms else None
        )
        with limits.budget_scope(budget):
            with worker.query() as backend:
                return screen_file(
                    path,
                    cache=cache,
                    backend=backend,
                    depth=depth,
                    max_conditionals=max_conditionals,
                    max_matches=max_matches,
                )

    def failed(path: Path, **extra) -> dict:
        return {"file": str(path), "failures": 1, "cached": 0, "fresh": 0, **extra}

    def job(path: Path) -> dict:
        for tries in range(max(0, retries) + 1):
            try:
                return attempt(path)
            except limits.BudgetExhausted as exhausted:
                # Tripped outside the query layer's own degradation (the
                # warm stack has already been timeout-reset).
                return failed(
                    path, error=str(exhausted), timeout=True, limit=exhausted.limit
                )
            except TRANSIENT_ERRORS as error:
                if tries < max(0, retries):
                    with stacks_lock:
                        retry_count[0] += 1
                    time.sleep(backoff_s * (2**tries))
                    continue
                return failed(path, error=f"worker died ({type(error).__name__}: {error})")
            except Exception as error:  # noqa: BLE001 - one bad file, one bad line
                return failed(path, error=f"{type(error).__name__}: {error}")
        raise AssertionError("unreachable: the retry loop always returns")

    started = time.monotonic()
    if jobs <= 1:
        records = [job(path) for path in paths]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            records = list(pool.map(job, paths))
    for worker in stacks:
        worker.flush_lemmas()
    return {
        "files": records,
        "failures": sum(record["failures"] for record in records),
        "queries": sum(record["cached"] + record["fresh"] for record in records),
        "cached": sum(record["cached"] for record in records),
        "timeouts": sum(1 for record in records if record.get("timeout")),
        "retries": retry_count[0],
        "resets": sum(worker.resets for worker in stacks),
        "timeout_resets": sum(worker.timeout_resets for worker in stacks),
        "elapsed": time.monotonic() - started,
        "cache": cache.stats() if cache is not None else None,
    }


def render_report(report: dict, out) -> None:
    """The batch report as the CLI prints it: one line per file plus the
    summary line (hit/miss counters included so a throughput run can be
    eyeballed without ``/stats``)."""
    for record in report["files"]:
        if "error" in record:
            label = "TIMEOUT" if record.get("timeout") else "ERROR"
            print(f"{record['file']}: {label} — {record['error']}", file=out)
            continue
        verbs = []
        for verb in ("check", "synth"):
            if verb in record:
                if record[verb].get("timeout"):
                    verbs.append(f"{verb} TIMEOUT")
                else:
                    ok = record[verb]["failures"] == 0
                    verbs.append(f"{verb} {'ok' if ok else 'FAILED'}")
        detail = ", ".join(verbs) if verbs else "nothing to do"
        source = "cache" if record["cached"] and not record["fresh"] else "solver"
        print(f"{record['file']}: {detail} [{source}]", file=out)
    counters = report["cache"]
    cache_note = (
        f"{counters['hits']} hits / {counters['misses']} misses"
        if counters is not None
        else "disabled"
    )
    degraded = ""
    if report.get("timeouts"):
        degraded += f", {report['timeouts']} timeouts"
    if report.get("retries"):
        degraded += f", {report['retries']} retries"
    if report.get("resets"):
        degraded += f", {report['resets']} worker resets"
    print(
        f"batch: {len(report['files'])} files, {report['failures']} failures"
        f"{degraded}, cache: {cache_note}, {report['elapsed']:.2f}s",
        file=out,
    )
