"""The bidirectional refinement type checker (Sec. 3 of the paper).

Typing is split into two mutually recursive judgments:

* :func:`infer` — elimination terms (variables, constants, applications,
  ascriptions) *produce* a type.  Variable lookups are selfified
  (``x : {B | psi && nu == x}``) so dependent application can talk about
  the argument precisely; applications substitute the argument into the
  callee's result type, or produce a :class:`ContextualType` binding a
  fresh name when the argument is not representable as a refinement term.

* :func:`check` — introduction terms (lambdas, conditionals, lets) are
  checked *against* a goal type.  Conditionals check each branch under the
  guard extracted from the scrutinee's refinement; the catch-all case
  infers a type and delegates to :func:`subtype`.

:func:`subtype` reduces ``Γ ⊢ T1 <: T2`` to Horn constraints: for scalars
it emits ``⟦Γ⟧ && [nu-normalized] psi1 ==> psi2`` (split into one
constraint per conjunct of ``psi2``, so conclusions are either a lone
predicate unknown or unknown-free, as the Horn solver requires); for
arrows it recurses contravariantly on arguments and covariantly on
results.  Every emitted constraint carries the provenance trail of the
obligation that produced it, so an unsolvable system names the program
location at fault.

``match`` and ``fix`` are recognised but rejected with
:class:`UnsupportedTermError` — their elaboration (plus termination
metrics) ships with the round-trip enumerator; see ROADMAP.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..logic import ops
from ..logic.formulas import FALSE, TRUE, Formula, Var, value_var
from ..logic.simplify import simplify
from ..logic.sortcheck import SortError, check_refinement
from ..logic.sorts import BOOL, INT, VarSort
from ..logic.substitution import instantiate_value_var, substitute
from ..syntax.terms import (
    Annot,
    AppTerm,
    BoolConst,
    FixTerm,
    IfTerm,
    IntConst,
    LambdaTerm,
    LetTerm,
    MatchTerm,
    Term,
    VarTerm,
)
from ..syntax.types import (
    BOOL_BASE,
    INT_BASE,
    ContextualType,
    DataBase,
    FunctionType,
    RType,
    ScalarType,
    TypeSchema,
    same_shape,
    substitute_in_type,
    type_free_vars,
)
from .environment import Environment
from .errors import (
    ShapeError,
    TypecheckError,
    UnsupportedTermError,
    WellFormednessError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import TypecheckSession

Provenance = Tuple[str, ...]


# ---------------------------------------------------------------------------
# well-formedness
# ---------------------------------------------------------------------------


def well_formed(session: "TypecheckSession", env: Environment, rtype: RType) -> None:
    """Demand every refinement in ``rtype`` is a boolean formula over the
    variables in scope, raising :class:`WellFormednessError` otherwise."""
    scope = env.sort_scope()

    def walk(node: RType, local: dict) -> None:
        if isinstance(node, ScalarType):
            refinement_scope = dict(local)
            refinement_scope[value_var(node.sort).name] = node.sort
            try:
                check_refinement(node.refinement, refinement_scope, session.measures)
            except SortError as error:
                raise WellFormednessError(
                    f"ill-formed refinement in {node!r}: {error}"
                ) from error
            return
        if isinstance(node, FunctionType):
            walk(node.arg_type, local)
            inner = dict(local)
            if isinstance(node.arg_type, ScalarType):
                inner[node.arg_name] = node.arg_type.sort
            walk(node.result_type, inner)
            return
        if isinstance(node, ContextualType):
            inner = dict(local)
            for name, bound in node.bindings:
                walk(bound, inner)
                if isinstance(bound, ScalarType):
                    inner[name] = bound.sort
            walk(node.body, inner)
            return
        raise WellFormednessError(f"unknown type node: {node!r}")

    walk(rtype, scope)


# ---------------------------------------------------------------------------
# inference (elimination terms)
# ---------------------------------------------------------------------------


def infer(
    session: "TypecheckSession",
    env: Environment,
    term: Term,
    where: Provenance = (),
) -> RType:
    """Infer the type of an elimination term."""
    if isinstance(term, VarTerm):
        return _infer_var(session, env, term, where)
    if isinstance(term, IntConst):
        return ScalarType(INT_BASE, ops.eq(value_var(INT), ops.int_lit(term.value)))
    if isinstance(term, BoolConst):
        return ScalarType(BOOL_BASE, ops.iff(value_var(BOOL), ops.bool_lit(term.value)))
    if isinstance(term, AppTerm):
        return _infer_app(session, env, term, where)
    if isinstance(term, Annot):
        well_formed(session, env, term.rtype)
        check(session, env, term.term, term.rtype, where + ("ascription",))
        return term.rtype
    if isinstance(term, (MatchTerm, FixTerm)):
        raise UnsupportedTermError(
            f"{type(term).__name__} is not supported yet (match elaboration and "
            "termination metrics arrive with the enumerator; see ROADMAP) "
            f"at {_pretty_where(where)}"
        )
    raise TypecheckError(
        f"cannot infer a type for the introduction term `{term!r}` "
        f"at {_pretty_where(where)}; check it against a goal type instead"
    )


def _infer_var(
    session: "TypecheckSession", env: Environment, term: VarTerm, where: Provenance
) -> RType:
    bound = env.lookup(term.name)
    if bound is None:
        raise TypecheckError(f"unbound variable `{term.name}` at {_pretty_where(where)}")
    if isinstance(bound, TypeSchema):
        bound = session.instantiate(bound, env)
    if isinstance(bound, ScalarType):
        # Selfification: x : {B | psi && nu == x} (Sec. 3.3) — the precise
        # singleton type dependent application relies on.
        nu = value_var(bound.sort)
        return ScalarType(
            bound.base,
            ops.and_(bound.refinement, ops.eq(nu, Var(term.name, bound.sort))),
        )
    return bound


def _infer_app(
    session: "TypecheckSession", env: Environment, term: AppTerm, where: Provenance
) -> RType:
    fun_type = infer(session, env, term.fun, where + ("function",))
    context: Tuple[Tuple[str, RType], ...] = ()
    if isinstance(fun_type, ContextualType):
        context = fun_type.bindings
        fun_type = fun_type.body
    if not isinstance(fun_type, FunctionType):
        raise ShapeError(
            f"`{term.fun!r}` of type `{fun_type!r}` is applied but is not a "
            f"function, at {_pretty_where(where)}"
        )
    inner_env = env.bind_all(context)
    argument = _as_refinement_term(inner_env, term.arg)
    if argument is not None:
        check(session, inner_env, term.arg, fun_type.arg_type, where + ("argument",))
        result = substitute_in_type(fun_type.result_type, {fun_type.arg_name: argument})
        return ContextualType(context, result) if context else result

    dependent = fun_type.arg_name in type_free_vars(fun_type.result_type)
    if not term.arg.is_e_term():
        # Introduction terms (lambdas, conditionals) have no inferred type:
        # check them directly.  They cannot occur in refinements, so a
        # dependent position cannot be satisfied by one.
        check(session, inner_env, term.arg, fun_type.arg_type, where + ("argument",))
        if dependent:
            raise ShapeError(
                f"argument `{term.arg!r}` of a dependent application must be "
                f"scalar-typed, at {_pretty_where(where)}"
            )
        result = fun_type.result_type
        return ContextualType(context, result) if context else result

    # E-term argument without a refinement-term translation: infer its type
    # once (a check would walk the argument a second time) and, when the
    # result type needs the value, name it with a fresh contextual binding
    # (Sec. 3.2) and substitute the name instead.
    arg_type = infer(session, inner_env, term.arg, where + ("argument",))
    if isinstance(arg_type, ContextualType):
        context = context + arg_type.bindings
        inner_env = env.bind_all(context)
        arg_type = arg_type.body
    subtype(session, inner_env, arg_type, fun_type.arg_type, where + ("argument",))
    if not dependent:
        result = fun_type.result_type
        return ContextualType(context, result) if context else result
    if not isinstance(arg_type, ScalarType):
        raise ShapeError(
            f"argument `{term.arg!r}` of a dependent application must be "
            f"scalar-typed, got `{arg_type!r}`, at {_pretty_where(where)}"
        )
    fresh = session.fresh_name("ctx")
    context = context + ((fresh, arg_type),)
    result = substitute_in_type(
        fun_type.result_type, {fun_type.arg_name: Var(fresh, arg_type.sort)}
    )
    return ContextualType(context, result)


def _as_refinement_term(env: Environment, term: Term) -> Optional[Formula]:
    """The refinement-logic translation of an E-term, when one exists."""
    if isinstance(term, IntConst):
        return ops.int_lit(term.value)
    if isinstance(term, BoolConst):
        return ops.bool_lit(term.value)
    if isinstance(term, VarTerm):
        bound = env.lookup(term.name)
        if isinstance(bound, ScalarType):
            return Var(term.name, bound.sort)
    return None


# ---------------------------------------------------------------------------
# checking (introduction terms)
# ---------------------------------------------------------------------------


def check(
    session: "TypecheckSession",
    env: Environment,
    term: Term,
    goal: RType,
    where: Provenance = (),
) -> None:
    """Check ``term`` against ``goal``, emitting subtyping constraints."""
    if isinstance(goal, ContextualType):
        check(session, env.bind_all(goal.bindings), term, goal.body, where)
        return
    if isinstance(term, LambdaTerm):
        _check_lambda(session, env, term, goal, where)
        return
    if isinstance(term, IfTerm):
        _check_if(session, env, term, goal, where)
        return
    if isinstance(term, LetTerm):
        value_type = infer(session, env, term.value, where + (f"let {term.name}",))
        env, renamed = env.unshadow(term.name)
        if renamed:
            value_type = substitute_in_type(value_type, renamed)
            goal = substitute_in_type(goal, renamed)
        check(
            session,
            env.bind(term.name, value_type),
            term.body,
            goal,
            where + ("let body",),
        )
        return
    if isinstance(term, (MatchTerm, FixTerm)):
        raise UnsupportedTermError(
            f"{type(term).__name__} is not supported yet (match elaboration and "
            "termination metrics arrive with the enumerator; see ROADMAP) "
            f"at {_pretty_where(where)}"
        )
    inferred = infer(session, env, term, where)
    subtype(session, env, inferred, goal, where)


def _check_lambda(
    session: "TypecheckSession",
    env: Environment,
    term: LambdaTerm,
    goal: RType,
    where: Provenance,
) -> None:
    if not isinstance(goal, FunctionType):
        raise ShapeError(
            f"lambda checked against the non-function type `{goal!r}` "
            f"at {_pretty_where(where)}"
        )
    binder = term.arg_name
    # A binder reusing an in-scope name must not capture the context's
    # facts about the outer variable (branch guards, refinements): rename
    # the outer one out of the way first.  The substitution is applied to
    # the arrow as a whole so occurrences bound by the goal's own binder
    # are left alone.
    env, renamed = env.unshadow(binder)
    if renamed:
        goal = substitute_in_type(goal, renamed)
    goal_arg = goal.arg_type
    result = goal.result_type
    if binder != goal.arg_name:
        if binder in type_free_vars(result):
            raise TypecheckError(
                f"lambda binder `{binder}` collides with a variable free in the "
                f"goal type `{goal!r}`; alpha-rename the program, "
                f"at {_pretty_where(where)}"
            )
        if isinstance(goal_arg, ScalarType):
            result = substitute_in_type(result, {goal.arg_name: Var(binder, goal_arg.sort)})
    inner = env.bind(binder, goal_arg)
    check(session, inner, term.body, result, where + (f"\\{binder}",))


def _check_if(
    session: "TypecheckSession",
    env: Environment,
    term: IfTerm,
    goal: RType,
    where: Provenance,
) -> None:
    cond_type = infer(session, env, term.cond, where + ("condition",))
    context: Tuple[Tuple[str, RType], ...] = ()
    if isinstance(cond_type, ContextualType):
        context = cond_type.bindings
        cond_type = cond_type.body
    if not (isinstance(cond_type, ScalarType) and cond_type.base == BOOL_BASE):
        raise ShapeError(
            f"condition `{term.cond!r}` has type `{cond_type!r}`, expected Bool, "
            f"at {_pretty_where(where)}"
        )
    branch_env = env.bind_all(context)
    guard = simplify(instantiate_value_var(cond_type.refinement, TRUE))
    refuted = simplify(instantiate_value_var(cond_type.refinement, FALSE))
    check(session, branch_env.assume(guard), term.then_, goal, where + ("then-branch",))
    check(session, branch_env.assume(refuted), term.else_, goal, where + ("else-branch",))


# ---------------------------------------------------------------------------
# subtyping: reduction to Horn constraints
# ---------------------------------------------------------------------------


def subtype(
    session: "TypecheckSession",
    env: Environment,
    sub: RType,
    sup: RType,
    where: Provenance = (),
) -> None:
    """Reduce ``Γ ⊢ sub <: sup`` to Horn constraints on the session."""
    if isinstance(sub, ContextualType):
        subtype(session, env.bind_all(sub.bindings), sub.body, sup, where)
        return
    if isinstance(sup, ContextualType):
        subtype(session, env.bind_all(sup.bindings), sub, sup.body, where)
        return
    if isinstance(sub, ScalarType) and isinstance(sup, ScalarType):
        if not same_shape(sub, sup):
            raise ShapeError(
                f"`{sub!r}` is not a subtype of `{sup!r}`: base types differ, "
                f"at {_pretty_where(where)}"
            )
        _scalar_subtype(session, env, sub, sup, where)
        return
    if isinstance(sub, FunctionType) and isinstance(sup, FunctionType):
        _arrow_subtype(session, env, sub, sup, where)
        return
    raise ShapeError(
        f"`{sub!r}` is not a subtype of `{sup!r}`: shapes differ, "
        f"at {_pretty_where(where)}"
    )


def _scalar_subtype(
    session: "TypecheckSession",
    env: Environment,
    sub: ScalarType,
    sup: ScalarType,
    where: Provenance,
) -> None:
    # Normalize both value variables to one concrete sort so the premises
    # and the conclusion talk about the same logical variable.
    sort = sub.sort if not isinstance(sub.sort, VarSort) else sup.sort
    nu = value_var(sort)
    lhs = substitute(sub.refinement, {nu.name: nu})
    rhs = substitute(sup.refinement, {nu.name: nu})
    premises = env.embedding()
    premises.append(lhs)
    session.emit(premises, rhs, where + (f"{sub!r} <: {sup!r}",))
    # Datatype type arguments are covariant (as in Synquid): their
    # element-level obligations must be emitted too, or `List Int <:
    # List {Int | nu > 0}` would be silently accepted.
    if isinstance(sub.base, DataBase) and isinstance(sup.base, DataBase):
        for index, (sub_arg, sup_arg) in enumerate(zip(sub.base.args, sup.base.args)):
            subtype(session, env, sub_arg, sup_arg, where + (f"type argument {index}",))


def _arrow_subtype(
    session: "TypecheckSession",
    env: Environment,
    sub: FunctionType,
    sup: FunctionType,
    where: Provenance,
) -> None:
    binder = sup.arg_name
    # As in _check_lambda: protect outer facts about a same-named variable,
    # renaming whole arrows so their own binders' occurrences stay bound.
    env, renamed = env.unshadow(binder)
    if renamed:
        sub = substitute_in_type(sub, renamed)
        sup = substitute_in_type(sup, renamed)
        assert isinstance(sub, FunctionType) and isinstance(sup, FunctionType)
        binder = sup.arg_name
    sup_arg, sub_arg = sup.arg_type, sub.arg_type
    sub_result, sup_result = sub.result_type, sup.result_type
    subtype(session, env, sup_arg, sub_arg, where + ("argument (contravariant)",))
    if sub.arg_name != binder:
        if binder in type_free_vars(sub_result):
            raise TypecheckError(
                f"binder `{binder}` of `{sup!r}` collides with a variable free "
                f"in `{sub!r}`; alpha-rename one of the signatures, "
                f"at {_pretty_where(where)}"
            )
        if isinstance(sub_arg, ScalarType):
            sub_result = substitute_in_type(sub_result, {sub.arg_name: Var(binder, sub_arg.sort)})
    inner = env.bind(binder, sup_arg)
    subtype(session, inner, sub_result, sup_result, where + ("result",))


def _pretty_where(where: Provenance) -> str:
    return " / ".join(where) if where else "<top level>"
