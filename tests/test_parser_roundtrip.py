"""Property-style round-trip tests: ``parse(pretty(t)) == t``.

A seeded random generator produces terms over the full surface grammar
(lambdas, applications, conditionals, lets, matches, fixes, ascriptions)
and declarations; pretty-printing then re-parsing must reproduce the AST
exactly.  Deterministic seeds keep the suite reproducible while still
sweeping a few hundred shapes per run.
"""

import random

import pytest

from repro.logic import ops
from repro.logic.formulas import value_var
from repro.logic.sorts import INT
from repro.syntax import (
    Annot,
    AppTerm,
    BoolConst,
    FixTerm,
    IfTerm,
    IntConst,
    LambdaTerm,
    LetTerm,
    MatchCase,
    MatchTerm,
    ParseError,
    VarTerm,
    int_type,
    len_measure,
    list_datatype,
    parse_datatype,
    parse_declarations,
    parse_measure,
    parse_term,
    pretty_datatype,
    pretty_measure,
    pretty_term,
)

NAMES = ["x", "y", "zs", "acc", "f'"]
CONSTRUCTORS = [("Nil", 0), ("Cons", 2)]


def random_term(rng: random.Random, depth: int):
    """A random term; leaf probability grows as depth shrinks."""
    if depth <= 0 or rng.random() < 0.25:
        return rng.choice(
            [
                VarTerm(rng.choice(NAMES)),
                IntConst(rng.randrange(100)),
                BoolConst(rng.random() < 0.5),
            ]
        )
    shape = rng.randrange(7)
    if shape == 0:
        return LambdaTerm(rng.choice(NAMES), random_term(rng, depth - 1))
    if shape == 1:
        return AppTerm(random_term(rng, depth - 1), random_term(rng, depth - 1))
    if shape == 2:
        return IfTerm(
            random_term(rng, depth - 1),
            random_term(rng, depth - 1),
            random_term(rng, depth - 1),
        )
    if shape == 3:
        return LetTerm(
            rng.choice(NAMES),
            random_term(rng, depth - 1),
            random_term(rng, depth - 1),
        )
    if shape == 4:
        return FixTerm(rng.choice(NAMES), random_term(rng, depth - 1))
    if shape == 5:
        cases = []
        for name, arity in rng.sample(CONSTRUCTORS, rng.randrange(1, 3)):
            binders = tuple(rng.sample(NAMES, arity))
            cases.append(MatchCase(name, binders, random_term(rng, depth - 1)))
        return MatchTerm(random_term(rng, depth - 1), tuple(cases))
    nu = value_var(INT)
    rtype = rng.choice([int_type(), int_type(ops.ge(nu, ops.int_lit(0)))])
    return Annot(random_term(rng, depth - 1), rtype)


class TestTermRoundTrips:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_terms_round_trip(self, seed):
        rng = random.Random(seed)
        for _ in range(20):
            term = random_term(rng, rng.randrange(1, 5))
            printed = pretty_term(term)
            assert parse_term(printed) == term, printed

    @pytest.mark.parametrize(
        "source",
        [
            "fix length . \\xs . match xs with Nil -> 0 | Cons y ys -> inc (length ys)",
            "match xs with Nil -> (match ys with Nil -> 0 | Cons a b -> 1) | Cons a b -> 2",
            "match xs with Nil -> (\\z . match z with Nil -> z) | Cons a b -> g",
            "f (match xs with Nil -> 0) (fix g . \\n . g n)",
            "let r = if leq n 0 then Nil else Cons x r in r",
            "(0 :: {Int | (nu >= 0)})",
            "if a then (let b = c in b) else (\\d . d) e",
        ],
    )
    def test_directed_shapes_round_trip(self, source):
        term = parse_term(source)
        assert parse_term(pretty_term(term)) == term

    def test_inner_match_is_parenthesized(self):
        inner = MatchTerm(VarTerm("ys"), (MatchCase("Nil", (), IntConst(0)),))
        outer = MatchTerm(
            VarTerm("xs"),
            (MatchCase("Nil", (), inner), MatchCase("Cons", ("a", "b"), IntConst(1))),
        )
        printed = pretty_term(outer)
        assert "(" in printed
        assert parse_term(printed) == outer

    def test_keywords_are_reserved(self):
        with pytest.raises(ParseError):
            parse_term("\\match . match")
        with pytest.raises(ParseError):
            parse_term("let data = 1 in data")

    def test_term_parse_errors(self):
        for bad in ["", "match xs with", "fix . x", "\\x x", "(x", "if a then b"]:
            with pytest.raises(ParseError):
                parse_term(bad)


class TestDeclarationRoundTrips:
    def test_list_datatype_round_trips(self):
        datatype = list_datatype()
        printed = pretty_datatype(datatype)
        measures = {"len": len_measure().signature()}
        assert parse_datatype(printed, measures=measures) == datatype

    def test_len_measure_round_trips(self):
        measure = len_measure()
        printed = pretty_measure(measure)
        assert parse_measure(printed, {"List": list_datatype()}) == measure

    def test_declaration_block_round_trips(self):
        datatype, measure = list_datatype(), len_measure()
        block = f"{pretty_datatype(datatype)}\n{pretty_measure(measure)}"
        declarations = parse_declarations(block)
        assert declarations.datatypes == {"List": datatype}
        assert declarations.measures == {"len": measure}

    def test_order_independence(self):
        """measure-before-data resolves identically to data-before-measure."""
        datatype, measure = list_datatype(), len_measure()
        block = f"{pretty_measure(measure)}\n{pretty_datatype(datatype)}"
        declarations = parse_declarations(block)
        assert declarations.datatypes == {"List": datatype}
        assert declarations.measures == {"len": measure}

    def test_declaration_errors(self):
        with pytest.raises(ParseError, match="data.*or.*measure|expected a"):
            parse_declarations("42")
        with pytest.raises(ParseError, match="must produce"):
            parse_datatype("data List a where Nil :: Int")
        with pytest.raises(ParseError, match="undeclared datatype"):
            parse_measure("measure size :: Tree -> Int where Leaf -> 0", {})
        with pytest.raises(ParseError, match="takes 2 arguments"):
            parse_measure(
                "measure len :: List a -> Int where Nil -> 0 | Cons x -> 1",
                {"List": list_datatype()},
            )
        with pytest.raises(ParseError, match="sort"):
            parse_measure(
                "measure len :: List a -> Int where Nil -> True | Cons x xs -> 1",
                {"List": list_datatype()},
            )
        with pytest.raises(ParseError, match="binds a name twice"):
            parse_measure(
                "measure len :: List a -> Int where Nil -> 0 | Cons x x -> 0",
                {"List": list_datatype()},
            )
