"""The command-line driver: ``python -m repro {check,synth,batch,serve}``.

A ``.sq`` file interleaves ``data`` / ``measure`` declarations, component
signatures ``name :: type``, checked definitions ``name = term``, and
synthesis goals ``name = ??`` (see :func:`repro.syntax.parser.
parse_program` for the exact layout rules).  ``check`` runs every
definition through the refinement type checker against its signature;
``synth`` runs the round-trip synthesizer on every goal, prints the
programs it finds together with enumeration statistics, and re-checks
each one through the ordinary checker before reporting success.
``batch`` sweeps a directory of ``.sq`` files through a worker pool, and
``serve`` boots the long-running HTTP service — both reuse the
persistent result cache (:mod:`repro.service.cache`).

All verbs render from the payload structures of
:mod:`repro.service.api`, so output is byte-identical whether an answer
was computed fresh or served from the cache.  Exit codes follow the
contract documented in ``docs/cli.md``: ``0`` success, ``1`` refuted /
unsynthesized / failing files, ``2`` usage, unreadable-file, or parse
errors — and budget exhaustion (``--timeout-ms``), which is "no answer",
not "answer: no".
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, TextIO

from .service import api
from .service.batch import render_report, run_batch
from .service.cache import default_cache_dir, open_cache
from .service.server import serve
from .service.worker import WarmStack
from .syntax.parser import ParseError, Program, parse_program
from .version import package_version

EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
#: Budget exhaustion shares the usage code: like a bad invocation it
#: means the question was not answered, unlike 1 (which means "no").
EXIT_TIMEOUT = 2


class _CliError(Exception):
    """A user-facing failure with an exit code."""

    def __init__(self, message: str, code: int = EXIT_USAGE) -> None:
        super().__init__(message)
        self.code = code


def _load_program(path: str) -> Program:
    try:
        with open(path, "r") as handle:
            source = handle.read()
    except OSError as error:
        raise _CliError(f"cannot read {path}: {error.strerror or error}") from error
    try:
        return parse_program(source)
    except ParseError as error:
        raise _CliError(f"{path}: parse error: {error}") from error


def _open_query_cache(args):
    """The (cache, warm stack) pair for a one-shot ``check``/``synth``.

    One-shot verbs only persist results when pointed at a cache —
    ``--cache-dir`` on the command line or ``REPRO_CACHE_DIR`` in the
    environment — so a plain invocation stays stateless.  (``batch`` and
    ``serve`` default the other way; see ``_open_service_cache``.)
    """
    enabled = not args.no_cache and (
        args.cache_dir is not None or "REPRO_CACHE_DIR" in os.environ
    )
    cache, store = open_cache(args.cache_dir, enabled=enabled)
    return cache, WarmStack(store)


def _open_service_cache(args):
    """The (cache, lemma store) pair for ``batch``: on unless opted out."""
    return open_cache(args.cache_dir, enabled=not args.no_cache)


# -- check -------------------------------------------------------------------


def _render_check(payload: dict, path: str, out: TextIO) -> int:
    for item in payload["items"]:
        if item["status"] == "ok":
            print(f"{item['name']}: OK", file=out)
        elif item["status"] == "rejected":
            print(f"{item['name']}: REJECTED — {item['message']}", file=out)
        elif item["status"] == "unknown":
            print(f"{item['name']}: UNKNOWN — {item['message']}", file=out)
        else:
            print(f"{item['name']}: skipped (synthesis goal; run `synth`)", file=out)
    if payload.get("note") == "no-definitions":
        # A file of signatures and goals is valid input with nothing to do —
        # not an error (the exit-code contract reserves 1 for refutations).
        print(f"{path}: no definitions to check (only signatures or goals)", file=out)
    if payload.get("timeout"):
        print(
            f"{path}: budget exhausted — {payload.get('unknowns', 0)} "
            "definition(s) unknown",
            file=out,
        )
        return EXIT_TIMEOUT
    return EXIT_FAILURE if payload["failures"] else EXIT_OK


def _run_check(program: Program, path: str, args, out: TextIO) -> int:
    cache, stack = _open_query_cache(args)
    with stack.query() as backend:
        payload, _, _ = api.check_query(
            program,
            workers=args.workers,
            cache=cache,
            backend=backend,
            timeout_ms=args.timeout_ms,
        )
    stack.flush_lemmas()
    return _render_check(payload, path, out)


# -- synth -------------------------------------------------------------------


def _render_synth(payload: dict, path: str, quiet: bool, out: TextIO) -> int:
    if payload.get("note") == "no-goals":
        print(f"{path}: no synthesis goals (write `name = ??` after a signature)", file=out)
        return EXIT_FAILURE
    for item in payload["items"]:
        print(f"synthesizing {item['goal']}", file=out)
        if not item["solved"]:
            print(f"  {item['reason']}", file=out)
            continue
        print(item["program"], file=out)
        if not quiet:
            stats = item["statistics"]
            print(
                f"  candidates generated: {stats['generated']}, "
                f"pruned early: {stats['pruned_early']} "
                f"(+{stats['pruned_shape']} by shape), "
                f"local checks: {stats['checked']}, "
                f"goal checks: {stats['goal_checks']}, "
                f"abductions: {stats['abductions']}, "
                f"verified: {'yes' if item['verified'] else 'NO'}",
                file=out,
            )
        if not item["verified"]:
            print(f"  {item['name']}: synthesized program failed re-checking", file=out)
    if payload.get("timeout"):
        timeouts = sum(1 for item in payload["items"] if item.get("timeout"))
        print(f"{path}: budget exhausted — {timeouts} goal(s) timed out", file=out)
        return EXIT_TIMEOUT
    return EXIT_FAILURE if payload["failures"] else EXIT_OK


def _run_synth(program: Program, path: str, args, out: TextIO) -> int:
    cache, stack = _open_query_cache(args)
    try:
        with stack.query() as backend:
            payload, _, _ = api.synth_query(
                program,
                only=args.only,
                depth=args.depth,
                max_conditionals=args.max_conditionals,
                max_matches=args.max_matches,
                cache=cache,
                backend=backend,
                recheck=args.recheck,
                workers=args.workers,
                timeout_ms=args.timeout_ms,
            )
    except api.UnknownGoal:
        raise _CliError(f"{path}: no signature for goal `{args.only}`") from None
    stack.flush_lemmas()
    return _render_synth(payload, path, args.quiet, out)


# -- batch / serve -----------------------------------------------------------


def _run_batch(args, out: TextIO) -> int:
    cache, store = _open_service_cache(args)
    report = run_batch(
        args.dir,
        jobs=args.jobs,
        cache=cache,
        lemma_store=store,
        depth=args.depth,
        max_conditionals=args.max_conditionals,
        max_matches=args.max_matches,
        file_timeout_ms=args.file_timeout_ms,
        retries=args.retries,
    )
    render_report(report, out)
    return EXIT_FAILURE if report["failures"] else EXIT_OK


def _add_cache_flags(command, default_dir: bool) -> None:
    command.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "persistent result cache directory"
            + (
                f" (default: $REPRO_CACHE_DIR or {default_cache_dir()!r})"
                if default_dir
                else " (caching is off for this verb unless given)"
            )
        ),
    )
    command.add_argument(
        "--no-cache", action="store_true", help="never read or write the result cache"
    )


def _add_timeout_flag(command) -> None:
    command.add_argument(
        "--timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "wall-clock budget for the whole query; on exhaustion a "
            "structured unknown/timeout report is printed and the exit "
            "code is 2 (no answer)"
        ),
    )


def _add_synth_limits(command) -> None:
    command.add_argument(
        "--depth", type=int, default=4, help="E-term enumeration depth bound (default 4)"
    )
    command.add_argument(
        "--max-conditionals",
        type=int,
        default=2,
        help="how many nested abduced conditionals to allow (default 2)",
    )
    command.add_argument(
        "--max-matches",
        type=int,
        default=1,
        help="how many nested matches to allow (default 1)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Refinement-type checking and round-trip program synthesis.",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {package_version()}"
    )
    commands = parser.add_subparsers(dest="command", metavar="{check,synth,batch,serve}")
    check = commands.add_parser(
        "check", help="type-check every definition in a .sq file against its signature"
    )
    check.add_argument("file", help="the .sq source file")
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the candidate-set Horn portfolio (default 1 = serial)",
    )
    _add_timeout_flag(check)
    _add_cache_flags(check, default_dir=False)
    synth = commands.add_parser("synth", help="synthesize every `name = ??` goal in a .sq file")
    synth.add_argument("file", help="the .sq source file")
    _add_synth_limits(synth)
    synth.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for each condition abduction's candidate-set "
            "portfolio (default 1 = serial; results are identical either way)"
        ),
    )
    synth.add_argument("--only", metavar="NAME", help="synthesize just this goal")
    synth.add_argument(
        "--quiet", action="store_true", help="suppress the enumeration statistics line"
    )
    synth.add_argument(
        "--recheck",
        action="store_true",
        help="re-verify cached programs through a fresh checker before trusting them",
    )
    _add_timeout_flag(synth)
    _add_cache_flags(synth, default_dir=False)
    batch = commands.add_parser(
        "batch", help="screen every .sq file under a directory through the result cache"
    )
    batch.add_argument("dir", help="directory to sweep (recursively) for .sq files")
    batch.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker threads, each with its own warm solver stack (default 1)",
    )
    _add_synth_limits(batch)
    batch.add_argument(
        "--file-timeout-ms",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "wall-clock budget per file; a file that exhausts it is "
            "recorded as a timeout and the sweep continues"
        ),
    )
    batch.add_argument(
        "--retries",
        type=int,
        default=1,
        metavar="N",
        help=(
            "how many times to retry a file whose worker died a "
            "transient death (default 1; backoff doubles per retry)"
        ),
    )
    _add_cache_flags(batch, default_dir=True)
    serve_cmd = commands.add_parser(
        "serve", help="run the long-running HTTP/JSON synthesis service"
    )
    serve_cmd.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve_cmd.add_argument(
        "--port", type=int, default=8729, help="TCP port (default 8729; 0 picks a free port)"
    )
    serve_cmd.add_argument(
        "--verbose", action="store_true", help="log one line per request to stderr"
    )
    serve_cmd.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="MS",
        help=(
            "wall-clock budget per POST request in milliseconds; an "
            "exhausted request is answered 503 with partial results "
            "(a body `timeout_ms` can only tighten it)"
        ),
    )
    _add_cache_flags(serve_cmd, default_dir=True)
    return parser


def main(argv: Optional[List[str]] = None, out: TextIO = sys.stdout) -> int:
    """Entry point; returns the process exit code (see ``docs/cli.md``)."""
    parser = _build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exit_:
        # argparse already printed a usage, --version, or "invalid choice"
        # message.
        code = exit_.code
        return EXIT_OK if code in (0, None) else EXIT_USAGE
    if args.command is None:
        parser.print_usage(sys.stderr)
        print("error: expected a subcommand: check, synth, batch, or serve", file=sys.stderr)
        return EXIT_USAGE
    try:
        if args.command == "batch":
            return _run_batch(args, out)
        if args.command == "serve":
            return serve(
                host=args.host,
                port=args.port,
                cache_dir=args.cache_dir,
                no_cache=args.no_cache,
                verbose=args.verbose,
                out=out,
                request_timeout_ms=args.request_timeout,
            )
        program = _load_program(args.file)
        if args.command == "check":
            return _run_check(program, args.file, args, out)
        return _run_synth(program, args.file, args, out)
    except _CliError as error:
        print(f"error: {error}", file=sys.stderr)
        return error.code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
