"""Linear integer arithmetic over conjunctions of literals.

The theory solver receives a conjunction of linear constraints (produced by
the purifier in ``repro.smt.theory``) and decides feasibility.  The decision
procedure is Fourier–Motzkin elimination over the rationals with integer
tightening of strict inequalities and Gaussian substitution of equalities;
disequalities are handled by case splitting.

Soundness note (documented in DESIGN.md): an *infeasible* verdict is always
correct (rational infeasibility implies integer infeasibility), which is the
direction refinement-type soundness depends on — ``Valid(phi)`` is decided as
``not Sat(not phi)``.  A *feasible* verdict can in rare corner cases (for
example ``2*x == 1``) be rationally feasible but integer-infeasible; this can
only make the type checker reject a correct program, never accept a wrong
one.  The benchmark suite's constraints are unit-coefficient, where the
procedure is exact.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from fractions import Fraction
from math import gcd
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import limits


class Relation(enum.Enum):
    """Relation of a linear constraint ``expr REL 0``."""

    LE = "<="
    EQ = "=="
    NEQ = "!="


@dataclass(frozen=True)
class LinearExpr:
    """A linear expression ``sum(coeff * var) + constant``.

    Coefficients are :class:`fractions.Fraction` so eliminations stay exact.
    """

    coefficients: Tuple[Tuple[str, Fraction], ...] = ()
    constant: Fraction = Fraction(0)

    @staticmethod
    def from_dict(coefficients: Dict[str, Fraction], constant: Fraction) -> "LinearExpr":
        """Build an expression, dropping zero coefficients and fixing order."""
        cleaned = tuple(
            sorted((name, coeff) for name, coeff in coefficients.items() if coeff != 0)
        )
        return LinearExpr(cleaned, constant)

    @staticmethod
    def constant_expr(value: int) -> "LinearExpr":
        """The constant expression ``value``."""
        return LinearExpr((), Fraction(value))

    @staticmethod
    def variable(name: str) -> "LinearExpr":
        """The expression consisting of a single variable."""
        return LinearExpr(((name, Fraction(1)),), Fraction(0))

    def as_dict(self) -> Dict[str, Fraction]:
        """Coefficients as a mutable dictionary."""
        return dict(self.coefficients)

    def scale(self, factor: Fraction) -> "LinearExpr":
        """Multiply the whole expression by ``factor``."""
        return LinearExpr.from_dict(
            {name: coeff * factor for name, coeff in self.coefficients},
            self.constant * factor,
        )

    def add(self, other: "LinearExpr") -> "LinearExpr":
        """Pointwise sum of two expressions."""
        coefficients = self.as_dict()
        for name, coeff in other.coefficients:
            coefficients[name] = coefficients.get(name, Fraction(0)) + coeff
        return LinearExpr.from_dict(coefficients, self.constant + other.constant)

    def subtract(self, other: "LinearExpr") -> "LinearExpr":
        """Pointwise difference of two expressions."""
        return self.add(other.scale(Fraction(-1)))

    def coefficient(self, name: str) -> Fraction:
        """Coefficient of ``name`` (zero if absent)."""
        return dict(self.coefficients).get(name, Fraction(0))

    def variables(self) -> List[str]:
        """Names of variables with non-zero coefficients."""
        return [name for name, _ in self.coefficients]

    def is_constant(self) -> bool:
        """Does the expression mention no variables?"""
        return not self.coefficients


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``expr REL 0``."""

    expr: LinearExpr
    relation: Relation

    def variables(self) -> List[str]:
        """Variables mentioned by the constraint."""
        return self.expr.variables()


def le(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs <= rhs``."""
    return Constraint(lhs.subtract(rhs), Relation.LE)


def lt(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs < rhs`` tightened over the integers to ``lhs + 1 <= rhs``."""
    return Constraint(lhs.subtract(rhs).add(LinearExpr.constant_expr(1)), Relation.LE)


def eq(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs == rhs``."""
    return Constraint(lhs.subtract(rhs), Relation.EQ)


def neq(lhs: LinearExpr, rhs: LinearExpr) -> Constraint:
    """Constraint ``lhs != rhs``."""
    return Constraint(lhs.subtract(rhs), Relation.NEQ)


class LiaSolver:
    """Feasibility checking for conjunctions of linear integer constraints."""

    #: Safety cap on Fourier–Motzkin growth; queries stay far below it.
    MAX_INEQUALITIES = 20_000

    def is_feasible(self, constraints: Sequence[Constraint]) -> bool:
        """Is the conjunction of ``constraints`` satisfiable?"""
        return self._solve(list(constraints))

    # -- internals ---------------------------------------------------------

    def _solve(self, constraints: List[Constraint]) -> bool:
        # Split on the first disequality, if any.
        for index, constraint in enumerate(constraints):
            if constraint.relation is Relation.NEQ:
                rest = constraints[:index] + constraints[index + 1:]
                strictly_less = Constraint(
                    constraint.expr.add(LinearExpr.constant_expr(1)), Relation.LE
                )
                strictly_greater = Constraint(
                    constraint.expr.scale(Fraction(-1)).add(LinearExpr.constant_expr(1)),
                    Relation.LE,
                )
                return self._solve(rest + [strictly_less]) or self._solve(
                    rest + [strictly_greater]
                )

        # Eliminate equalities by substitution (or split into two inequalities
        # when no unit coefficient is available).
        for index, constraint in enumerate(constraints):
            if constraint.relation is Relation.EQ:
                rest = constraints[:index] + constraints[index + 1:]
                if constraint.expr.is_constant():
                    if constraint.expr.constant != 0:
                        return False
                    return self._solve(rest)
                substituted = self._substitute_equality(constraint, rest)
                if substituted is not None:
                    return self._solve(substituted)
                as_inequalities = [
                    Constraint(constraint.expr, Relation.LE),
                    Constraint(constraint.expr.scale(Fraction(-1)), Relation.LE),
                ]
                return self._solve(rest + as_inequalities)

        inequalities = [c.expr for c in constraints]
        return self._fourier_motzkin(inequalities)

    @staticmethod
    def _substitute_equality(
        equality: Constraint, others: List[Constraint]
    ) -> Optional[List[Constraint]]:
        """Solve ``equality`` for one of its variables and substitute it away.

        Any variable can be isolated because coefficients are rational; the
        substitution preserves rational feasibility exactly.
        """
        expr = equality.expr
        if not expr.coefficients:
            return None
        name, coeff = expr.coefficients[0]
        # name = -(rest)/coeff
        rest = LinearExpr.from_dict(
            {n: c for n, c in expr.coefficients if n != name}, expr.constant
        )
        replacement = rest.scale(Fraction(-1) / coeff)

        def substitute(target: LinearExpr) -> LinearExpr:
            c = target.coefficient(name)
            if c == 0:
                return target
            without = LinearExpr.from_dict(
                {n: k for n, k in target.coefficients if n != name}, target.constant
            )
            return without.add(replacement.scale(c))

        return [Constraint(substitute(c.expr), c.relation) for c in others]

    def _fourier_motzkin(self, inequalities: List[LinearExpr]) -> bool:
        """Rational feasibility of ``expr <= 0`` constraints by elimination."""
        inequalities = list(inequalities)
        while True:
            # Constant rows are decided immediately.
            remaining: List[LinearExpr] = []
            for expr in inequalities:
                if expr.is_constant():
                    if expr.constant > 0:
                        return False
                else:
                    remaining.append(expr)
            inequalities = remaining
            if not inequalities:
                return True

            variable = self._pick_variable(inequalities)
            lower, upper, unrelated = [], [], []
            for expr in inequalities:
                coeff = expr.coefficient(variable)
                if coeff > 0:
                    upper.append(expr)       # variable <= bound
                elif coeff < 0:
                    lower.append(expr)       # bound <= variable
                else:
                    unrelated.append(expr)

            combined: List[LinearExpr] = []
            for up in upper:
                for low in lower:
                    up_coeff = up.coefficient(variable)
                    low_coeff = -low.coefficient(variable)
                    merged = up.scale(low_coeff).add(low.scale(up_coeff))
                    combined.append(merged)
            inequalities = unrelated + combined
            if len(inequalities) > self.MAX_INEQUALITIES:
                # Give up on proving infeasibility; "feasible" is the safe
                # (sound) answer for validity checking.
                return True

    @staticmethod
    def _pick_variable(inequalities: List[LinearExpr]) -> str:
        """Choose the variable whose elimination creates the fewest rows."""
        occurrences: Dict[str, Tuple[int, int]] = {}
        for expr in inequalities:
            for name, coeff in expr.coefficients:
                lower, upper = occurrences.get(name, (0, 0))
                if coeff < 0:
                    occurrences[name] = (lower + 1, upper)
                else:
                    occurrences[name] = (lower, upper + 1)
        return min(occurrences, key=lambda n: occurrences[n][0] * occurrences[n][1])


# ---------------------------------------------------------------------------
# incremental simplex
# ---------------------------------------------------------------------------

#: Explanation tag of constraints derived internally (Nelson–Oppen equality
#: propagation); conflicts containing it cannot be explained from bound tags
#: alone and callers fall back to the full asserted set.
DERIVED = object()


class Simplex:
    """An incremental Dutertre–de Moura general simplex over the rationals.

    The tableau is *permanent*: every linear atom gets a slack variable
    ``s = expr`` whose defining row is installed once and reused by all
    later constraints over the same (gcd/sign-normalized) expression.
    Asserting a constraint only adds or tightens a *bound* on a variable —
    recorded on an undo trail so :meth:`mark` / :meth:`undo_to` retract it
    in O(1) — and :meth:`check` restores bound feasibility by Bland-rule
    pivoting that resumes from the previous feasible basis rather than
    re-solving from scratch.

    Decides the same theory as the one-shot :class:`LiaSolver` (rational
    feasibility of integer-tightened constraints, disequalities by ±1 case
    splitting), which the differential test suite relies on.  Every bound
    carries the caller's *tag* (typically the asserting theory literal);
    infeasibility verdicts return the tags of a conflicting bound set, so
    theory conflicts are explained without a minimization pass.
    """

    def __init__(self) -> None:
        #: external name -> variable id
        self._ids: Dict[str, int] = {}
        #: normalized multi-variable expression -> slack variable id
        self._slacks: Dict[Tuple[Tuple[int, Fraction], ...], int] = {}
        #: memo of :meth:`_variable_for` resolutions keyed by the raw
        #: coefficient tuple: (variable, scale, normalized key or None).
        #: Sound because the form -> variable mapping is persistent —
        #: ids are never deallocated, only defining *rows* are GC'd.
        self._form_cache: Dict[
            Tuple[Tuple[str, Fraction], ...],
            Tuple[int, Fraction, Optional[Tuple[Tuple[int, Fraction], ...]]],
        ] = {}
        self._next_var = 0
        #: basic variable -> {nonbasic variable: coefficient}
        self._rows: Dict[int, Dict[int, Fraction]] = {}
        #: nonbasic variable -> basic variables whose row mentions it
        self._cols: Dict[int, Set[int]] = {}
        #: the current rational assignment (beta)
        self._value: Dict[int, Fraction] = {}
        self._lower: Dict[int, Tuple[Fraction, object]] = {}
        self._upper: Dict[int, Tuple[Fraction, object]] = {}
        #: live disequalities: (variable, tag, left split bound, right split bound)
        self._neqs: List[Tuple[int, object, Tuple, Tuple]] = []
        self._trail: List[Tuple] = []
        #: slack ids whose defining relation is currently in the tableau
        #: (uninstalled rows are re-derived on demand, see _collect_garbage)
        self._row_installed: Set[int] = set()
        #: slack id -> normalized expression key (for row reinstallation)
        self._slack_keys: Dict[int, Tuple[Tuple[int, Fraction], ...]] = {}
        #: basic variables whose value or bounds changed since they were
        #: last verified in-bounds; _repair only scans these
        self._suspects: Set[int] = set()
        #: has any bound changed since the last feasible check()?
        self._dirty = False
        #: lifetime pivot count (exposed as ``tableau_pivots``)
        self.pivots = 0

    # -- backtracking --------------------------------------------------------

    def mark(self) -> int:
        """Snapshot the bound state for a later :meth:`undo_to`."""
        return len(self._trail)

    def undo_to(self, mark: int) -> None:
        """Retract every bound and disequality recorded after ``mark``.

        The assignment is *not* rolled back: bounds only loosen on undo, so
        the current assignment stays bound-feasible whenever it was, and
        :meth:`check` repairs it from wherever it is otherwise.
        """
        trail = self._trail
        if len(trail) > mark:
            self._dirty = True
        while len(trail) > mark:
            record = trail.pop()
            kind = record[0]
            if kind == "ub":
                _, var, old = record
                if old is None:
                    del self._upper[var]
                else:
                    self._upper[var] = old
            elif kind == "lb":
                _, var, old = record
                if old is None:
                    del self._lower[var]
                else:
                    self._lower[var] = old
            else:  # "neq"
                self._neqs.pop()

    # -- constraint assertion ------------------------------------------------

    def assert_constraint(self, constraint: Constraint, tag: object) -> Optional[List[object]]:
        """Assert ``constraint`` (tagged for explanations); returns a
        conflicting tag set when the new bound is immediately infeasible
        against an opposite bound, else ``None`` (full feasibility is only
        decided by :meth:`check`)."""
        expr = constraint.expr
        relation = constraint.relation
        if expr.is_constant():
            value = expr.constant
            trivially_true = (
                value <= 0 if relation is Relation.LE
                else value == 0 if relation is Relation.EQ
                else value != 0
            )
            return None if trivially_true else [tag]
        var, scale = self._variable_for(expr.coefficients)
        target = -expr.constant / scale
        if relation is Relation.LE:
            if scale > 0:
                return self._assert_upper(var, target, tag)
            return self._assert_lower(var, target, tag)
        if relation is Relation.EQ:
            conflict = self._assert_upper(var, target, tag)
            if conflict is not None:
                return conflict
            return self._assert_lower(var, target, tag)
        # Relation.NEQ — recorded for case splitting at check time, exactly
        # mirroring LiaSolver: expr <= -1 or expr >= 1 over the integers.
        low = (-1 - expr.constant) / scale
        high = (1 - expr.constant) / scale
        if scale > 0:
            left, right = ("ub", low), ("lb", high)
        else:
            left, right = ("lb", low), ("ub", high)
        self._neqs.append((var, tag, left, right))
        self._trail.append(("neq",))
        self._dirty = True
        return None

    def bound_form(self, constraint: Constraint) -> Optional[Tuple[int, str, Fraction]]:
        """Normalize a LE/EQ constraint into ``(variable, kind, bound)`` with
        ``kind`` one of ``"ub"``/``"lb"``/``"eq"``, for bound-propagation
        bookkeeping.  Returns ``None`` for constant or NEQ constraints.
        Asserts nothing — it names the expression's tableau variable but
        does not install a defining row (bound lookups need only the id).
        """
        expr = constraint.expr
        if expr.is_constant() or constraint.relation is Relation.NEQ:
            return None
        var, scale = self._variable_for(expr.coefficients, need_row=False)
        bound = -expr.constant / scale
        if constraint.relation is Relation.EQ:
            return (var, "eq", bound)
        return (var, "ub" if scale > 0 else "lb", bound)

    def _variable_for(
        self, coefficients: Tuple[Tuple[str, Fraction], ...], need_row: bool = True
    ) -> Tuple[int, Fraction]:
        """The tableau variable standing for a linear form, plus the scale
        such that ``form == scale * variable``  (gcd/sign normalization, so
        ``2x+2y`` and ``-x-y`` share one slack).  With ``need_row`` the
        slack's defining row is (re)installed; without it only the id is
        allocated — enough to read bounds for propagation."""
        cached = self._form_cache.get(coefficients)
        if cached is None:
            cached = self._resolve_form(coefficients)
            self._form_cache[coefficients] = cached
        variable, scale, key = cached
        if need_row and key is not None and variable not in self._row_installed:
            self._install_row(variable, key)
        return variable, scale

    def _resolve_form(
        self, coefficients: Tuple[Tuple[str, Fraction], ...]
    ) -> Tuple[int, Fraction, Optional[Tuple[Tuple[int, Fraction], ...]]]:
        """Allocate (or find) the variable for a linear form: the slow
        gcd/sign normalization behind :meth:`_variable_for`'s memo."""
        if len(coefficients) == 1:
            name, coeff = coefficients[0]
            return self._plain_var(name), coeff, None
        denominator_lcm = 1
        for _, coeff in coefficients:
            denominator_lcm = denominator_lcm * coeff.denominator // gcd(
                denominator_lcm, coeff.denominator
            )
        numerators = [int(coeff * denominator_lcm) for _, coeff in coefficients]
        magnitude = 0
        for numerator in numerators:
            magnitude = gcd(magnitude, abs(numerator))
        scale = Fraction(magnitude, denominator_lcm)
        if numerators[0] < 0:
            scale = -scale
        key = tuple(
            (self._plain_var(name), coeff / scale) for name, coeff in coefficients
        )
        slack = self._slacks.get(key)
        if slack is None:
            slack = self._next_var
            self._next_var += 1
            self._slacks[key] = slack
            self._slack_keys[slack] = key
            self._value[slack] = Fraction(0)
        return slack, scale, key

    def _plain_var(self, name: str) -> int:
        var = self._ids.get(name)
        if var is None:
            var = self._next_var
            self._next_var += 1
            self._ids[name] = var
            self._value[var] = Fraction(0)
        return var

    def _install_row(self, slack: int, key: Tuple[Tuple[int, Fraction], ...]) -> None:
        """(Re)install the defining row ``slack == sum(coeff * var)``,
        substituting current basics away and recomputing the slack's
        assignment.  Rows of slacks with no bounds are garbage-collected
        between checks, so installation must be repeatable."""
        row: Dict[int, Fraction] = {}
        for var, coeff in key:
            basic_row = self._rows.get(var)
            if basic_row is None:
                row[var] = row.get(var, Fraction(0)) + coeff
            else:
                for nonbasic, inner in basic_row.items():
                    row[nonbasic] = row.get(nonbasic, Fraction(0)) + coeff * inner
        row = {var: coeff for var, coeff in row.items() if coeff != 0}
        self._value[slack] = sum(
            (coeff * self._value[var] for var, coeff in row.items()), Fraction(0)
        )
        self._rows[slack] = row
        for nonbasic in row:
            self._cols.setdefault(nonbasic, set()).add(slack)
        self._row_installed.add(slack)

    def _collect_garbage(self) -> None:
        """Drop the defining row of every *basic* slack with no live bound
        and no live disequality.

        A basic variable appears in no other row, so removing its row is
        pure projection: satisfiability over the remaining variables is
        unchanged.  Without this, slacks from long-retracted scopes keep
        their rows forever and every pivot pays to rewrite them.  The row
        is re-derived by :meth:`_variable_for` if the expression is ever
        bounded again.
        """
        rows = self._rows
        lower = self._lower
        upper = self._upper
        neq_vars = {var for var, _, _, _ in self._neqs}
        dead = [
            slack
            for slack in self._row_installed
            if slack in rows
            and slack not in lower
            and slack not in upper
            and slack not in neq_vars
        ]
        for slack in dead:
            row = rows.pop(slack)
            for nonbasic in row:
                mentions = self._cols.get(nonbasic)
                if mentions is not None:
                    mentions.discard(slack)
                    if not mentions:
                        del self._cols[nonbasic]
            self._row_installed.discard(slack)
            self._suspects.discard(slack)

    def _assert_upper(self, var: int, bound: Fraction, tag: object) -> Optional[List[object]]:
        current = self._upper.get(var)
        if current is not None and bound >= current[0]:
            return None  # not a tightening
        lower = self._lower.get(var)
        if lower is not None and bound < lower[0]:
            return [tag, lower[1]]
        self._trail.append(("ub", var, current))
        self._upper[var] = (bound, tag)
        self._dirty = True
        if var not in self._rows:
            if self._value[var] > bound:
                self._update(var, bound)
        elif self._value[var] > bound:
            self._suspects.add(var)
        return None

    def _assert_lower(self, var: int, bound: Fraction, tag: object) -> Optional[List[object]]:
        current = self._lower.get(var)
        if current is not None and bound <= current[0]:
            return None
        upper = self._upper.get(var)
        if upper is not None and bound > upper[0]:
            return [tag, upper[1]]
        self._trail.append(("lb", var, current))
        self._lower[var] = (bound, tag)
        self._dirty = True
        if var not in self._rows:
            if self._value[var] < bound:
                self._update(var, bound)
        elif self._value[var] < bound:
            self._suspects.add(var)
        return None

    def _update(self, var: int, value: Fraction) -> None:
        """Move a nonbasic variable, adjusting every dependent basic."""
        delta = value - self._value[var]
        self._value[var] = value
        values = self._value
        rows = self._rows
        suspects = self._suspects
        for basic in self._cols.get(var, ()):
            values[basic] += rows[basic][var] * delta
            suspects.add(basic)

    # -- feasibility ---------------------------------------------------------

    def check(self) -> Optional[List[object]]:
        """Restore feasibility by pivoting; returns ``None`` when feasible
        or the conflicting bounds' tags when not.

        No-op when no bound changed since the last feasible check (the
        assignment is still feasible).  Dead slack rows are collected
        first so repair pivots never rewrite rows of retracted scopes.
        """
        if not self._dirty:
            return None
        self._collect_garbage()
        conflict = self._repair()
        if conflict is None:
            conflict = self._check_neqs()
        if conflict is None:
            self._dirty = False
        return conflict

    def _repair(self) -> Optional[List[object]]:
        """Bland-rule pivoting from the current basis until every basic
        variable sits within its bounds.

        Only *suspect* basics (value or bounds changed since last verified
        in-bounds) are scanned; every mutation path maintains the
        invariant that an out-of-bounds basic is a suspect.
        """
        values = self._value
        rows = self._rows
        lower = self._lower
        upper = self._upper
        suspects = self._suspects
        while True:
            broken = None
            below = False
            settled = []
            for var in suspects:
                if var not in rows:
                    settled.append(var)  # became nonbasic: within bounds
                    continue
                low = lower.get(var)
                if low is not None and values[var] < low[0]:
                    if broken is None or var < broken:
                        broken, below = var, True
                    continue
                high = upper.get(var)
                if high is not None and values[var] > high[0]:
                    if broken is None or var < broken:
                        broken, below = var, False
                    continue
                settled.append(var)
            for var in settled:
                suspects.discard(var)
            if broken is None:
                return None
            row = rows[broken]
            pivot_col = None
            for var in sorted(row):
                coeff = row[var]
                if (coeff > 0) == below:
                    high = upper.get(var)
                    if high is None or values[var] < high[0]:
                        pivot_col = var
                        break
                else:
                    low = lower.get(var)
                    if low is None or values[var] > low[0]:
                        pivot_col = var
                        break
            if pivot_col is None:
                if below:
                    conflict = [lower[broken][1]]
                    for var, coeff in row.items():
                        conflict.append(
                            upper[var][1] if coeff > 0 else lower[var][1]
                        )
                else:
                    conflict = [upper[broken][1]]
                    for var, coeff in row.items():
                        conflict.append(
                            lower[var][1] if coeff > 0 else upper[var][1]
                        )
                return conflict
            target = lower[broken][0] if below else upper[broken][0]
            # Cancellation point per repair pivot; aborting here leaves the
            # tableau structurally sound and still dirty, so the next check
            # resumes the repair.
            limits.checkpoint("tableau_pivots")
            self._pivot_and_update(broken, pivot_col, target)

    def _pivot_and_update(self, leaving: int, entering: int, target: Fraction) -> None:
        self.pivots += 1
        values = self._value
        rows = self._rows
        cols = self._cols
        row = rows.pop(leaving)
        coeff = row.pop(entering)
        theta = (target - values[leaving]) / coeff
        values[leaving] = target
        values[entering] += theta
        mentioning = cols.pop(entering, set())
        mentioning.discard(leaving)
        suspects = self._suspects
        suspects.add(entering)
        for basic in mentioning:
            values[basic] += rows[basic][entering] * theta
            suspects.add(basic)
        # New defining row for the entering variable.
        new_row: Dict[int, Fraction] = {leaving: Fraction(1) / coeff}
        for var, inner in row.items():
            new_row[var] = -inner / coeff
            cols[var].discard(leaving)
        rows[entering] = new_row
        for var in new_row:
            cols.setdefault(var, set()).add(entering)
        # Substitute the entering variable out of every row that mentions it.
        for basic in mentioning:
            other = rows[basic]
            factor = other.pop(entering)
            for var, inner in new_row.items():
                merged = other.get(var, Fraction(0)) + factor * inner
                if merged == 0:
                    if var in other:
                        del other[var]
                        cols.get(var, set()).discard(basic)
                else:
                    other[var] = merged
                    cols.setdefault(var, set()).add(basic)

    def _branch_satisfied(self, var: int, branch: Tuple) -> bool:
        kind, bound = branch
        value = self._value.get(var, Fraction(0))
        return value <= bound if kind == "ub" else value >= bound

    def _check_neqs(self) -> Optional[List[object]]:
        """Case-split every disequality neither of whose ±1 branches the
        current assignment satisfies (mirroring the one-shot solver, which
        decides ``expr <= -1  or  expr >= 1`` rather than rational
        ``!=``)."""
        for index in range(len(self._neqs)):
            var, tag, left, right = self._neqs[index]
            if self._branch_satisfied(var, left) or self._branch_satisfied(var, right):
                continue
            conflict_tags: List[object] = [tag]
            for kind, bound in (left, right):
                saved = self.mark()
                if kind == "ub":
                    conflict = self._assert_upper(var, bound, tag)
                else:
                    conflict = self._assert_lower(var, bound, tag)
                if conflict is None:
                    conflict = self._repair()
                if conflict is None:
                    # The branch bound keeps this disequality satisfied while
                    # the remaining ones are re-examined, so the recursion
                    # retires at least one violation per level.
                    conflict = self._check_neqs()
                self.undo_to(saved)
                if conflict is None:
                    return None  # this branch is feasible
                conflict_tags.extend(conflict)
            return conflict_tags
        return None

