"""Shared harness for the perf smoke benchmark scripts.

Each ``bench_*.py`` script defines its workloads as a mapping from
benchmark name to a zero-argument callable returning ``(elapsed_seconds,
counters_dict)`` and delegates the repeat/timing/JSON-report boilerplate
to :func:`run_suite`.  The report format is what
``scripts/check_bench_regression.py`` and the CI artifact trail consume:
per-case mean/min/max wall-clock plus the deterministic counters that
make a timing regression triageable on any machine.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
from pathlib import Path
from typing import Callable, Dict, Mapping, Tuple

#: A workload: runs once, returns (elapsed seconds, counters).
Runner = Callable[[], Tuple[float, Dict[str, int]]]


def run_suite(
    suite: str,
    benchmarks: Mapping[str, Runner],
    default_output: str,
    default_repeat: int = 5,
    description: str = None,
) -> int:
    """Time every workload ``--repeat`` times and write the JSON report."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--output", default=default_output, help="report path")
    parser.add_argument(
        "--repeat", type=int, default=default_repeat, help="runs per benchmark"
    )
    args = parser.parse_args()

    report = {
        "suite": suite,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeat": args.repeat,
        "benchmarks": [],
    }
    width = max(len(name) for name in benchmarks)
    for name, runner in benchmarks.items():
        timings = []
        counters: Dict[str, int] = {}
        for _ in range(args.repeat):
            elapsed, counters = runner()
            timings.append(elapsed)
        entry = {
            "name": name,
            "mean_s": statistics.mean(timings),
            "min_s": min(timings),
            "max_s": max(timings),
            "counters": counters,
        }
        report["benchmarks"].append(entry)
        print(
            f"{name:<{width}s} mean={entry['mean_s'] * 1000:7.2f}ms "
            f"min={entry['min_s'] * 1000:7.2f}ms "
            f"counters={counters}"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0
