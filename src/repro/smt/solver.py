"""The lazy DPLL(T) satisfiability solver.

This is the replacement for Z3 used by the original Synquid: a propositional
SAT core explores the boolean structure of the query, and every complete
assignment is checked against the combined EUF + LIA theory solver.
Conflicting assignments are generalized by deletion-based shrinking and
blocked, until either a theory-consistent assignment is found (SAT) or the
propositional abstraction is exhausted (UNSAT).

Pipeline (see :meth:`SmtSolver.is_satisfiable`):

1. boolean equalities are rewritten to ``iff``;
2. if-then-else terms are lifted into fresh definitional variables;
3. the formula is put into negation normal form;
4. finite-set atoms are compiled away (``repro.smt.sets``);
5. the result is Tseitin-encoded and handed to the lazy loop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..logic import ops
from ..logic.formulas import (
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Unknown,
    Var,
)
from ..logic.simplify import negation_normal_form, simplify
from ..logic.sorts import BOOL, BoolSort
from ..logic.transform import transform
from .sat import SatSolver
from .sets import eliminate_sets, mentions_sets
from .theory import Literal, TheoryChecker


@dataclass
class SolverStatistics:
    """Counters exposed for the evaluation harness."""

    sat_queries: int = 0
    validity_queries: int = 0
    theory_checks: int = 0
    cache_hits: int = 0


class SmtSolver:
    """Satisfiability and validity of quantifier-free refinement formulas."""

    #: Upper bound on lazy refinement iterations per query (safety net).
    MAX_ITERATIONS = 20_000

    def __init__(self) -> None:
        self._theory = TheoryChecker()
        self._cache: Dict[str, bool] = {}
        self.statistics = SolverStatistics()

    # -- public API ----------------------------------------------------------

    def is_valid(self, formula: Formula) -> bool:
        """Is ``formula`` true in every model?"""
        self.statistics.validity_queries += 1
        return not self.is_satisfiable(ops.not_(formula))

    def is_satisfiable(self, formula: Formula) -> bool:
        """Does ``formula`` have a model?"""
        key = repr(formula)
        if key in self._cache:
            self.statistics.cache_hits += 1
            return self._cache[key]
        self.statistics.sat_queries += 1
        result = self._solve(formula)
        self._cache[key] = result
        return result

    def clear_cache(self) -> None:
        """Drop memoized query results (used between benchmark runs)."""
        self._cache.clear()

    # -- preprocessing -------------------------------------------------------

    def _preprocess(self, formula: Formula) -> Formula:
        formula = simplify(formula)
        formula = _booleanize_equalities(formula)
        formula, definitions = _lift_ite(formula)
        if definitions:
            formula = ops.and_(formula, ops.conj(definitions))
        formula = negation_normal_form(formula)
        if mentions_sets(formula):
            formula = eliminate_sets(formula)
            formula = negation_normal_form(formula)
        return simplify(formula)

    # -- the lazy loop -------------------------------------------------------

    def _solve(self, formula: Formula) -> bool:
        formula = self._preprocess(formula)
        if isinstance(formula, BoolLit):
            return formula.value

        encoder = _TseitinEncoder()
        root = encoder.encode(formula)
        sat = SatSolver()
        sat.add_clauses(encoder.clauses)
        sat.add_clause([root])

        for _ in range(self.MAX_ITERATIONS):
            result = sat.solve()
            if not result.satisfiable:
                return False
            literals = encoder.theory_literals(result.model)
            self.statistics.theory_checks += 1
            if self._theory.is_consistent(literals):
                return True
            conflict = self._shrink_conflict(literals)
            blocking = [
                -encoder.atom_variable(lit.atom) if lit.polarity
                else encoder.atom_variable(lit.atom)
                for lit in conflict
            ]
            sat.add_clause(blocking)
        raise RuntimeError("SMT solver exceeded its iteration budget")

    def _shrink_conflict(self, literals: List[Literal]) -> List[Literal]:
        """Deletion-based minimization of an inconsistent literal set."""
        current = list(literals)
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1:]
            if candidate and not self._theory.is_consistent(candidate):
                current = candidate
            else:
                index += 1
        return current


# ---------------------------------------------------------------------------
# preprocessing helpers
# ---------------------------------------------------------------------------

def _booleanize_equalities(formula: Formula) -> Formula:
    """Rewrite ``a == b`` / ``a != b`` over booleans into (negated) ``iff``."""

    def rewrite(node: Formula) -> Formula:
        if isinstance(node, Binary) and node.op in (BinaryOp.EQ, BinaryOp.NEQ):
            if isinstance(node.lhs.sort, BoolSort):
                equivalence = ops.iff(node.lhs, node.rhs)
                return equivalence if node.op is BinaryOp.EQ else ops.not_(equivalence)
        return node

    return transform(formula, rewrite)


_ite_counter = itertools.count()


def _lift_ite(formula: Formula) -> Tuple[Formula, List[Formula]]:
    """Replace non-boolean ``ite`` terms by fresh variables with definitional
    constraints ``cond ==> v == then`` and ``!cond ==> v == else``."""
    definitions: List[Formula] = []

    def rewrite(node: Formula) -> Formula:
        if isinstance(node, Ite) and not isinstance(node.sort, BoolSort):
            fresh = Var(f"__ite{next(_ite_counter)}", node.sort)
            definitions.append(ops.implies(node.cond, ops.eq(fresh, node.then_)))
            definitions.append(ops.implies(ops.not_(node.cond), ops.eq(fresh, node.else_)))
            return fresh
        return node

    rewritten = transform(formula, rewrite)
    return rewritten, definitions


# ---------------------------------------------------------------------------
# Tseitin encoding
# ---------------------------------------------------------------------------

class _TseitinEncoder:
    """Encodes an NNF formula into CNF over fresh propositional variables."""

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []
        self._atom_vars: Dict[str, int] = {}
        self._atoms: Dict[str, Formula] = {}
        self._next_var = 1

    def _fresh(self) -> int:
        variable = self._next_var
        self._next_var += 1
        return variable

    def atom_variable(self, atom: Formula) -> int:
        """The propositional variable standing for a theory atom."""
        key = repr(atom)
        if key not in self._atom_vars:
            self._atom_vars[key] = self._fresh()
            self._atoms[key] = atom
        return self._atom_vars[key]

    def encode(self, formula: Formula) -> int:
        """Encode a formula; returns the literal equivalent to the formula."""
        if isinstance(formula, BoolLit):
            variable = self._fresh()
            self.clauses.append([variable] if formula.value else [-variable])
            return variable
        if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
            return -self.encode(formula.arg)
        if isinstance(formula, Binary) and formula.op is BinaryOp.AND:
            lhs, rhs = self.encode(formula.lhs), self.encode(formula.rhs)
            output = self._fresh()
            self.clauses.append([-output, lhs])
            self.clauses.append([-output, rhs])
            self.clauses.append([output, -lhs, -rhs])
            return output
        if isinstance(formula, Binary) and formula.op is BinaryOp.OR:
            lhs, rhs = self.encode(formula.lhs), self.encode(formula.rhs)
            output = self._fresh()
            self.clauses.append([-output, lhs, rhs])
            self.clauses.append([output, -lhs])
            self.clauses.append([output, -rhs])
            return output
        if isinstance(formula, Binary) and formula.op is BinaryOp.IMPLIES:
            return self.encode(ops.or_(ops.not_(formula.lhs), formula.rhs))
        if isinstance(formula, Binary) and formula.op is BinaryOp.IFF:
            both = ops.and_(
                ops.implies(formula.lhs, formula.rhs),
                ops.implies(formula.rhs, formula.lhs),
            )
            return self.encode(both)
        if isinstance(formula, Ite) and isinstance(formula.sort, BoolSort):
            expanded = ops.or_(
                ops.and_(formula.cond, formula.then_),
                ops.and_(ops.not_(formula.cond), formula.else_),
            )
            return self.encode(expanded)
        # A theory atom.
        return self.atom_variable(formula)

    def theory_literals(self, model: Dict[int, bool]) -> List[Literal]:
        """The theory literals implied by a propositional model."""
        literals: List[Literal] = []
        for key, variable in self._atom_vars.items():
            if variable in model:
                literals.append(Literal(self._atoms[key], model[variable]))
        return literals
