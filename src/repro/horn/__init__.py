"""Horn-constraint solving over predicate unknowns (Sec. 5 of the paper).

The third layer of the reproduction: constraints (``premises ==>
conclusion`` with :class:`~repro.logic.formulas.Unknown` nodes on either
side), qualifier spaces per unknown, and the greatest-fixpoint
:class:`HornSolver` that weakens candidate valuations until every
constraint is valid, issuing its validity queries through the incremental
SMT backend.
"""

from .constraints import HornConstraint, constraint
from .solver import Assignment, HornSolution, HornSolver, HornStatistics
from .spaces import QualifierSpace, as_space_map, build_space, build_spaces

__all__ = [
    "Assignment",
    "HornConstraint",
    "HornSolution",
    "HornSolver",
    "HornStatistics",
    "QualifierSpace",
    "as_space_map",
    "build_space",
    "build_spaces",
    "constraint",
]
