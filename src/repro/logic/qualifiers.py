"""Logical qualifiers and their instantiation.

A *qualifier* is an atomic formula over ``?``-placeholders (and possibly the
value variable ``nu``).  The space of liquid formulas for a predicate unknown
``P`` is the power set of ``Q_P``, the set of atomic formulas obtained by
replacing placeholders by variables of matching sorts that are in scope where
``P`` was created (Sec. 2 and Sec. 3.6 of the paper).

Qualifiers are either provided explicitly or extracted automatically from the
goal type and the component signatures (:func:`extract_qualifiers`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from . import ops
from .formulas import (
    COMPARISON_OPS,
    EQUALITY_OPS,
    SET_PREDICATES,
    VALUE_VAR,
    Binary,
    BoolLit,
    Formula,
    IntLit,
    Unary,
    UnaryOp,
    Var,
)
from .sorts import BOOL, INT, SetSort, Sort, UninterpretedSort, VarSort
from .substitution import substitute
from .transform import subterms, transform

#: Prefix of placeholder variable names inside qualifiers.
PLACEHOLDER_PREFIX = "?"


@dataclass(frozen=True)
class Qualifier:
    """A qualifier: an atomic boolean formula over placeholder variables.

    ``placeholders`` lists the placeholder names in the order they should be
    filled; each placeholder carries a sort that candidate variables must
    match (up to :func:`sorts_compatible`).
    """

    formula: Formula
    placeholders: Tuple[Tuple[str, Sort], ...]

    def arity(self) -> int:
        """Number of placeholders to fill."""
        return len(self.placeholders)


def placeholder(index: int, sort: Sort) -> Var:
    """The ``index``-th placeholder variable at ``sort``."""
    return Var(f"{PLACEHOLDER_PREFIX}{index}", sort)


def make_qualifier(formula: Formula) -> Qualifier:
    """Build a qualifier from a formula containing placeholder variables."""
    seen: Dict[str, Sort] = {}
    for node in subterms(formula):
        if isinstance(node, Var) and node.name.startswith(PLACEHOLDER_PREFIX):
            seen.setdefault(node.name, node.var_sort)
    ordered = tuple(sorted(seen.items(), key=lambda kv: kv[0]))
    return Qualifier(formula, ordered)


def default_qualifiers() -> List[Qualifier]:
    """The paper's running qualifier set ``{? <= ?, ? != ?}`` plus comparisons
    of a variable against the value variable, which cover branch guards for
    all integer benchmarks."""
    a = placeholder(0, INT)
    b = placeholder(1, INT)
    return [
        make_qualifier(ops.le(a, b)),
        make_qualifier(ops.neq(a, b)),
        make_qualifier(ops.lt(a, b)),
        make_qualifier(ops.eq(a, b)),
    ]


def sorts_compatible(candidate: Sort, wanted: Sort) -> bool:
    """May a variable of sort ``candidate`` fill a placeholder of sort
    ``wanted``?  Sort variables are compatible with everything (they stand for
    an unknown type-variable instantiation)."""
    if isinstance(wanted, VarSort) or isinstance(candidate, VarSort):
        return True
    if isinstance(candidate, SetSort) and isinstance(wanted, SetSort):
        return sorts_compatible(candidate.element, wanted.element)
    if isinstance(candidate, UninterpretedSort) and isinstance(wanted, UninterpretedSort):
        return candidate.name == wanted.name
    return candidate == wanted


def instantiate_qualifier(
    qualifier: Qualifier, candidates: Sequence[Formula]
) -> Iterable[Formula]:
    """All instantiations of ``qualifier`` with distinct candidate formulas of
    compatible sorts substituted for its placeholders."""
    slots: List[List[Formula]] = []
    for name, sort in qualifier.placeholders:
        matching = [c for c in candidates if sorts_compatible(c.sort, sort)]
        slots.append(matching)
    for choice in itertools.product(*slots):
        if len(set(choice)) < len(choice):
            continue  # skip trivially-reflexive instantiations like x <= x
        mapping = {name: value for (name, _), value in zip(qualifier.placeholders, choice)}
        yield substitute(qualifier.formula, mapping)


def instantiate_all(
    qualifiers: Sequence[Qualifier], candidates: Sequence[Formula]
) -> List[Formula]:
    """Union of all instantiations of all qualifiers, deduplicated."""
    seen: Set[Formula] = set()
    result: List[Formula] = []
    for qualifier in qualifiers:
        for inst in instantiate_qualifier(qualifier, candidates):
            if inst not in seen:
                seen.add(inst)
                result.append(inst)
    return result


# ---------------------------------------------------------------------------
# automatic qualifier extraction (Sec. 2: "Our system extracts an initial set
# of such predicates automatically from the goal type and the types of
# components")
# ---------------------------------------------------------------------------

def extract_qualifiers(formulas: Iterable[Formula]) -> List[Qualifier]:
    """Abstract the atomic subformulas of the given refinements into
    qualifiers by replacing their variables with placeholders."""
    result: List[Qualifier] = []
    seen: Set[Formula] = set()
    for formula in formulas:
        for atom in _atoms(formula):
            qualifier = _abstract_atom(atom)
            if qualifier is None:
                continue
            if qualifier.formula not in seen:
                seen.add(qualifier.formula)
                result.append(qualifier)
    return result


def _atoms(formula: Formula) -> Iterable[Formula]:
    interesting = COMPARISON_OPS | EQUALITY_OPS | SET_PREDICATES
    for node in subterms(formula):
        if isinstance(node, Binary) and node.op in interesting:
            yield node
        elif isinstance(node, Unary) and node.op is UnaryOp.NOT:
            yield node
        elif isinstance(node, Var) and node.var_sort == BOOL:
            yield node


def _abstract_atom(atom: Formula) -> Qualifier | None:
    """Replace program variables (not nu, not literals) with placeholders."""
    mapping: Dict[str, Var] = {}

    def replace(node: Formula) -> Formula:
        if isinstance(node, Var) and node.name != VALUE_VAR:
            if node.name not in mapping:
                mapping[node.name] = placeholder(len(mapping), node.var_sort)
            return mapping[node.name]
        return node

    abstracted = transform(atom, replace)
    if isinstance(abstracted, (BoolLit, IntLit)):
        return None
    return make_qualifier(abstracted)
