"""The lazy DPLL(T) satisfiability solver.

This is the replacement for Z3 used by the original Synquid: a propositional
SAT core explores the boolean structure of the query, and every complete
assignment is checked against the combined EUF + LIA theory solver.
Conflicting assignments are generalized by deletion-based shrinking and
blocked, until either a theory-consistent assignment is found (SAT) or the
propositional abstraction is exhausted (UNSAT).

Two entry points share that loop:

* :class:`IncrementalSolver` — the workhorse.  One persistent Tseitin
  encoder, SAT solver and theory checker serve every query; each asserted
  formula is guarded by an *assumption literal* (a selector), scopes are
  just stacks of active selectors, and ``check`` solves under the active
  selectors.  Re-asserting a formula (the Horn fixpoint loop does this
  constantly) reuses its existing CNF, and theory lemmas learned in one
  query prune all later ones.

* :class:`SmtSolver` — the one-shot façade kept for back compatibility.
  It owns an :class:`IncrementalSolver`, wraps each query in a
  ``push``/``assert_``/``check``/``pop`` bracket, and memoizes results in a
  bounded LRU cache keyed by interned formulas.

Per-query preprocessing (see :meth:`IncrementalSolver._preprocess`):

1. boolean equalities are rewritten to ``iff``;
2. if-then-else terms are lifted into fresh definitional variables;
3. the formula is put into negation normal form;
4. finite-set atoms are compiled away (``repro.smt.sets``);
5. the result is Tseitin-encoded and handed to the lazy loop.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..logic import ops
from ..logic.formulas import (
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    Ite,
    Unary,
    UnaryOp,
    intern_formula,
    is_false,
    is_true,
)
from ..logic.simplify import negation_normal_form, simplify
from ..logic.sorts import BoolSort
from ..logic.transform import transform
from .interface import SolverBackend
from .names import FreshNames
from .sat import SatSolver
from .sets import eliminate_sets, mentions_sets
from .theory import Literal, TheoryChecker


@dataclass
class SolverStatistics:
    """Counters exposed for the evaluation harness."""

    sat_queries: int = 0
    validity_queries: int = 0
    theory_checks: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    #: Distinct formulas encoded into CNF (selector created).
    encoded_assertions: int = 0
    #: Assertions answered from the selector table without re-encoding.
    reused_assertions: int = 0


# ---------------------------------------------------------------------------
# Tseitin encoding
# ---------------------------------------------------------------------------

class TseitinEncoder:
    """Encodes NNF formulas into CNF over fresh propositional variables.

    The encoder is persistent: theory atoms and previously encoded formulas
    are memoized in formula-keyed tables (O(1) lookups thanks to the cached
    structural hashes), so encoding the same subformula twice costs a single
    dictionary probe instead of a CNF rebuild.

    Clause *provenance* is tracked per encoded formula (the clauses it
    emitted itself plus the formulas it delegated to), so a consumer can ask
    for exactly the clauses a given root formula depends on
    (:meth:`clause_closure`) instead of dragging the whole ever-growing
    clause database into every SAT call.
    """

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []
        self._atom_vars: Dict[Formula, int] = {}
        self._var_atoms: Dict[int, Formula] = {}
        self._roots: Dict[Formula, int] = {}
        #: clause indices emitted directly while encoding a formula
        self._formula_clauses: Dict[Formula, List[int]] = {}
        #: subformulas whose encodings a formula depends on
        self._formula_deps: Dict[Formula, List[Formula]] = {}
        #: atom variables referenced directly while encoding a formula
        self._formula_atoms: Dict[Formula, List[int]] = {}
        self._clause_closures: Dict[Formula, frozenset] = {}
        self._atom_closures: Dict[Formula, frozenset] = {}
        self._frames: List[Tuple[List[int], List[Formula], List[int]]] = []
        self._next_var = 1

    def fresh_var(self) -> int:
        """Allocate a fresh propositional variable."""
        variable = self._next_var
        self._next_var += 1
        return variable

    def atom_variable(self, atom: Formula) -> int:
        """The propositional variable standing for a theory atom."""
        variable = self._atom_vars.get(atom)
        if variable is None:
            variable = self.fresh_var()
            self._atom_vars[atom] = variable
            self._var_atoms[variable] = atom
        if self._frames:
            self._frames[-1][2].append(variable)
        return variable

    def emit_clause(self, clause: List[int]) -> int:
        """Record a clause; returns its index in :attr:`clauses`."""
        index = len(self.clauses)
        self.clauses.append(clause)
        if self._frames:
            self._frames[-1][0].append(index)
        return index

    def encode(self, formula: Formula) -> int:
        """Encode a formula; returns the literal equivalent to the formula."""
        if self._frames:
            self._frames[-1][1].append(formula)
        cached = self._roots.get(formula)
        if cached is not None:
            return cached
        self._frames.append(([], [], []))
        try:
            literal = self._encode(formula)
        finally:
            own, deps, atoms = self._frames.pop()
        self._roots[formula] = literal
        self._formula_clauses[formula] = own
        self._formula_deps[formula] = deps
        self._formula_atoms[formula] = atoms
        return literal

    def clause_closure(self, formula: Formula) -> frozenset:
        """Indices of every clause the formula's encoding depends on."""
        return self._closure(formula, self._clause_closures, self._formula_clauses)

    def atom_closure(self, formula: Formula) -> frozenset:
        """Variables of every theory atom the formula's encoding contains."""
        return self._closure(formula, self._atom_closures, self._formula_atoms)

    def _closure(
        self,
        formula: Formula,
        cache: Dict[Formula, frozenset],
        contributions: Dict[Formula, List[int]],
    ) -> frozenset:
        cached = cache.get(formula)
        if cached is not None:
            return cached
        needed: set = set()
        stack, seen = [formula], set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            needed.update(contributions.get(current, ()))
            stack.extend(self._formula_deps.get(current, ()))
        closure = frozenset(needed)
        cache[formula] = closure
        return closure

    def _encode(self, formula: Formula) -> int:
        if isinstance(formula, BoolLit):
            variable = self.fresh_var()
            self.emit_clause([variable] if formula.value else [-variable])
            return variable
        if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
            return -self.encode(formula.arg)
        if isinstance(formula, Binary) and formula.op is BinaryOp.AND:
            lhs, rhs = self.encode(formula.lhs), self.encode(formula.rhs)
            output = self.fresh_var()
            self.emit_clause([-output, lhs])
            self.emit_clause([-output, rhs])
            self.emit_clause([output, -lhs, -rhs])
            return output
        if isinstance(formula, Binary) and formula.op is BinaryOp.OR:
            lhs, rhs = self.encode(formula.lhs), self.encode(formula.rhs)
            output = self.fresh_var()
            self.emit_clause([-output, lhs, rhs])
            self.emit_clause([output, -lhs])
            self.emit_clause([output, -rhs])
            return output
        if isinstance(formula, Binary) and formula.op is BinaryOp.IMPLIES:
            return self.encode(ops.or_(ops.not_(formula.lhs), formula.rhs))
        if isinstance(formula, Binary) and formula.op is BinaryOp.IFF:
            both = ops.and_(
                ops.implies(formula.lhs, formula.rhs),
                ops.implies(formula.rhs, formula.lhs),
            )
            return self.encode(both)
        if isinstance(formula, Ite) and isinstance(formula.sort, BoolSort):
            expanded = ops.or_(
                ops.and_(formula.cond, formula.then_),
                ops.and_(ops.not_(formula.cond), formula.else_),
            )
            return self.encode(expanded)
        # A theory atom.
        return self.atom_variable(formula)

    def theory_literals(
        self, model: Dict[int, bool], restrict: Optional[frozenset] = None
    ) -> List[Literal]:
        """The theory literals implied by a propositional model.

        When ``restrict`` is given, only atoms whose variable belongs to it
        are reported — the incremental backend passes the variables of the
        *active* assertions that the search actually assigned, keeping
        don't-care atoms out of the theory checker.  The restricted path
        walks ``restrict``, not the solver-lifetime atom table, so its cost
        tracks the live scope.
        """
        literals: List[Literal] = []
        if restrict is not None:
            for variable in sorted(restrict):
                atom = self._var_atoms.get(variable)
                if atom is not None and variable in model:
                    literals.append(Literal(atom, model[variable]))
            return literals
        for atom, variable in self._atom_vars.items():
            if variable in model:
                literals.append(Literal(atom, model[variable]))
        return literals


# ---------------------------------------------------------------------------
# the incremental backend
# ---------------------------------------------------------------------------

class IncrementalSolver(SolverBackend):
    """Assumption-literal based incremental DPLL(T) solver.

    Every distinct asserted formula gets a *selector* literal ``s`` and a
    guard clause ``s -> formula``; a scope is the list of selectors asserted
    since the matching ``push``, and ``check`` solves under the union of the
    live selectors as assumptions.  Popping a scope merely forgets its
    selector list — the CNF, the atom table, and all learned theory lemmas
    stay, so later scopes that re-assert the same formulas (the Horn
    fixpoint loop, the type checker's subtyping queries) reuse everything.

    Theory lemmas learned by blocking inconsistent assignments are valid
    sentences of the theory, so keeping them across scopes is sound.  Each
    ``check`` hands the SAT core only the clauses the *active* assertions
    depend on (via the encoder's clause provenance) plus the learned lemmas
    over active atoms, so query cost tracks the live scope rather than the
    whole history of the solver.

    Note on finite sets: set atoms are compiled away per assertion, so the
    element universe of a positive set equality/inclusion is the assertion's
    own universe rather than the whole scope's.  Splitting one formula into
    several assertions can therefore under-approximate unsatisfiability of
    set constraints; callers deciding *validity* (unsat of the negation)
    stay sound, and :meth:`is_valid_implication` conjoins automatically
    when sets are involved.  Assert a single conjunction when exact set
    reasoning across hand-rolled assertions is required.
    """

    #: Upper bound on lazy refinement iterations per query (safety net).
    MAX_ITERATIONS = 20_000

    def __init__(self, statistics: Optional[SolverStatistics] = None) -> None:
        self._encoder = TseitinEncoder()
        self._theory = TheoryChecker()
        self._fresh = FreshNames()
        #: formula -> selector literal (None when the formula is trivially true).
        self._selectors: Dict[Formula, Optional[int]] = {}
        #: selector literal -> variables of the theory atoms it activates.
        self._selector_atoms: Dict[int, frozenset] = {}
        #: selector literal -> (guard clause index, encoded root formula or None).
        self._selector_info: Dict[int, Tuple[int, Optional[Formula]]] = {}
        #: learned theory lemmas, indexed by one representative atom variable
        #: so a check only examines lemmas touching its active atoms.
        self._lemmas_by_var: Dict[int, List[List[int]]] = {}
        self._frames: List[List[int]] = [[]]
        self.statistics = statistics if statistics is not None else SolverStatistics()

    # -- SolverBackend -------------------------------------------------------

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise RuntimeError("pop without matching push")
        self._frames.pop()

    def has_assertions(self) -> bool:
        """Is any assertion live in any scope (base frame included)?"""
        return any(self._frames)

    def assert_(self, formula: Formula) -> None:
        formula = intern_formula(formula)
        if formula in self._selectors:
            self.statistics.reused_assertions += 1
            selector = self._selectors[formula]
        else:
            selector = self._make_selector(formula)
            self._selectors[formula] = selector
        if selector is not None:
            self._frames[-1].append(selector)

    def check(self) -> bool:
        self.statistics.sat_queries += 1
        assumptions = [lit for frame in self._frames for lit in frame]
        active_atoms = frozenset().union(
            *(self._selector_atoms[lit] for lit in assumptions)
        ) if assumptions else frozenset()
        sat = self._relevant_sat_solver(assumptions, active_atoms)
        for _ in range(self.MAX_ITERATIONS):
            result = sat.solve(assumptions)
            if not result.satisfiable:
                return False
            # Only atoms of live assertions that the search actually decided
            # constrain the theory; everything else is a don't-care.
            literals = self._encoder.theory_literals(result.model, active_atoms & result.assigned)
            self.statistics.theory_checks += 1
            if self._theory.is_consistent(literals):
                return True
            conflict = _shrink_conflict(self._theory, literals)
            blocking = [
                -self._encoder.atom_variable(lit.atom) if lit.polarity
                else self._encoder.atom_variable(lit.atom)
                for lit in conflict
            ]
            self._lemmas_by_var.setdefault(
                min(abs(literal) for literal in blocking), []
            ).append(blocking)
            sat.add_clause(blocking)
        raise RuntimeError("SMT solver exceeded its iteration budget")

    def check_assuming(self, formulas) -> bool:
        formulas = list(formulas)
        if any(mentions_sets(f) for f in formulas):
            # Per-assertion set elimination scopes element universes too
            # narrowly for cross-assertion reasoning; fall back to one
            # conjoined assertion (the exact, one-shot pipeline).
            self.push()
            try:
                self.assert_(ops.conj(formulas))
                return self.check()
            finally:
                self.pop()
        return super().check_assuming(formulas)

    def is_valid_implication(self, premises, conclusion: Formula) -> bool:
        premises = list(premises)
        if mentions_sets(conclusion) or any(mentions_sets(p) for p in premises):
            return not self.check_assuming([ops.and_(ops.conj(premises), ops.not_(conclusion))])
        return super().is_valid_implication(premises, conclusion)

    # -- internals -----------------------------------------------------------

    def _make_selector(self, formula: Formula) -> Optional[int]:
        self.statistics.encoded_assertions += 1
        processed = self._preprocess(formula)
        if is_true(processed):
            return None
        selector = self._encoder.fresh_var()
        if is_false(processed):
            # Assuming the selector contradicts this unit guard, making any
            # scope that asserts the formula unsatisfiable.
            guard = self._encoder.emit_clause([-selector])
            self._selector_atoms[selector] = frozenset()
            self._selector_info[selector] = (guard, None)
        else:
            root = self._encoder.encode(processed)
            guard = self._encoder.emit_clause([-selector, root])
            self._selector_info[selector] = (guard, processed)
            self._selector_atoms[selector] = self._encoder.atom_closure(processed)
        return selector

    def _relevant_sat_solver(self, assumptions: List[int], active_atoms: frozenset) -> SatSolver:
        """A SAT solver primed with exactly the clauses this check needs:
        the active assertions' guard clauses and encodings, plus learned
        lemmas entirely over active atoms (lemmas touching an inactive atom
        are trivially satisfiable here and would only slow the search)."""
        needed: set = set()
        for selector in set(assumptions):
            guard, root = self._selector_info[selector]
            needed.add(guard)
            if root is not None:
                needed.update(self._encoder.clause_closure(root))
        sat = SatSolver()
        clauses = self._encoder.clauses
        sat.add_clauses(clauses[index] for index in sorted(needed))
        for variable in active_atoms:
            for lemma in self._lemmas_by_var.get(variable, ()):
                if all(abs(literal) in active_atoms for literal in lemma):
                    sat.add_clause(lemma)
        return sat

    def _preprocess(self, formula: Formula) -> Formula:
        formula = simplify(formula)
        formula = _booleanize_equalities(formula)
        formula, definitions = _lift_ite(formula, self._fresh)
        if definitions:
            formula = ops.and_(formula, ops.conj(definitions))
        formula = negation_normal_form(formula)
        if mentions_sets(formula):
            formula = eliminate_sets(formula, self._fresh)
            formula = negation_normal_form(formula)
        return simplify(formula)


def _shrink_conflict(theory: TheoryChecker, literals: List[Literal]) -> List[Literal]:
    """Deletion-based minimization of an inconsistent literal set."""
    current = list(literals)
    index = 0
    while index < len(current):
        candidate = current[:index] + current[index + 1:]
        if candidate and not theory.is_consistent(candidate):
            current = candidate
        else:
            index += 1
    return current


# ---------------------------------------------------------------------------
# the one-shot façade
# ---------------------------------------------------------------------------

#: Default bound on the memoized query cache of :class:`SmtSolver`.
DEFAULT_CACHE_SIZE = 4096


class SmtSolver:
    """Satisfiability and validity of quantifier-free refinement formulas.

    A thin memoizing façade over a :class:`SolverBackend` (by default a
    private :class:`IncrementalSolver`): each query runs in its own scope,
    and results are cached in a bounded LRU keyed by the interned formula.
    Cached answers are context-free, so the cache is bypassed whenever the
    backend reports live assertions (the iteration budget also lives on the
    backend: ``solver.backend.MAX_ITERATIONS``).
    """

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional[SolverBackend] = None,
    ) -> None:
        if backend is None:
            self.statistics = SolverStatistics()
            self._backend: SolverBackend = IncrementalSolver(self.statistics)
        else:
            self._backend = backend
            self.statistics = getattr(backend, "statistics", SolverStatistics())
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self._cache: "OrderedDict[Formula, bool]" = OrderedDict()
        self._cache_size = cache_size

    # -- public API ----------------------------------------------------------

    @property
    def backend(self) -> SolverBackend:
        """The incremental backend answering this solver's queries."""
        return self._backend

    def is_valid(self, formula: Formula) -> bool:
        """Is ``formula`` true in every model?"""
        self.statistics.validity_queries += 1
        return not self.is_satisfiable(ops.not_(formula))

    def is_satisfiable(self, formula: Formula) -> bool:
        """Does ``formula`` have a model?

        Answers are memoized only when the backend carries no live
        assertions — in a non-empty context the answer depends on that
        context and must not be cached as context-free.
        """
        key = intern_formula(formula)
        contextual = self._backend.has_assertions()
        if not contextual:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.statistics.cache_hits += 1
                return cached
        self._backend.push()
        try:
            self._backend.assert_(key)
            result = self._backend.check()
        finally:
            self._backend.pop()
        if contextual:
            return result
        self._cache[key] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self.statistics.cache_evictions += 1
        return result

    def clear_cache(self) -> None:
        """Drop memoized query results (used between benchmark runs)."""
        self._cache.clear()


# ---------------------------------------------------------------------------
# preprocessing helpers
# ---------------------------------------------------------------------------

def _booleanize_equalities(formula: Formula) -> Formula:
    """Rewrite ``a == b`` / ``a != b`` over booleans into (negated) ``iff``."""

    def rewrite(node: Formula) -> Formula:
        if isinstance(node, Binary) and node.op in (BinaryOp.EQ, BinaryOp.NEQ):
            if isinstance(node.lhs.sort, BoolSort):
                equivalence = ops.iff(node.lhs, node.rhs)
                return equivalence if node.op is BinaryOp.EQ else ops.not_(equivalence)
        return node

    return transform(formula, rewrite)


def _lift_ite(formula: Formula, fresh: FreshNames) -> Tuple[Formula, List[Formula]]:
    """Replace non-boolean ``ite`` terms by fresh variables with definitional
    constraints ``cond ==> v == then`` and ``!cond ==> v == else``."""
    definitions: List[Formula] = []

    def rewrite(node: Formula) -> Formula:
        if isinstance(node, Ite) and not isinstance(node.sort, BoolSort):
            fresh_var = fresh.fresh_var("ite", node.sort)
            definitions.append(ops.implies(node.cond, ops.eq(fresh_var, node.then_)))
            definitions.append(ops.implies(ops.not_(node.cond), ops.eq(fresh_var, node.else_)))
            return fresh_var
        return node

    rewritten = transform(formula, rewrite)
    return rewritten, definitions
