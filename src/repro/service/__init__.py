"""Synthesis as a service: persistent server, result cache, batch mode.

The seventh layer of the stack (see ``docs/architecture.md``): everything
below — parser, typechecker, Horn solver, SMT stack, synthesizer — is a
pure function from a program to a result, so results can be
content-addressed and computed behind a long-running front.  This package
provides the three pieces:

- :mod:`repro.service.cache` — the persistent content-addressed store
  (query results keyed by program digest; a cross-run pool of
  alpha-canonical theory lemmas).
- :mod:`repro.service.worker` — :class:`WarmStack`, one persistent
  incremental solver reused across queries.
- :mod:`repro.service.api` — ``check``/``synth`` as payload-returning
  queries, the layer the CLI, the HTTP server
  (:mod:`repro.service.server`) and the batch pipeline
  (:mod:`repro.service.batch`) all render from.
"""

from .api import check_query, compute_check, compute_synth, synth_query
from .cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    LemmaStore,
    ResultCache,
    canonical_program_text,
    default_cache_dir,
    open_cache,
    program_digest,
    query_digest,
)
from .worker import WarmStack

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "LemmaStore",
    "ResultCache",
    "WarmStack",
    "canonical_program_text",
    "check_query",
    "compute_check",
    "compute_synth",
    "default_cache_dir",
    "open_cache",
    "program_digest",
    "query_digest",
    "synth_query",
]
