"""Tests for the program syntax layer: types, terms, and the parser."""

import pytest

from repro.logic import ops
from repro.logic.formulas import TRUE, Unknown, Var, value_var
from repro.logic.sorts import BOOL, INT, UninterpretedSort, VarSort
from repro.syntax import (
    ContextualType,
    DataBase,
    FunctionType,
    ParseError,
    PredSig,
    ScalarType,
    TypeSchema,
    app,
    arrow,
    bool_type,
    data_type,
    if_,
    instantiate_schema,
    int_type,
    lam,
    lit,
    monomorphic,
    parse_formula,
    parse_type,
    pretty_term,
    pretty_type,
    same_shape,
    shape,
    subst_type_vars,
    substitute_in_type,
    type_free_vars,
    type_var,
    v,
)

x = ops.var("x", INT)
y = ops.var("y", INT)
nu = value_var(INT)


class TestTypes:
    def test_base_sorts(self):
        assert int_type().sort == INT
        assert bool_type().sort == BOOL
        assert type_var("a").sort == VarSort("a")
        assert data_type("List", [int_type()]).sort == UninterpretedSort("List", (INT,))

    def test_shape_erases_refinements(self):
        t = arrow("x", int_type(ops.ge(nu, x)), int_type(ops.ge(nu, ops.int_lit(0))))
        erased = shape(t)
        assert erased.arg_type.refinement == TRUE
        assert erased.result_type.refinement == TRUE

    def test_same_shape(self):
        assert same_shape(int_type(ops.ge(nu, x)), int_type())
        assert not same_shape(int_type(), bool_type())
        assert same_shape(type_var("a"), int_type())
        assert same_shape(arrow("x", int_type(), int_type()), arrow("y", int_type(), int_type()))
        assert not same_shape(arrow("x", int_type(), int_type()), int_type())
        assert same_shape(data_type("List", [int_type()]), data_type("List", [int_type()]))
        assert not same_shape(data_type("List"), data_type("Tree"))

    def test_type_free_vars_excludes_binders(self):
        t = arrow("x", int_type(), int_type(ops.and_(ops.ge(nu, x), ops.ge(nu, y))))
        assert type_free_vars(t) == {"y"}

    def test_contextual_free_vars(self):
        t = ContextualType(
            (("c", int_type(ops.eq(nu, ops.plus(x, ops.int_lit(1))))),),
            int_type(ops.eq(nu, Var("c", INT))),
        )
        assert type_free_vars(t) == {"x"}


class TestSubstitution:
    def test_scalar_substitution(self):
        t = int_type(ops.ge(nu, x))
        assert substitute_in_type(t, {"x": y}).refinement == ops.ge(nu, y)

    def test_value_var_never_substituted(self):
        t = int_type(ops.ge(nu, x))
        assert substitute_in_type(t, {"_v": y}) == t

    def test_binder_shadows_mapping(self):
        t = arrow("x", int_type(), int_type(ops.eq(nu, x)))
        # the arrow's own x is not the x being substituted
        assert substitute_in_type(t, {"x": y}).result_type.refinement == ops.eq(nu, x)

    def test_capture_avoiding_rename(self):
        # (b:Int -> {Int | nu == a + b})[b/a]: the binder must be renamed so
        # the substituted outer b is not captured.
        b = ops.var("b", INT)
        t = arrow("b", int_type(), int_type(ops.eq(nu, ops.plus(ops.var("a", INT), b))))
        result = substitute_in_type(t, {"a": b})
        assert result.arg_name == "b'"
        renamed = ops.var("b'", INT)
        assert result.result_type.refinement == ops.eq(nu, ops.plus(b, renamed))

    def test_subst_type_vars_conjoins_refinements(self):
        t = type_var("a", ops.ge(nu, x))
        target = int_type(ops.ge(nu, ops.int_lit(0)))
        result = subst_type_vars(t, {"a": target})
        assert result.base == int_type().base
        assert result.refinement == ops.and_(ops.ge(nu, ops.int_lit(0)), ops.ge(nu, x))

    def test_subst_type_vars_function_target(self):
        t = arrow("x", type_var("a"), type_var("a"))
        target = arrow("z", int_type(), int_type())
        result = subst_type_vars(t, {"a": target})
        assert isinstance(result.arg_type, FunctionType)
        assert isinstance(result.result_type, FunctionType)

    def test_subst_type_vars_rejects_refined_function_instantiation(self):
        t = type_var("a", ops.ge(nu, x))
        with pytest.raises(TypeError):
            subst_type_vars(t, {"a": arrow("z", int_type(), int_type())})


class TestSchemas:
    def test_monotype(self):
        schema = monomorphic(int_type())
        assert schema.monotype() == int_type()
        with pytest.raises(TypeError):
            TypeSchema(("a",), (), type_var("a")).monotype()

    def test_predicate_instantiation(self):
        body = arrow("x", int_type(), ScalarType(int_type().base, Unknown("P")))
        schema = TypeSchema((), (PredSig("P", (INT,)),), body)
        result = instantiate_schema(schema, pred_args={"P": "_P7"})
        assert result.result_type.refinement == Unknown("_P7")

    def test_type_var_instantiation(self):
        schema = TypeSchema(("a",), (), arrow("x", type_var("a"), type_var("a")))
        result = instantiate_schema(schema, type_args={"a": int_type()})
        assert result.arg_type == int_type()
        assert result.result_type == int_type()


class TestTerms:
    def test_builders(self):
        term = lam("x", "y", body=if_(v("c"), app(v("f"), v("x"), v("y")), lit(0)))
        assert term.arg_name == "x"
        assert term.body.arg_name == "y"
        conditional = term.body.body
        assert conditional.cond == v("c")
        assert conditional.then_.fun.fun == v("f")

    def test_e_term_classification(self):
        assert v("x").is_e_term()
        assert lit(3).is_e_term()
        assert lit(True).is_e_term()
        assert app(v("f"), v("x")).is_e_term()
        assert not lam("x", body=v("x")).is_e_term()
        assert not if_(v("c"), v("x"), v("y")).is_e_term()

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            app(v("f"))
        with pytest.raises(ValueError):
            lam("x")

    def test_pretty(self):
        term = lam("x", body=if_(v("c"), app(v("f"), v("x")), lit(0)))
        assert pretty_term(term) == "\\x . if c then f x else 0"


class TestFormulaParser:
    def test_precedence(self):
        parsed = parse_formula("x + y * 2 <= x - 1", {"x": INT, "y": INT})
        expected = ops.le(ops.plus(x, ops.times(y, ops.int_lit(2))), ops.minus(x, ops.int_lit(1)))
        assert parsed == expected

    def test_boolean_connectives(self):
        parsed = parse_formula("x <= y && !(x == y) ==> x < y || False", {"x": INT, "y": INT})
        expected = ops.implies(
            ops.and_(ops.le(x, y), ops.not_(ops.eq(x, y))),
            ops.or_(ops.lt(x, y), ops.bool_lit(False)),
        )
        assert parsed == expected

    def test_implication_is_right_associative(self):
        a, b, c = (ops.var(name, BOOL) for name in "abc")
        scope = {"a": BOOL, "b": BOOL, "c": BOOL}
        assert parse_formula("a ==> b ==> c", scope) == ops.implies(a, ops.implies(b, c))

    def test_value_variable_needs_sort(self):
        assert parse_formula("nu >= x", {"x": INT}, value_sort=INT) == ops.ge(nu, x)
        with pytest.raises(ParseError):
            parse_formula("nu >= x", {"x": INT})

    def test_unary_minus(self):
        assert parse_formula("-x <= 0", {"x": INT}) == ops.le(ops.neg(x), ops.int_lit(0))

    def test_measures(self):
        measures = {"len": ((INT,), INT)}
        parsed = parse_formula("len(x) >= 0", {"x": INT}, measures=measures)
        assert parsed == ops.ge(ops.measure("len", x, INT), ops.int_lit(0))

    def test_set_literals_and_membership(self):
        parsed = parse_formula("x in [x, y]", {"x": INT, "y": INT})
        assert parsed == ops.member(x, ops.set_lit(INT, [x, y]))
        with pytest.raises(ParseError):
            parse_formula("x in []", {"x": INT})

    def test_parse_errors(self):
        with pytest.raises(ParseError):
            parse_formula("x @ y", {"x": INT, "y": INT})
        with pytest.raises(ParseError):
            parse_formula("x +", {"x": INT})
        with pytest.raises(ParseError):
            parse_formula("(x", {"x": INT})
        with pytest.raises(ParseError):
            parse_formula("unbound + 1", {})
        with pytest.raises(ParseError):
            parse_formula("len(x)", {"x": INT})  # unknown measure
        with pytest.raises(ParseError):
            parse_formula("f(x, y)", {"x": INT, "y": INT}, measures={"f": ((INT,), INT)})


class TestTypeParser:
    def test_scalar_sugar(self):
        assert parse_type("Int") == int_type()
        assert parse_type("Bool") == bool_type()
        assert parse_type("{Int | nu >= 0}") == int_type(ops.ge(nu, ops.int_lit(0)))

    def test_dependent_arrow(self):
        parsed = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        assert parsed == arrow(
            "x",
            int_type(),
            arrow("y", int_type(), int_type(ops.and_(ops.ge(nu, x), ops.ge(nu, y)))),
        )

    def test_anonymous_arrow_binders(self):
        parsed = parse_type("Int -> Int")
        assert isinstance(parsed, FunctionType)
        assert parsed.arg_name.startswith("_arg")

    def test_refinements_see_outer_scope(self):
        parsed = parse_type("{Int | nu >= lo}", scope={"lo": INT})
        assert parsed.refinement == ops.ge(nu, ops.var("lo", INT))

    def test_binder_leaves_scope_after_arrow(self):
        with pytest.raises(ParseError):
            parse_type("(x:Int -> Int) -> {Int | nu >= x}")

    def test_datatypes_and_type_vars(self):
        parsed = parse_type("xs:List Int -> {Int | nu >= 0}")
        assert parsed.arg_type.base == DataBase("List", (int_type(),))
        assert parse_type("a") == type_var("a")
        parenthesized = parse_type("List ({Int | nu >= 0})")
        assert parenthesized.base.args[0] == int_type(ops.ge(nu, ops.int_lit(0)))

    def test_datatype_argument_forms(self):
        assert parse_type("List a").base == DataBase("List", (type_var("a"),))
        pair = parse_type("Pair (List Int) Bool")
        assert pair.base == DataBase("Pair", (data_type("List", [int_type()]), bool_type()))
        assert parse_type("Pair Maybe a").base == DataBase(
            "Pair", (data_type("Maybe"), type_var("a"))
        )

    def test_higher_order_argument(self):
        parsed = parse_type("f:(Int -> Int) -> Int")
        assert isinstance(parsed.arg_type, FunctionType)

    def test_pretty_type(self):
        text = "x:Int -> {Int | (nu >= x)}"
        assert pretty_type(parse_type(text)) == text

    def test_type_parse_errors(self):
        with pytest.raises(ParseError):
            parse_type("x:Int")  # binder without arrow
        with pytest.raises(ParseError):
            parse_type("{Int | nu >= missing}")
        with pytest.raises(ParseError):
            parse_type("Int Int")  # trailing input
        with pytest.raises(ParseError):
            parse_type("->")
