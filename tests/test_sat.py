"""Tests for the propositional SAT core and the EUF+LIA theory checker."""

from repro.logic import ops
from repro.logic.sorts import BOOL, INT
from repro.smt.sat import SatSolver, solve_clauses
from repro.smt.theory import Literal, TheoryChecker

x = ops.var("x", INT)
y = ops.var("y", INT)
z = ops.var("z", INT)


class TestSatSolver:
    def test_simple_sat(self):
        result = solve_clauses([[1, 2], [-1, 2], [1, -2]])
        assert result.satisfiable
        model = result.model
        assert (model[1] or model[2]) and (not model[1] or model[2])

    def test_simple_unsat(self):
        result = solve_clauses([[1], [-1]])
        assert not result.satisfiable

    def test_unit_propagation_chain(self):
        result = solve_clauses([[1], [-1, 2], [-2, 3]])
        assert result.satisfiable
        assert result.model[1] and result.model[2] and result.model[3]

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_tautologies_are_dropped(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.num_clauses == 0

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]).satisfiable
        assert solver.solve([-1]).model[2]
        assert not solver.solve([-1, -2]).satisfiable
        # conflicting assumptions
        assert not solver.solve([1, -1]).satisfiable

    def test_incremental_blocking(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        first = solver.solve()
        assert first.satisfiable
        # block every model one at a time until exhaustion
        seen = 0
        while True:
            result = solver.solve()
            if not result.satisfiable:
                break
            seen += 1
            solver.add_clause([-v if value else v for v, value in result.model.items()])
        assert seen == 3  # models of (1 or 2) over two variables


class TestTheoryChecker:
    def check(self, *pairs):
        return TheoryChecker().is_consistent(
            [Literal(atom, polarity) for atom, polarity in pairs]
        )

    def test_lia_conflict(self):
        assert not self.check((ops.le(x, y), True), (ops.lt(y, x), True))
        assert self.check((ops.le(x, y), True), (ops.lt(x, y), True))

    def test_negated_comparison(self):
        # !(x <= y) and !(y <= x) is inconsistent over integers
        assert not self.check((ops.le(x, y), False), (ops.le(y, x), False))

    def test_equality_propagates_to_arithmetic(self):
        assert not self.check(
            (ops.eq(x, y), True),
            (ops.lt(x, y), True),
        )

    def test_congruence_closure(self):
        fx = ops.measure("f", x, INT)
        fy = ops.measure("f", y, INT)
        # x == y implies f x == f y; asserting f x != f y must conflict
        assert not self.check((ops.eq(x, y), True), (ops.eq(fx, fy), False))
        assert self.check((ops.eq(x, y), False), (ops.eq(fx, fy), False))

    def test_euf_equality_feeds_lia(self):
        fx = ops.measure("f", x, INT)
        fy = ops.measure("f", y, INT)
        # x == y forces f x == f y, so f x < f y is infeasible
        assert not self.check((ops.eq(x, y), True), (ops.lt(fx, fy), True))

    def test_boolean_atom_polarities(self):
        p = ops.var("p", BOOL)
        assert not self.check((p, True), (p, False))
        assert self.check((p, True), (ops.var("q", BOOL), False))

    def test_integer_chain(self):
        assert not self.check(
            (ops.le(x, y), True),
            (ops.le(y, z), True),
            (ops.lt(z, x), True),
        )
