"""A small surface parser for refinement formulas, types, terms, and
declarations.

Tests and the future CLI write signatures the way the paper does::

    x:Int -> y:Int -> {Int | nu >= x && nu >= y}
    {Int | nu != 0} -> Bool
    xs:List Int -> {Int | nu >= len(xs)}

and programs and declarations in a Haskell-ish surface syntax::

    fix length . \\xs . match xs with Nil -> 0 | Cons y ys -> inc (length ys)

    data List a where
        Nil :: {List a | len(nu) == 0}
      | Cons :: x:a -> xs:List a -> {List a | len(nu) == 1 + len(xs)}

    measure len :: List a -> {Int | nu >= 0} where
        Nil -> 0 | Cons x xs -> 1 + len(xs)

The parser is scope-aware: variable occurrences inside refinements must be
either arrow binders to their left or names in the caller-provided
``scope`` mapping, and each occurrence is built at its binding sort, so a
parsed formula is sort-correct by construction (it is additionally run
through :func:`repro.logic.sortcheck.check_sort` to reject ill-sorted
operator applications).  Measures (``len(xs)``) resolve through a
``measures`` signature map.

Declarations are mutually referential — constructor refinements mention
measures, measure cases mention constructor binders — so
:func:`parse_declarations` resolves a block in three passes: measure
*headers* first (their signatures), then datatypes (with every measure
signature in scope), then measure *cases* (with constructor shapes giving
the binder sorts).

Only monotypes are parsed; schemas (type/predicate quantifiers) are built
through :mod:`repro.syntax.types` directly, except for constructor
signatures, which are implicitly quantified over their datatype's
parameters.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from ..logic import ops
from ..logic.formulas import Formula, Var, value_var
from ..logic.measures import MeasureCase, MeasureDef
from ..logic.qualifiers import sorts_compatible
from ..logic.sortcheck import MeasureSignatures, check_sort
from ..logic.sorts import BOOL, Sort, VarSort
from .datatypes import Constructor, Datatype
from .terms import (
    Annot,
    AppTerm,
    BoolConst,
    FixTerm,
    IfTerm,
    IntConst,
    LambdaTerm,
    LetTerm,
    MatchCase,
    MatchTerm,
    Term,
    VarTerm,
)
from .types import (
    BOOL_BASE,
    INT_BASE,
    BaseType,
    DataBase,
    FunctionType,
    RType,
    ScalarType,
    TypeSchema,
    TypeVarBase,
    base_sort,
)


class ParseError(ValueError):
    """A syntax or scoping error in surface text."""

    def __init__(self, message: str, text: str, position: int) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.position = position


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<symbol><==>|==>|->|&&|\|\||==|!=|<=|>=|::|\?\?|<|>|[{}()\[\]|:,.+\-*!\\=])
    """,
    re.VERBOSE,
)

#: Reserved words of the term/declaration grammar; they never parse as
#: variables, binders, or constructor names.
_KEYWORDS = frozenset(
    {"if", "then", "else", "let", "in", "match", "with", "fix", "data", "measure", "where"}
)

_COMPARISONS = {
    "==": ops.eq,
    "!=": ops.neq,
    "<=": ops.le,
    "<": ops.lt,
    ">=": ops.ge,
    ">": ops.gt,
}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", text, position)
        position = match.end()
        kind = match.lastgroup or ""
        if kind in ("space", "comment"):
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(
        self,
        text: str,
        scope: Mapping[str, Sort],
        measures: Optional[MeasureSignatures],
    ) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.scope: Dict[str, Sort] = dict(scope)
        self.measures = measures or {}
        self.value_sort: Optional[Sort] = None
        self._anonymous = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        if self.peek().value == value and self.peek().kind != "eof":
            self.advance()
            return True
        return False

    def expect(self, value: str) -> _Token:
        token = self.peek()
        if token.value != value or token.kind == "eof":
            raise ParseError(
                f"expected {value!r}, found {token.value or 'end of input'!r}",
                self.text,
                token.position,
            )
        return self.advance()

    def fail(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.peek().position)

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token.kind == "ident" and token.value == word:
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.fail(f"expected keyword {word!r}")

    def ident(self, what: str = "an identifier") -> str:
        token = self.peek()
        if token.kind != "ident" or token.value in _KEYWORDS:
            raise self.fail(f"expected {what}")
        return self.advance().value

    def upper_ident(self, what: str) -> str:
        name = self.ident(what)
        if not name[0].isupper():
            raise ParseError(
                f"{what} must be capitalized, got `{name}`",
                self.text,
                self.tokens[self.index - 1].position,
            )
        return name

    # -- types ---------------------------------------------------------------

    def type_(self) -> RType:
        """``arrowType ::= [ident ':'] atomType '->' arrowType | atomType``"""
        binder: Optional[str] = None
        checkpoint = self.index
        if (self.peek().kind == "ident" and self.tokens[self.index + 1].value == ":"):
            binder = self.advance().value
            self.advance()  # ':'
        argument = self.atom_type()
        if not self.accept("->"):
            if binder is not None:
                self.index = checkpoint
                raise self.fail("binder without an arrow")
            return argument
        if binder is None:
            binder = f"_arg{self._anonymous}"
            self._anonymous += 1
        outer = self.scope.get(binder)
        if isinstance(argument, ScalarType):
            self.scope[binder] = argument.sort
        result = self.type_()
        if outer is None:
            self.scope.pop(binder, None)
        else:
            self.scope[binder] = outer
        return FunctionType(binder, argument, result)

    def atom_type(self) -> RType:
        """``atomType ::= '{' base '|' formula '}' | '(' type ')' | base``"""
        if self.accept("("):
            inner = self.type_()
            self.expect(")")
            return inner
        if self.accept("{"):
            base = self.base_type()
            self.expect("|")
            saved = self.value_sort
            self.value_sort = base_sort(base)
            refinement = self.formula()
            self.value_sort = saved
            self.expect("}")
            scalar = ScalarType(base, refinement)
            self._check_refinement(scalar)
            return scalar
        return ScalarType(self.base_type())

    def base_type(self) -> BaseType:
        token = self.peek()
        if token.kind != "ident":
            raise self.fail("expected a base type")
        name = self.advance().value
        if name == "Int":
            return INT_BASE
        if name == "Bool":
            return BOOL_BASE
        if name[0].isupper():
            # Haskell-style application: bare idents are nullary arguments
            # (Int, Bool, nullary datatypes, type variables); an applied
            # argument needs parentheses, e.g. ``Pair (List Int) Bool``.
            args: List[RType] = []
            while True:
                token = self.peek()
                if token.kind == "ident" and self.tokens[self.index + 1].value != ":":
                    value = self.advance().value
                    if value == "Int":
                        args.append(ScalarType(INT_BASE))
                    elif value == "Bool":
                        args.append(ScalarType(BOOL_BASE))
                    elif value[0].isupper():
                        args.append(ScalarType(DataBase(value)))
                    else:
                        args.append(ScalarType(TypeVarBase(value)))
                elif token.value == "(" and token.kind == "symbol":
                    self.advance()
                    args.append(self.type_())
                    self.expect(")")
                else:
                    break
            return DataBase(name, tuple(args))
        return TypeVarBase(name)

    def _check_refinement(self, scalar: ScalarType) -> None:
        scope = dict(self.scope)
        scope[value_var(scalar.sort).name] = scalar.sort
        sort = check_sort(scalar.refinement, scope, self.measures)
        if sort != BOOL:
            raise self.fail(f"refinement must have sort Bool, got {sort}")

    # -- terms ---------------------------------------------------------------

    def term(self) -> Term:
        """``term ::= '\\' x '.' term | if/let/match/fix | application``"""
        token = self.peek()
        if token.kind == "symbol" and token.value == "\\":
            self.advance()
            binder = self.ident("a lambda binder")
            self.expect(".")
            return LambdaTerm(binder, self.term())
        if token.kind == "ident":
            if self.accept_keyword("if"):
                cond = self.term()
                self.expect_keyword("then")
                then_ = self.term()
                self.expect_keyword("else")
                return IfTerm(cond, then_, self.term())
            if self.accept_keyword("let"):
                name = self.ident("a let binder")
                self.expect("=")
                value = self.term()
                self.expect_keyword("in")
                return LetTerm(name, value, self.term())
            if self.accept_keyword("match"):
                scrutinee = self.term()
                self.expect_keyword("with")
                self.accept("|")
                cases = [self.match_case()]
                while self.accept("|"):
                    cases.append(self.match_case())
                return MatchTerm(scrutinee, tuple(cases))
            if self.accept_keyword("fix"):
                name = self.ident("a fix binder")
                self.expect(".")
                return FixTerm(name, self.term())
        return self.app_term()

    def match_case(self) -> MatchCase:
        """``case ::= Ctor binder* '->' term`` (the body extends greedily, so
        an inner match must be parenthesized to close before the next alt)."""
        constructor = self.upper_ident("a constructor name")
        binders: List[str] = []
        while self.peek().kind == "ident" and self.peek().value not in _KEYWORDS:
            binders.append(self.advance().value)
        self.expect("->")
        return MatchCase(constructor, tuple(binders), self.term())

    def app_term(self) -> Term:
        result = self.atom_term()
        while self._at_term_atom():
            result = AppTerm(result, self.atom_term())
        return result

    def _at_term_atom(self) -> bool:
        token = self.peek()
        if token.kind == "int":
            return True
        if token.kind == "ident":
            return token.value not in _KEYWORDS
        return token.kind == "symbol" and token.value == "("

    def atom_term(self) -> Term:
        token = self.peek()
        if token.kind == "int":
            return IntConst(int(self.advance().value))
        if token.kind == "ident":
            if token.value in _KEYWORDS:
                raise self.fail(f"unexpected keyword `{token.value}` in a term")
            name = self.advance().value
            if name == "True":
                return BoolConst(True)
            if name == "False":
                return BoolConst(False)
            return VarTerm(name)
        if self.accept("("):
            inner = self.term()
            if self.accept("::"):
                inner = Annot(inner, self.type_())
            self.expect(")")
            return inner
        raise self.fail("expected a term")

    # -- declarations --------------------------------------------------------

    def datatype_decl(self) -> Datatype:
        """``data D a1 ... ak where C1 :: T1 | C2 :: T2 | ...``"""
        self.expect_keyword("data")
        name = self.upper_ident("a datatype name")
        params: List[str] = []
        while self.peek().kind == "ident" and self.peek().value not in _KEYWORDS:
            param = self.advance().value
            if param[0].isupper():
                raise self.fail(f"type parameter `{param}` must be lowercase")
            params.append(param)
        self.expect_keyword("where")
        self.accept("|")
        constructors = [self._constructor_decl(name, tuple(params))]
        while self.accept("|"):
            constructors.append(self._constructor_decl(name, tuple(params)))
        seen = set()
        for ctor in constructors:
            if ctor.name in seen:
                raise self.fail(f"duplicate constructor `{ctor.name}`")
            seen.add(ctor.name)
        return Datatype(name, tuple(params), tuple(constructors))

    def _constructor_decl(self, datatype: str, params: Tuple[str, ...]) -> Constructor:
        name = self.upper_ident("a constructor name")
        self.expect("::")
        body = self.type_()
        result: RType = body
        while isinstance(result, FunctionType):
            result = result.result_type
        produces_datatype = (
            isinstance(result, ScalarType)
            and isinstance(result.base, DataBase)
            and result.base.name == datatype
        )
        if not produces_datatype:
            raise self.fail(f"constructor `{name}` must produce `{datatype}`, got `{result!r}`")
        return Constructor(name, TypeSchema(params, (), body))

    def measure_header(self) -> "Tuple[str, MeasureDef]":
        """Parse ``measure m :: D ps -> {S | post}`` up to (excluding)
        ``where``, returning the name and a case-less :class:`MeasureDef`."""
        self.expect_keyword("measure")
        name = self.ident("a measure name")
        self.expect("::")
        checkpoint = self.index
        mtype = self.type_()
        if not isinstance(mtype, FunctionType):
            self.index = checkpoint
            raise self.fail(f"measure `{name}` must have an arrow signature")
        arg, result = mtype.arg_type, mtype.result_type
        if not (isinstance(arg, ScalarType) and isinstance(arg.base, DataBase)):
            self.index = checkpoint
            raise self.fail(f"measure `{name}` must consume a datatype")
        if not isinstance(result, ScalarType):
            self.index = checkpoint
            raise self.fail(f"measure `{name}` must produce a scalar")
        return name, MeasureDef(
            name=name,
            datatype=arg.base.name,
            arg_sort=base_sort(arg.base),
            result_sort=base_sort(result.base),
            postcondition=result.refinement,
        )

    def measure_decl(self, datatypes: Mapping[str, Datatype]) -> MeasureDef:
        """A full measure declaration, cases included.  The measure's own
        signature joins ``self.measures`` so case bodies may recurse."""
        name, header = self.measure_header()
        self.measures = dict(self.measures)
        self.measures[name] = header.signature()
        datatype = datatypes.get(header.datatype)
        if datatype is None:
            raise self.fail(f"measure `{name}` consumes undeclared datatype `{header.datatype}`")
        self.expect_keyword("where")
        self.accept("|")
        cases = [self._measure_case(header, datatype)]
        while self.accept("|"):
            cases.append(self._measure_case(header, datatype))
        seen = set()
        for case in cases:
            if case.constructor in seen:
                raise self.fail(f"duplicate measure case for `{case.constructor}`")
            seen.add(case.constructor)
        return MeasureDef(
            name=header.name,
            datatype=header.datatype,
            arg_sort=header.arg_sort,
            result_sort=header.result_sort,
            cases=tuple(cases),
            postcondition=header.postcondition,
        )

    def _measure_case(self, header: MeasureDef, datatype: Datatype) -> MeasureCase:
        cname = self.upper_ident("a constructor name")
        ctor = datatype.find(cname)
        if ctor is None:
            raise self.fail(
                f"`{cname}` is not a constructor of `{datatype.name}` "
                f"(has: {', '.join(datatype.constructor_names())})"
            )
        binders: List[str] = []
        while self.peek().kind == "ident" and self.peek().value not in _KEYWORDS:
            binders.append(self.advance().value)
        if len(binders) != ctor.arity():
            raise self.fail(
                f"constructor `{cname}` takes {ctor.arity()} arguments, "
                f"the case binds {len(binders)}"
            )
        if len(set(binders)) != len(binders):
            raise self.fail(f"measure case `{cname}` binds a name twice")
        self.expect("->")
        binder_vars: List[Var] = []
        scope = dict(self.scope)
        node: RType = ctor.schema.body
        for binder in binders:
            assert isinstance(node, FunctionType)
            if isinstance(node.arg_type, ScalarType):
                sort = node.arg_type.sort
                scope[binder] = sort
            else:
                # Function-typed constructor arguments have no logical sort;
                # a case body mentioning one is rejected as unbound.
                sort = VarSort(f"_{binder}")
            binder_vars.append(Var(binder, sort))
            node = node.result_type
        outer_scope = self.scope
        self.scope = scope
        try:
            body = self.formula()
        finally:
            self.scope = outer_scope
        sort = check_sort(body, scope, self.measures)
        if not sorts_compatible(sort, header.result_sort):
            raise self.fail(
                f"measure case `{cname}` has sort {sort}, "
                f"expected {header.result_sort}"
            )
        return MeasureCase(cname, tuple(binder_vars), body)

    # -- formulas (precedence climbing) --------------------------------------

    def formula(self) -> Formula:
        return self.iff_level()

    def iff_level(self) -> Formula:
        lhs = self.implies_level()
        while self.accept("<==>"):
            lhs = ops.iff(lhs, self.implies_level())
        return lhs

    def implies_level(self) -> Formula:
        lhs = self.or_level()
        if self.accept("==>"):
            return ops.implies(lhs, self.implies_level())
        return lhs

    def or_level(self) -> Formula:
        lhs = self.and_level()
        while self.accept("||"):
            lhs = ops.or_(lhs, self.and_level())
        return lhs

    def and_level(self) -> Formula:
        lhs = self.compare_level()
        while self.accept("&&"):
            lhs = ops.and_(lhs, self.compare_level())
        return lhs

    def compare_level(self) -> Formula:
        lhs = self.additive_level()
        token = self.peek()
        if token.value in _COMPARISONS and token.kind == "symbol":
            self.advance()
            return _COMPARISONS[token.value](lhs, self.additive_level())
        if token.kind == "ident" and token.value == "in":
            self.advance()
            return ops.member(lhs, self.additive_level())
        return lhs

    def additive_level(self) -> Formula:
        lhs = self.multiplicative_level()
        while True:
            if self.accept("+"):
                lhs = ops.plus(lhs, self.multiplicative_level())
            elif self.accept("-"):
                lhs = ops.minus(lhs, self.multiplicative_level())
            else:
                return lhs

    def multiplicative_level(self) -> Formula:
        lhs = self.unary_level()
        while self.accept("*"):
            lhs = ops.times(lhs, self.unary_level())
        return lhs

    def unary_level(self) -> Formula:
        if self.accept("!"):
            return ops.not_(self.unary_level())
        if self.accept("-"):
            return ops.neg(self.unary_level())
        return self.atom()

    def atom(self) -> Formula:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ops.int_lit(int(token.value))
        if token.value == "(":
            self.advance()
            inner = self.formula()
            self.expect(")")
            return inner
        if token.value == "[":
            return self.set_literal()
        if token.kind == "ident":
            return self.identifier()
        raise self.fail(f"expected a formula atom, found {token.value or 'end of input'!r}")

    def set_literal(self) -> Formula:
        self.expect("[")
        if self.accept("]"):
            raise self.fail("empty set literals need an element sort; use ops.empty_set")
        elements = [self.formula()]
        while self.accept(","):
            elements.append(self.formula())
        self.expect("]")
        return ops.set_lit(elements[0].sort, elements)

    def identifier(self) -> Formula:
        token = self.advance()
        name = token.value
        if name == "True":
            return ops.bool_lit(True)
        if name == "False":
            return ops.bool_lit(False)
        if name in ("nu", "_v"):
            if self.value_sort is None:
                raise ParseError(
                    "the value variable is only available inside a refinement",
                    self.text,
                    token.position,
                )
            return value_var(self.value_sort)
        if self.peek().value == "(" and self.peek().kind == "symbol":
            return self.measure_app(name, token)
        sort = self.scope.get(name)
        if sort is None:
            raise ParseError(f"unbound variable `{name}`", self.text, token.position)
        return ops.var(name, sort)

    def measure_app(self, name: str, token: _Token) -> Formula:
        signature = self.measures.get(name)
        if signature is None:
            raise ParseError(f"unknown measure `{name}`", self.text, token.position)
        arg_sorts, result_sort = signature
        self.expect("(")
        args = [self.formula()]
        while self.accept(","):
            args.append(self.formula())
        self.expect(")")
        if len(args) != len(arg_sorts):
            raise ParseError(
                f"measure `{name}` expects {len(arg_sorts)} arguments, got {len(args)}",
                self.text,
                token.position,
            )
        return ops.app(name, args, result_sort)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def parse_type(
    text: str,
    scope: Optional[Mapping[str, Sort]] = None,
    measures: Optional[MeasureSignatures] = None,
) -> RType:
    """Parse a refinement type; arrow binders scope over refinements to
    their right, ``scope`` supplies any other free variables."""
    parser = _Parser(text, scope or {}, measures)
    result = parser.type_()
    _expect_eof(parser)
    return result


def parse_formula(
    text: str,
    scope: Optional[Mapping[str, Sort]] = None,
    value_sort: Optional[Sort] = None,
    measures: Optional[MeasureSignatures] = None,
) -> Formula:
    """Parse a refinement formula; pass ``value_sort`` to make ``nu``
    available.  The result is sort-checked before it is returned."""
    parser = _Parser(text, scope or {}, measures)
    parser.value_sort = value_sort
    result = parser.formula()
    _expect_eof(parser)
    check_scope: Dict[str, Sort] = dict(scope or {})
    if value_sort is not None:
        check_scope[value_var(value_sort).name] = value_sort
    check_sort(result, check_scope, measures)
    return result


def parse_term(
    text: str,
    scope: Optional[Mapping[str, Sort]] = None,
    measures: Optional[MeasureSignatures] = None,
) -> Term:
    """Parse a program term.  ``scope`` and ``measures`` are only consulted
    for the types of ``(term :: type)`` ascriptions; the term language
    itself is untyped at parse time."""
    parser = _Parser(text, scope or {}, measures)
    result = parser.term()
    _expect_eof(parser)
    return result


def parse_datatype(
    text: str,
    measures: Optional[MeasureSignatures] = None,
) -> Datatype:
    """Parse one ``data D ... where ...`` declaration.  ``measures`` supplies
    the signatures the constructor refinements may apply."""
    parser = _Parser(text, {}, measures)
    result = parser.datatype_decl()
    _expect_eof(parser)
    return result


def parse_measure(
    text: str,
    datatypes: Mapping[str, Datatype],
    measures: Optional[MeasureSignatures] = None,
) -> MeasureDef:
    """Parse one ``measure m :: ... where ...`` declaration.  ``datatypes``
    provides the constructor shapes that give case binders their sorts; the
    measure's own signature is available to its cases (recursion)."""
    parser = _Parser(text, {}, measures)
    result = parser.measure_decl(datatypes)
    _expect_eof(parser)
    return result


class Declarations(NamedTuple):
    """A resolved block of surface declarations."""

    datatypes: Dict[str, Datatype]
    measures: Dict[str, MeasureDef]


def parse_declarations(text: str) -> Declarations:
    """Parse a block of ``data`` / ``measure`` declarations, in any order.

    Mutual references are resolved in three passes: measure signatures are
    collected first, datatypes are parsed with them in scope, and measure
    cases are parsed last against the constructor shapes.
    """
    tokens = _tokenize(text)
    starts = [
        index
        for index, token in enumerate(tokens)
        if token.kind == "ident" and token.value in ("data", "measure")
    ]
    if not starts or starts[0] != 0:
        position = tokens[0].position if tokens[0].kind != "eof" else 0
        raise ParseError("expected a `data` or `measure` declaration", text, position)
    chunks: List[Tuple[str, str]] = []
    for which, index in enumerate(starts):
        end = tokens[starts[which + 1]].position if which + 1 < len(starts) else len(text)
        chunks.append((tokens[index].value, text[tokens[index].position : end]))

    signatures: Dict[str, Tuple[Tuple[Sort, ...], Sort]] = {}
    for kind, chunk in chunks:
        if kind == "measure":
            name, header = _Parser(chunk, {}, None).measure_header()
            if name in signatures:
                raise ParseError(f"duplicate measure `{name}`", text, 0)
            signatures[name] = header.signature()

    datatypes: Dict[str, Datatype] = {}
    for kind, chunk in chunks:
        if kind == "data":
            parser = _Parser(chunk, {}, signatures)
            datatype = parser.datatype_decl()
            _expect_eof(parser)
            if datatype.name in datatypes:
                raise ParseError(f"duplicate datatype `{datatype.name}`", text, 0)
            datatypes[datatype.name] = datatype

    measures: Dict[str, MeasureDef] = {}
    for kind, chunk in chunks:
        if kind == "measure":
            parser = _Parser(chunk, {}, signatures)
            measure = parser.measure_decl(datatypes)
            _expect_eof(parser)
            measures[measure.name] = measure
    return Declarations(datatypes, measures)


class Program(NamedTuple):
    """A parsed ``.sq``-style source file: declarations, component
    signatures, definitions to check, and synthesis goals."""

    datatypes: Dict[str, Datatype]
    measures: Dict[str, MeasureDef]
    #: Component and goal signatures, ``name :: type``, file order.
    signatures: Dict[str, RType]
    #: Definitions ``name = term`` to be checked against their signature.
    definitions: Dict[str, Term]
    #: Names declared ``name = ??`` — programs to be synthesized.
    goals: Tuple[str, ...]


def _split_program(text: str) -> List[Tuple[str, str, int]]:
    """Split a program into declaration chunks ``(kind, chunk, position)``.

    A declaration starts at a top-level identifier in column 0 (bracket
    depth zero, not indented) that is either the keyword ``data`` /
    ``measure`` or is followed by ``::`` (a signature) or ``=`` (a
    definition); continuation lines must be indented, Haskell-style.  The
    column anchoring is what lets definition bodies contain ``let x = ...``
    and ascriptions ``(e :: T)``, and multi-line declarations indented
    constructor lines, without closing the chunk early.
    """
    tokens = _tokenize(text)
    line_starts = {0}
    for index, char in enumerate(text):
        if char == "\n":
            line_starts.add(index + 1)

    starts: List[int] = []
    depth = 0
    for index, token in enumerate(tokens):
        if token.kind == "eof":
            break
        if depth == 0 and token.kind == "ident" and token.position in line_starts:
            follower = tokens[index + 1].value
            if token.value in ("data", "measure") or follower in ("::", "="):
                starts.append(index)
        if token.kind == "symbol":
            if token.value in "([{":
                depth += 1
            elif token.value in ")]}":
                depth = max(0, depth - 1)
    if tokens[0].kind == "eof":
        raise ParseError("empty program", text, 0)
    if not starts or starts[0] != 0:
        raise ParseError(
            "expected a declaration (`data`, `measure`, `name :: type`, or `name = term`)",
            text,
            tokens[0].position,
        )
    chunks: List[Tuple[str, str, int]] = []
    for which, index in enumerate(starts):
        end = tokens[starts[which + 1]].position if which + 1 < len(starts) else len(text)
        token = tokens[index]
        if token.value in ("data", "measure"):
            kind = token.value
        elif tokens[index + 1].value == "::":
            kind = "sig"
        else:
            kind = "def"
        chunks.append((kind, text[token.position : end], token.position))
    return chunks


def parse_program(text: str) -> Program:
    """Parse a ``.sq``-style program file.

    The file interleaves, in any order, ``data`` / ``measure`` declarations
    (resolved mutually as in :func:`parse_declarations`), component
    signatures ``name :: type``, checked definitions ``name = term``, and
    synthesis goals ``name = ??``.  Every definition and goal must have a
    signature; ``--`` starts a line comment.
    """
    chunks = _split_program(text)

    signatures: Dict[str, Tuple[Tuple[Sort, ...], Sort]] = {}
    for kind, chunk, position in chunks:
        if kind == "measure":
            name, header = _Parser(chunk, {}, None).measure_header()
            if name in signatures:
                raise ParseError(f"duplicate measure `{name}`", text, position)
            signatures[name] = header.signature()

    datatypes: Dict[str, Datatype] = {}
    for kind, chunk, position in chunks:
        if kind == "data":
            parser = _Parser(chunk, {}, signatures)
            datatype = parser.datatype_decl()
            _expect_eof(parser)
            if datatype.name in datatypes:
                raise ParseError(f"duplicate datatype `{datatype.name}`", text, position)
            datatypes[datatype.name] = datatype

    measures: Dict[str, MeasureDef] = {}
    for kind, chunk, position in chunks:
        if kind == "measure":
            parser = _Parser(chunk, {}, signatures)
            measure = parser.measure_decl(datatypes)
            _expect_eof(parser)
            measures[measure.name] = measure

    component_types: Dict[str, RType] = {}
    definitions: Dict[str, Term] = {}
    goals: List[str] = []
    defined_at: Dict[str, int] = {}
    for kind, chunk, position in chunks:
        if kind == "sig":
            parser = _Parser(chunk, {}, signatures)
            name = parser.ident("a component name")
            parser.expect("::")
            rtype = parser.type_()
            _expect_eof(parser)
            if name in component_types:
                raise ParseError(f"duplicate signature for `{name}`", text, position)
            component_types[name] = rtype
        elif kind == "def":
            parser = _Parser(chunk, {}, signatures)
            name = parser.ident("a definition name")
            parser.expect("=")
            if parser.accept("??"):
                _expect_eof(parser)
                if name in definitions or name in goals:
                    raise ParseError(f"duplicate definition of `{name}`", text, position)
                goals.append(name)
            else:
                term = parser.term()
                _expect_eof(parser)
                if name in definitions or name in goals:
                    raise ParseError(f"duplicate definition of `{name}`", text, position)
                definitions[name] = term
            defined_at[name] = position
    for name in list(definitions) + goals:
        if name not in component_types:
            raise ParseError(
                f"`{name}` is defined but has no `{name} :: type` signature",
                text,
                defined_at[name],
            )
    return Program(datatypes, measures, component_types, definitions, tuple(goals))


def _expect_eof(parser: _Parser) -> None:
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"trailing input {token.value!r}", parser.text, token.position)
