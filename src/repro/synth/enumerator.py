"""E-term enumeration with early local liquid checking (Sec. 4 of the paper).

The round-trip synthesis loop generates *elimination* terms — variables,
literals, and curried applications of components — in order of increasing
depth, and prunes them as early as possible:

* **shape direction**: a candidate is only built when its simple-type
  skeleton can match the goal's (type variables are permissive, so
  polymorphic components stay applicable);

* **early local liquid checking**: every application *prefix* ``f a1 .. ai``
  is round-tripped through the type checker the moment ``ai`` is chosen —
  :meth:`~repro.typecheck.session.TypecheckSession.try_infer` emits the
  prefix's argument-subtyping obligations into a trial scope and solves
  them on the session's shared incremental backend.  A prefix whose
  obligations are unsolvable cannot be repaired by supplying more
  arguments (the paper's key observation), so its entire extension subtree
  is pruned before it is enumerated.

The enumerator reports how much that pruning saves through
:class:`EnumerationStatistics`: ``generated`` counts every candidate term
built (including prefixes), ``pruned_early`` the ones rejected by the
local check, and ``checked`` the solver round-trips issued.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import limits
from ..syntax.terms import AppTerm, BoolConst, IntConst, Term, VarTerm
from ..syntax.types import (
    BOOL_BASE,
    INT_BASE,
    ContextualType,
    DataBase,
    FunctionType,
    RType,
    ScalarType,
    TypeSchema,
    TypeVarBase,
    shape,
    subst_type_vars,
    type_var,
)
from ..typecheck.environment import Environment
from ..typecheck.session import TypecheckSession


def _bind_flexible(candidate: RType, goal: RType, out: "Dict[str, RType]") -> None:
    """Bind the *freshened* flexible type variables (``%``-prefixed, minted
    by the enumerator's scope collection) of ``candidate`` to the matching
    sub-shapes of ``goal``, structurally."""
    if isinstance(candidate, ContextualType):
        candidate = candidate.body
    if isinstance(goal, ContextualType):
        goal = goal.body
    if isinstance(candidate, ScalarType) and isinstance(goal, ScalarType):
        cand_base = candidate.base
        if isinstance(cand_base, TypeVarBase) and cand_base.name.startswith("%"):
            out.setdefault(cand_base.name, ScalarType(goal.base))
            return
        if isinstance(cand_base, DataBase) and isinstance(goal.base, DataBase):
            for cand_arg, goal_arg in zip(cand_base.args, goal.base.args):
                _bind_flexible(cand_arg, goal_arg, out)
        return
    if isinstance(candidate, FunctionType) and isinstance(goal, FunctionType):
        _bind_flexible(candidate.arg_type, goal.arg_type, out)
        _bind_flexible(candidate.result_type, goal.result_type, out)


def rigid_shape_match(candidate: RType, goal: RType, rigid: "frozenset" = frozenset()) -> bool:
    """Can a term of (erased) shape ``candidate`` inhabit goal shape
    ``goal``, treating the type variables in ``rigid`` as *parametric*?

    The goal's own free type variables are universally quantified in
    spirit: a rigid variable is only matched by itself or by a component's
    still-uninstantiated (flexible) variable — never by a concrete type.
    Without this, a polymorphic goal such as ``List a`` admits degenerate
    instantiations (``Cons Nil ...`` building a ``List (List b)`` whose
    *length* spec still holds).  Flexible variables stay permissive, so
    polymorphic components remain applicable everywhere.
    """
    if isinstance(candidate, ContextualType):
        candidate = candidate.body
    if isinstance(goal, ContextualType):
        goal = goal.body
    if isinstance(candidate, ScalarType) and isinstance(goal, ScalarType):
        cand_base, goal_base = candidate.base, goal.base
        if isinstance(goal_base, TypeVarBase):
            if goal_base.name in rigid:
                return isinstance(cand_base, TypeVarBase) and (
                    cand_base.name == goal_base.name or cand_base.name not in rigid
                )
            return True
        if isinstance(cand_base, TypeVarBase):
            return cand_base.name not in rigid
        if isinstance(cand_base, DataBase) and isinstance(goal_base, DataBase):
            return (
                cand_base.name == goal_base.name
                and len(cand_base.args) == len(goal_base.args)
                and all(
                    rigid_shape_match(cand_arg, goal_arg, rigid)
                    for cand_arg, goal_arg in zip(cand_base.args, goal_base.args)
                )
            )
        return type(cand_base) is type(goal_base)
    if isinstance(candidate, FunctionType) and isinstance(goal, FunctionType):
        return rigid_shape_match(
            candidate.arg_type, goal.arg_type, rigid
        ) and rigid_shape_match(candidate.result_type, goal.result_type, rigid)
    return False


@dataclass
class EnumerationStatistics:
    """Counters describing one synthesis run's enumeration work."""

    #: Candidate E-terms built (atoms, prefixes, and full applications).
    generated: int = 0
    #: Candidates rejected by the early local liquid check — each one cut
    #: off an entire subtree of extensions before it was enumerated.
    pruned_early: int = 0
    #: Candidates rejected because their instantiated result shape violates
    #: the goal's rigid (parametric) type variables — no solver involved.
    pruned_shape: int = 0
    #: Local round-trip checks issued (each solves a small Horn system on
    #: the shared incremental backend).
    checked: int = 0
    #: Full goal checks of complete candidates (issued by the synthesizer).
    goal_checks: int = 0
    #: Branch conditions abduced (issued by the synthesizer).
    abductions: int = 0
    #: Candidate guard valuations the abduction-side Horn search evaluated
    #: (folded in from :class:`repro.horn.solver.HornStatistics`).
    candidates_explored: int = 0
    #: Guard valuations the MUS machinery pruned without evaluation.
    candidates_pruned: int = 0
    #: Minimal unsatisfiable subsets the abduction searches enumerated.
    muses_enumerated: int = 0
    #: Deepest E-term enumeration level completed or entered — the
    #: "best depth reached" a timeout report carries.
    depth_reached: int = 0

    def merge(self, other: "EnumerationStatistics") -> None:
        """Accumulate another run's counters into this one."""
        self.generated += other.generated
        self.pruned_early += other.pruned_early
        self.pruned_shape += other.pruned_shape
        self.checked += other.checked
        self.goal_checks += other.goal_checks
        self.abductions += other.abductions
        self.candidates_explored += other.candidates_explored
        self.candidates_pruned += other.candidates_pruned
        self.muses_enumerated += other.muses_enumerated
        self.depth_reached = max(self.depth_reached, other.depth_reached)

    def merge_horn(self, horn: object) -> None:
        """Fold one abduction's Horn search counters into this run."""
        self.candidates_explored += getattr(horn, "candidates_explored", 0)
        self.candidates_pruned += getattr(horn, "candidates_pruned", 0)
        self.muses_enumerated += getattr(horn, "muses_enumerated", 0)

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and benchmarks)."""
        return {
            "generated": self.generated,
            "pruned_early": self.pruned_early,
            "pruned_shape": self.pruned_shape,
            "checked": self.checked,
            "goal_checks": self.goal_checks,
            "abductions": self.abductions,
            "candidates_explored": self.candidates_explored,
            "candidates_pruned": self.candidates_pruned,
            "muses_enumerated": self.muses_enumerated,
            "depth_reached": self.depth_reached,
        }


@dataclass
class _Head:
    """An application head: a component with at least one arrow."""

    name: str
    arrows: RType  # refinement-erased shape of the (instantiated) signature


class ETermEnumerator:
    """Enumerates E-terms for one scalar goal position.

    One enumerator serves one ``(session, env)`` pair — the environment
    fixes which components, binders, and recursive occurrences are in
    scope, and the session's trial scopes keep candidate obligations from
    leaking into each other.
    """

    def __init__(
        self,
        session: TypecheckSession,
        env: Environment,
        statistics: Optional[EnumerationStatistics] = None,
        literals: Sequence[Term] = (IntConst(0),),
        rigid: "frozenset" = frozenset(),
    ) -> None:
        self.session = session
        self.env = env
        self.statistics = statistics if statistics is not None else EnumerationStatistics()
        self.literals: Tuple[Term, ...] = tuple(literals)
        #: The goal's parametric type variables (see :func:`rigid_shape_match`).
        self.rigid = frozenset(rigid)
        self._atoms: List[Tuple[Term, RType]] = []
        self._heads: List[_Head] = []
        self._collect_scope()
        #: Memoized candidate lists keyed by (shape repr, depth) — argument
        #: positions of many parent applications share the same goal shape.
        self._cache: Dict[Tuple[str, int], List[Term]] = {}
        #: Memoized local inference per candidate term (None = ill-typed):
        #: the same prefix reappears across depths and parent applications,
        #: and its local obligations do not change within one (session, env).
        self._local_types: Dict[Term, Optional[RType]] = {}

    def _collect_scope(self) -> None:
        for name, bound in self.env.effective_bindings():
            if isinstance(bound, TypeSchema):
                # A schema's quantified variables are flexible regardless of
                # their names: freshen them so a component that happens to
                # reuse a rigid variable's name (`Cons :: x:a -> ...` under a
                # goal polymorphic in `a`) is not mistaken for rigid and
                # pruned out of positions it could legitimately fill.
                body = subst_type_vars(
                    bound.body,
                    {var: type_var(f"%{var}") for var in bound.type_vars},
                )
            else:
                body = bound
            if isinstance(body, ScalarType):
                # Scalar variables and nullary components (constructors like
                # ``Nil``) are depth-1 atoms.
                self._atoms.append((VarTerm(name), body))
            elif isinstance(body, FunctionType):
                self._heads.append(_Head(name, shape(body)))

    # -- enumeration ---------------------------------------------------------

    def candidates(self, goal_shape: RType, depth: int) -> Iterator[Term]:
        """Terms of depth exactly ``depth`` whose shape can match
        ``goal_shape``, cheapest first, early-pruned prefixes excluded.

        The synthesizer iterates depths ``1 .. max_depth`` so smaller
        programs are always preferred (the paper's enumeration order).
        """
        key = (repr(goal_shape), depth)
        if key in self._cache:
            for term in self._cache[key]:
                # Cached replays are cheap to produce but each drives a
                # goal check downstream — still one budget quantum apiece.
                limits.checkpoint("enum_terms")
                yield term
            return
        found: List[Term] = []
        for term in self._generate(goal_shape, depth):
            limits.checkpoint("enum_terms")
            found.append(term)
            yield term
        self._cache[key] = found

    def _generate(self, goal_shape: RType, depth: int) -> Iterator[Term]:
        if depth <= 0:
            return
        if depth == 1:
            for term, scalar in self._atoms:
                if rigid_shape_match(shape(scalar), goal_shape, self.rigid):
                    self.statistics.generated += 1
                    yield term
            for term in self.literals:
                literal_shape = self._literal_shape(term)
                if literal_shape is not None and rigid_shape_match(
                    literal_shape, goal_shape, self.rigid
                ):
                    self.statistics.generated += 1
                    yield term
            return
        for head in self._heads:
            params: List[RType] = []
            node = head.arrows
            while isinstance(node, FunctionType):
                params.append(node.arg_type)
                node = node.result_type
                # Partial applications are not enumerated as results: every
                # component is applied fully (goals with higher-order
                # positions take function-typed *variables* as arguments).
            if not rigid_shape_match(node, goal_shape, self.rigid):
                continue
            # Unify the head's (freshened, flexible) result shape against
            # the goal and push the bindings into the parameter shapes:
            # under a goal `List a`, `Cons : %a -> List %a -> List %a`
            # becomes `a -> List a -> List a`, so argument enumeration is
            # narrowed to rigid-compatible candidates instead of sweeping
            # every term in scope through a wildcard parameter.
            bindings: Dict[str, RType] = {}
            _bind_flexible(node, goal_shape, bindings)
            if bindings:
                params = [subst_type_vars(param, bindings) for param in params]
            yield from self._applications(VarTerm(head.name), 1, params, depth, goal_shape)

    @staticmethod
    def _literal_shape(term: Term) -> Optional[RType]:
        if isinstance(term, IntConst):
            return ScalarType(INT_BASE)
        if isinstance(term, BoolConst):
            return ScalarType(BOOL_BASE)
        return None

    def _applications(
        self, prefix: Term, prefix_depth: int, params: List[RType], depth: int, goal_shape: RType
    ) -> Iterator[Term]:
        """Fill the remaining ``params`` of ``prefix``, checking each prefix
        locally before descending — the early-pruning core.

        ``prefix_depth`` is the spine depth so far (``1 + max(arg depths)``,
        ``1`` for the bare head), maintained incrementally: arguments come
        from :meth:`candidates` at an *exact* depth, so extending with an
        argument of depth ``d`` gives ``max(prefix_depth, 1 + d)``.
        """
        if not params:
            # Only full applications of *exact* depth surface, so the
            # depth-by-depth sweep in the synthesizer never repeats terms.
            if prefix_depth == depth:
                yield prefix
            return
        param, rest = params[0], params[1:]
        for arg_depth in range(1, depth):
            for arg in self.candidates(shape(param), arg_depth):
                candidate = AppTerm(prefix, arg)
                inferred = self.local_type(candidate)
                if inferred is None:
                    continue
                if not self._result_matches(inferred, len(rest), goal_shape):
                    self.statistics.pruned_shape += 1
                    continue
                extended_depth = max(prefix_depth, 1 + arg_depth)
                yield from self._applications(candidate, extended_depth, rest, depth, goal_shape)

    def local_type(self, candidate: Term) -> Optional[RType]:
        """The early local liquid check, memoized per candidate term:
        the candidate's inferred type when its local obligations are
        solvable, ``None`` when they are not (the candidate and every
        extension of it are pruned)."""
        if candidate in self._local_types:
            return self._local_types[candidate]
        self.statistics.generated += 1
        self.statistics.checked += 1
        inferred = self.session.try_infer(self.env, candidate)
        self._local_types[candidate] = inferred
        if inferred is None:
            self.statistics.pruned_early += 1
        return inferred

    def _result_matches(self, inferred: RType, remaining: int, goal_shape: RType) -> bool:
        """Does the candidate's *instantiated* result shape (after the
        ``remaining`` parameters still to be filled) fit the goal, rigid
        variables respected?  This is where a prefix like ``Cons Nil ·``
        dies against a parametric ``List a`` goal: its instantiated result
        is ``List (List b)``."""
        node: RType = inferred
        if isinstance(node, ContextualType):
            node = node.body
        for _ in range(remaining):
            if not isinstance(node, FunctionType):
                return False
            node = node.result_type
            if isinstance(node, ContextualType):
                node = node.body
        return rigid_shape_match(shape(node), goal_shape, self.rigid)
