"""Typechecking sessions: constraint accumulation and Horn solving.

A :class:`TypecheckSession` is the mutable half of the checker: the
bidirectional judgments in :mod:`repro.typecheck.checker` are pure walks
that *emit* into it — Horn constraints for every subtyping obligation,
qualifier spaces for every fresh predicate unknown (the liquid abstraction
of Sec. 3.6, instantiated from the environment where the unknown is
born).  One session owns one incremental SMT backend
(:class:`repro.smt.solver.IncrementalSolver`) that serves the *entire*
typing derivation: every Horn solver it spawns issues its validity checks
through the same backend, so premises shared between obligations are
encoded once and theory lemmas learned early prune every later query.

:meth:`TypecheckSession.solve` hands the accumulated system to
:class:`repro.horn.HornSolver` and packages the outcome: on success the
:class:`TypecheckResult` carries the inferred valuation of every unknown;
on failure it names the subtyping obligation whose constraint was refuted
(:meth:`TypecheckResult.error_message`), and
:meth:`TypecheckSession.solve_or_raise` turns that into a
:class:`SubtypingError`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..horn.constraints import HornConstraint
from ..horn.solver import Assignment, HornSolver, SolveOptions, resolve_options
from ..horn.spaces import QualifierSpace, build_space
from ..logic import ops
from ..logic.formulas import Formula, Unknown, value_var
from ..logic.measures import MeasureDef, instantiate_postconditions
from ..logic.qualifiers import Qualifier, default_qualifiers
from ..logic.simplify import conjuncts
from ..logic.sortcheck import MeasureSignatures
from ..logic.sorts import INT, Sort, UninterpretedSort
from ..smt.interface import SolverBackend
from ..smt.names import FreshNames
from ..smt.solver import IncrementalSolver
from ..syntax.datatypes import Datatype
from ..syntax.terms import Term
from ..syntax.types import BaseType, RType, ScalarType, TypeSchema, base_sort
from . import checker
from .environment import EMPTY, Environment
from .errors import SubtypingError, TypecheckError, WellFormednessError


@dataclass
class TypecheckResult:
    """Outcome of solving a session's constraint system.

    ``assignment`` maps every predicate unknown to its strongest inferred
    valuation; ``candidates`` is the surviving candidate set (weakest
    first) when the system needed candidate-set search, and ``weakest`` is
    the minimized valuation when requested.  When ``solved`` is false,
    ``failed`` is the refuted constraint and ``error_message`` names the
    subtyping obligation it came from.
    """

    solved: bool
    assignment: Assignment = field(default_factory=dict)
    candidates: Tuple[Assignment, ...] = ()
    weakest: Optional[Assignment] = None
    failed: Optional[HornConstraint] = None

    def refinement_of(self, unknown: str) -> Formula:
        """The inferred refinement of ``unknown`` as one conjunction."""
        return ops.conj(self.assignment.get(unknown, ()))

    @property
    def error_message(self) -> Optional[str]:
        """A human-readable account of the failure, if any."""
        if self.solved or self.failed is None:
            return None
        return (
            f"subtyping obligation failed at {self.failed.origin()}: "
            "no refinement in the qualifier space satisfies "
            f"`{self.failed!r}`"
        )


class TypecheckSession:
    """Accumulates constraints from a typing derivation and solves them."""

    def __init__(
        self,
        qualifiers: Optional[Sequence[Qualifier]] = None,
        literals: Iterable[Formula] = (),
        backend: Optional[SolverBackend] = None,
        measures: Optional[MeasureSignatures] = None,
        datatypes: Iterable[Datatype] = (),
        measure_defs: Iterable[MeasureDef] = (),
    ) -> None:
        self.qualifiers: List[Qualifier] = list(
            qualifiers if qualifiers is not None else default_qualifiers()
        )
        #: Extra candidate formulas (e.g. the literal 0) joining every
        #: qualifier space's placeholder pool.
        self.literals: Tuple[Formula, ...] = tuple(literals)
        self.backend: SolverBackend = (backend if backend is not None else IncrementalSolver())
        #: Raw measure signatures for sort checking; measure *definitions*
        #: (catamorphism cases + postconditions) add theirs automatically.
        self.measures: Dict[str, Tuple[Tuple[Sort, ...], Sort]] = dict(measures or {})
        self.datatypes: Dict[str, Datatype] = {}
        self.measure_defs: Dict[str, MeasureDef] = {}
        self.constraints: List[HornConstraint] = []
        self.spaces: Dict[str, QualifierSpace] = {}
        #: Default solve options for every solver this session spawns —
        #: :meth:`solve` calls without explicit ``options`` and condition
        #: abduction both read it, which is how ``synth --workers`` reaches
        #: the candidate-set portfolio inside abduction.
        self.solve_options: SolveOptions = SolveOptions()
        self.last_solver: Optional[HornSolver] = None
        #: Grounded-implication verdicts shared by every solver this
        #: session spawns: enumeration re-solves systems sharing most of
        #: their obligations, and validity is a pure function of the
        #: formulas, so verdicts stay good across solves (and trials).
        self._validity_memo: Dict = {}
        self._names = FreshNames(prefix="_")
        for datatype in datatypes:
            self.declare_datatype(datatype)
        for mdef in measure_defs:
            self.declare_measure(mdef)

    # -- datatype and measure registries -------------------------------------

    def declare_datatype(self, datatype: Datatype) -> None:
        """Register a datatype so ``match`` can elaborate its constructors."""
        self.datatypes[datatype.name] = datatype

    def declare_measure(self, mdef: MeasureDef) -> None:
        """Register a measure: its signature joins the sort-checking map and
        its axioms are instantiated at match sites and on every emitted
        constraint."""
        self.measure_defs[mdef.name] = mdef
        self.measures[mdef.name] = mdef.signature()

    def measures_for(self, datatype: str) -> List[MeasureDef]:
        """The measures declared over ``datatype``, declaration order."""
        return [m for m in self.measure_defs.values() if m.datatype == datatype]

    def termination_measure(self, datatype: str) -> Optional[MeasureDef]:
        """The measure a decreasing argument of ``datatype`` is compared by:
        the first integer-resulted measure declared for it."""
        for mdef in self.measure_defs.values():
            if mdef.datatype == datatype and mdef.result_sort == INT:
                return mdef
        return None

    def bind_constructors(self, env: Environment = EMPTY) -> Environment:
        """``env`` extended with every registered constructor's schema, so
        programs can apply constructors as ordinary components."""
        for datatype in self.datatypes.values():
            for ctor in datatype.constructors:
                env = env.bind(ctor.name, ctor.schema)
        return env

    # -- fresh unknowns (liquid abstraction) ---------------------------------

    def fresh_name(self, kind: str = "x") -> str:
        """A fresh program-level name (for contextual bindings)."""
        return self._names.fresh(kind)

    def fresh_unknown(
        self, env: Environment, value_sort: Optional[Sort], kind: str = "T"
    ) -> Unknown:
        """A fresh predicate unknown whose qualifier space is instantiated
        from the variables in scope in ``env`` (plus session literals, plus
        measure applications over every datatype-sorted candidate — the
        terms liquid inference needs to talk about lengths and sizes)."""
        name = self._names.fresh(kind)
        candidates = env.scope_candidates() + list(self.literals)
        candidates.extend(self._measure_candidates(candidates, value_sort))
        self.spaces[name] = build_space(name, self.qualifiers, candidates, value_sort)
        return Unknown(name)

    def _measure_candidates(
        self, candidates: Sequence[Formula], value_sort: Optional[Sort]
    ) -> List[Formula]:
        """Applications ``m(c)`` of registered measures to the datatype-sorted
        candidates (and the value variable) in scope."""
        if not self.measure_defs:
            return []
        subjects = list(candidates)
        if isinstance(value_sort, UninterpretedSort):
            subjects.append(value_var(value_sort))
        applications: List[Formula] = []
        for subject in subjects:
            sort = subject.sort
            if not isinstance(sort, UninterpretedSort):
                continue
            for mdef in self.measures_for(sort.name):
                applications.append(mdef.apply(subject))
        return applications

    def fresh_scalar(self, env: Environment, base: BaseType) -> ScalarType:
        """A scalar type refined by a fresh unknown — the checker's stand-in
        for a refinement to be inferred."""
        return ScalarType(base, self.fresh_unknown(env, base_sort(base)))

    def instantiate(
        self,
        schema: TypeSchema,
        env: Environment,
        type_args: Optional[Mapping[str, RType]] = None,
    ) -> RType:
        """Strip a schema's quantifiers: type variables become the provided
        types (unresolved ones are *freshened* — each use site gets its own
        variables, so two instantiations never alias and a quantified name
        can never capture an identically-named variable free in the goal),
        predicate variables become fresh unknowns with spaces built from
        ``env``."""
        from ..syntax.types import instantiate_schema, type_var

        pred_mapping: Dict[str, str] = {}
        for sig in schema.pred_vars:
            value_sort = sig.arg_sorts[-1] if sig.arg_sorts else None
            pred_mapping[sig.name] = self.fresh_unknown(env, value_sort, kind="P").name
        full_args: Dict[str, RType] = dict(type_args or {})
        for var in schema.type_vars:
            if var not in full_args:
                full_args[var] = type_var(self.fresh_name("tv"))
        return instantiate_schema(schema, full_args, pred_mapping)

    # -- constraint accumulation ---------------------------------------------

    def emit(
        self,
        premises: Sequence[Formula],
        conclusion: Formula,
        provenance: Tuple[str, ...] = (),
    ) -> None:
        """Record ``premises ==> conclusion``, splitting the conclusion into
        conjuncts so each constraint is Horn-shaped (a lone unknown or an
        unknown-free formula on the right).

        Measure postconditions are instantiated here: every measure
        application occurring in the obligation contributes its axiom
        instance (e.g. ``len(xs) >= 0``) as an extra premise, which is how
        catamorphism facts reach the Horn solver without quantifiers.
        """
        if self.measure_defs:
            axioms = instantiate_postconditions(list(premises) + [conclusion], self.measure_defs)
            if axioms:
                premises = list(premises) + axioms
        for conjunct in conjuncts(conclusion):
            try:
                self.constraints.append(
                    HornConstraint(tuple(premises), conjunct, provenance=provenance)
                )
            except ValueError as error:
                raise WellFormednessError(
                    f"refinement at {' / '.join(provenance) or '<top level>'} mixes "
                    f"a predicate unknown into a compound conclusion: {error}"
                ) from error

    # -- checker entry points ------------------------------------------------

    def well_formed(self, env: Environment, rtype: RType) -> None:
        """Demand ``rtype`` is well-formed in ``env`` (see checker)."""
        checker.well_formed(self, env, rtype)

    def infer(self, env: Environment, term: Term, where: str = "") -> RType:
        """Infer the type of an elimination term."""
        return checker.infer(self, env, term, (where,) if where else ())

    def check(self, env: Environment, term: Term, goal: RType, where: str = "") -> None:
        """Check ``term`` against ``goal``, accumulating constraints."""
        checker.check(self, env, term, goal, (where,) if where else ())

    def subtype(self, env: Environment, sub: RType, sup: RType, where: str = "") -> None:
        """Record the subtyping obligation ``env ⊢ sub <: sup``."""
        checker.subtype(self, env, sub, sup, (where,) if where else ())

    def check_program(
        self,
        term: Term,
        goal: RType,
        env: Environment = EMPTY,
        where: str = "",
    ) -> None:
        """Well-formedness then checking — the common top-level sequence."""
        self.well_formed(env, goal)
        self.check(env, term, goal, where)

    # -- partial checking (round-trip synthesis, Sec. 4) ---------------------

    @contextmanager
    def trial(self) -> Iterator["TypecheckSession"]:
        """A scope whose constraints and qualifier spaces are rolled back.

        The synthesizer's round-trip loop checks thousands of candidate
        terms against one session; each candidate's obligations must leave
        no residue once the candidate is discarded, while the shared
        incremental backend keeps every clause and theory lemma it learned
        (that reuse is what makes early pruning cheap).  Fresh-name counters
        are deliberately *not* rolled back — names stay unique across
        trials.
        """
        constraints_mark = len(self.constraints)
        space_names = set(self.spaces)
        try:
            yield self
        finally:
            del self.constraints[constraints_mark:]
            for name in [n for n in self.spaces if n not in space_names]:
                del self.spaces[name]

    def try_check(
        self,
        env: Environment,
        term: Term,
        goal: RType,
        where: str = "",
        options: Optional[SolveOptions] = None,
    ) -> TypecheckResult:
        """Check ``term`` against ``goal`` in a :meth:`trial` scope and solve.

        Structural rejections (shape, match, termination errors) are
        reported as an unsolved result instead of raised — a candidate the
        enumerator proposes is never a hard error, just not a program.
        """
        with self.trial():
            try:
                self.check(env, term, goal, where)
            except TypecheckError:
                return TypecheckResult(solved=False)
            return self.solve(options)

    def try_infer(self, env: Environment, term: Term, where: str = "") -> Optional[RType]:
        """Infer ``term``'s type in a :meth:`trial` scope, solving the local
        obligations it emits (argument subtyping, instantiation).

        Returns ``None`` when the term is ill-typed — structurally, or
        because no valuation of the unknowns validates its obligations.
        This is the early local liquid check of Sec. 4: an application
        prefix rejected here cannot be repaired by any extension, so the
        enumerator prunes its whole subtree.
        """
        with self.trial():
            try:
                rtype = self.infer(env, term, where)
            except TypecheckError:
                return None
            return rtype if self.solve().solved else None

    # -- solving -------------------------------------------------------------

    def solve(
        self,
        options: Optional[SolveOptions] = None,
        *,
        minimize: Optional[bool] = None,
    ) -> TypecheckResult:
        """Solve the accumulated system with a Horn solver running on this
        session's shared incremental backend.

        ``options`` selects minimization, the candidate-frontier width, the
        MUS budget, and the portfolio's worker count (``max_workers > 1``
        fans candidate branches across processes when the system has
        abducible spaces); omitted, the session's :attr:`solve_options`
        apply.  ``minimize`` as a keyword is a one-release deprecation shim
        for the old boolean API.
        """
        opts = resolve_options(options if options is not None else self.solve_options, minimize)
        solver = HornSolver(self.backend, validity_memo=self._validity_memo)
        self.last_solver = solver
        solution = solver.solve(self.constraints, self.spaces, opts)
        return TypecheckResult(
            solved=solution.solved,
            assignment=solution.assignment,
            candidates=solution.candidates,
            weakest=solution.weakest,
            failed=solution.failed,
        )

    def solve_or_raise(
        self,
        options: Optional[SolveOptions] = None,
        *,
        minimize: Optional[bool] = None,
    ) -> TypecheckResult:
        """Like :meth:`solve`, raising :class:`SubtypingError` on failure."""
        result = self.solve(resolve_options(options, minimize))
        if not result.solved:
            assert result.error_message is not None
            raise SubtypingError(result.error_message, result.failed)
        return result
