"""Tests for the Horn-constraint fixpoint solver (Sec. 5 of the paper)."""

import pytest

from repro.horn import (
    HornSolver,
    QualifierSpace,
    SolveOptions,
    build_space,
    build_spaces,
    constraint,
)
from repro.logic import ops
from repro.logic.formulas import IntLit, Unknown, value_var
from repro.logic.qualifiers import default_qualifiers
from repro.logic.sorts import INT

x = ops.var("x", INT)
y = ops.var("y", INT)
nu = value_var(INT)


def max_system():
    """The paper's running example: synthesize the postcondition of max.

    ``P`` is the unknown refinement of the result; the two branch
    constraints weaken it, and the spec constraint checks it entails
    ``nu >= x && nu >= y``.  Solving needs the *conjunction* of two
    qualifiers (``x <= nu && y <= nu``).
    """
    space = build_space("P", default_qualifiers(), [x, y], value_sort=INT)
    constraints = [
        constraint([ops.ge(x, y)], Unknown("P", (("_v", x),)), "then-branch"),
        constraint([ops.not_(ops.ge(x, y))], Unknown("P", (("_v", y),)), "else-branch"),
        constraint([Unknown("P")], ops.and_(ops.ge(nu, x), ops.ge(nu, y)), "spec"),
    ]
    return constraints, [space]


class TestConstraints:
    def test_classification(self):
        weakening = constraint([ops.le(x, y)], Unknown("P"))
        definite = constraint([Unknown("P")], ops.le(x, y))
        assert not weakening.is_definite()
        assert weakening.conclusion_unknown().name == "P"
        assert definite.is_definite()
        assert definite.conclusion_unknown() is None
        assert definite.premise_unknowns() == {"P"}
        assert weakening.unknowns() == definite.unknowns() == {"P"}

    def test_mixed_conclusion_rejected(self):
        with pytest.raises(ValueError):
            constraint([], ops.and_(Unknown("P"), ops.le(x, y)))


class TestMaxExample:
    def test_strongest_assignment(self):
        constraints, spaces = max_system()
        solver = HornSolver()
        solution = solver.solve(constraints, spaces)
        assert solution.solved
        valuation = set(solution.assignment["P"])
        # the conjunction of >= 2 qualifiers is required and found
        assert ops.le(x, nu) in valuation
        assert ops.le(y, nu) in valuation
        # nothing false under either branch survives
        assert ops.le(nu, x) not in valuation
        assert ops.eq(nu, x) not in valuation

    def test_validity_checks_go_through_incremental_backend(self):
        constraints, spaces = max_system()
        solver = HornSolver()
        solution = solver.solve(constraints, spaces)
        assert solution.solved
        stats = solver.backend.statistics
        assert stats.sat_queries == solver.statistics.validity_checks > 0
        # unchanged premises are re-asserted without re-encoding: every
        # per-qualifier probe reuses the constraint's premise selectors
        assert stats.reused_assertions > 0

    def test_counterexample_model_batches_qualifier_pruning(self):
        # When a constraint's full valuation fails, the counterexample
        # model prunes falsified qualifiers without per-qualifier queries;
        # the final assignment is unchanged.
        constraints, spaces = max_system()
        solver = HornSolver()
        solution = solver.solve(constraints, spaces)
        assert solution.solved
        assert solver.statistics.model_pruned_qualifiers > 0
        # Every model-pruned qualifier saved one validity query.
        assert solver.statistics.validity_checks < 37  # the pre-batching count
        valuation = set(solution.assignment["P"])
        assert ops.le(x, nu) in valuation and ops.le(y, nu) in valuation

    def test_weakest_assignment(self):
        constraints, spaces = max_system()
        solution = HornSolver().solve(constraints, spaces, SolveOptions(minimize=True))
        assert solution.solved
        assert set(solution.weakest["P"]) == {ops.le(x, nu), ops.le(y, nu)}

    def test_solution_formula(self):
        constraints, spaces = max_system()
        solution = HornSolver().solve(constraints, spaces)
        strongest = solution.formula_for("P")
        # the strongest valuation entails the spec
        backend = HornSolver().backend
        assert backend.is_valid_implication([strongest], ops.and_(ops.ge(nu, x), ops.ge(nu, y)))


class TestAbsExample:
    def test_abs_postcondition(self):
        """abs-style system: P must capture nu >= 0 using a literal candidate."""
        space = build_space("P", default_qualifiers(), [x, IntLit(0)], value_sort=INT)
        constraints = [
            constraint([ops.ge(x, IntLit(0))], Unknown("P", (("_v", x),))),
            constraint([ops.lt(x, IntLit(0))], Unknown("P", (("_v", ops.neg(x)),))),
            constraint([Unknown("P")], ops.ge(nu, IntLit(0)), "spec"),
        ]
        solution = HornSolver().solve(constraints, [space])
        assert solution.solved
        assert ops.le(IntLit(0), nu) in solution.assignment["P"]


class TestUnsolvableSystem:
    def test_definite_constraint_fails(self):
        """No subset of the qualifier space makes P entail nu < 0."""
        space = build_space("P", default_qualifiers(), [x], value_sort=INT)
        spec = constraint([Unknown("P")], ops.lt(nu, IntLit(0)), "spec")
        constraints = [
            constraint([ops.ge(x, IntLit(0))], Unknown("P", (("_v", x),))),
            spec,
        ]
        solution = HornSolver().solve(constraints, [space])
        assert not solution.solved
        assert solution.failed is spec

    def test_contradictory_premises_prove_anything(self):
        space = build_space("P", default_qualifiers(), [x, y], value_sort=INT)
        constraints = [
            constraint([ops.lt(x, y), ops.lt(y, x)], Unknown("P")),
        ]
        solution = HornSolver().solve(constraints, [space])
        assert solution.solved
        # nothing needs to be pruned under inconsistent premises
        assert set(solution.assignment["P"]) == set(space.qualifiers)


class TestChainedUnknowns:
    def test_weakening_propagates_through_premises(self):
        """P feeds Q: pruning P must re-trigger weakening of Q."""
        spaces = build_spaces({"P": [x], "Q": [x]}, default_qualifiers(), value_sort=INT)
        constraints = [
            # P can only keep qualifiers implied by x == nu
            constraint([ops.eq(x, nu)], Unknown("P")),
            # Q must follow from P alone
            constraint([Unknown("P")], Unknown("Q")),
        ]
        solution = HornSolver().solve(constraints, spaces)
        assert solution.solved
        # Q's valuation is a subset of what P can justify
        p_formula = ops.conj(solution.assignment["P"])
        backend = HornSolver().backend
        for q in solution.assignment["Q"]:
            assert backend.is_valid_implication([p_formula], q)

    def test_multiple_rounds_run(self):
        spaces = build_spaces({"P": [x], "Q": [x]}, default_qualifiers(), value_sort=INT)
        constraints = [
            constraint([ops.eq(x, nu)], Unknown("P")),
            constraint([Unknown("P")], Unknown("Q")),
        ]
        solver = HornSolver()
        solver.solve(constraints, spaces)
        assert solver.statistics.fixpoint_rounds >= 2


class TestSetConstraints:
    def test_set_qualifiers_survive_weakening(self):
        """Cross-premise set reasoning: member(x, s) and s <= t justify
        member(x, t) only if the solver sees one element universe."""
        from repro.logic.sorts import set_of

        s = ops.var("s", set_of(INT))
        t = ops.var("t", set_of(INT))
        space = QualifierSpace("P", (ops.member(x, t),))
        constraints = [
            constraint([ops.member(x, s), ops.subset(s, t)], Unknown("P")),
        ]
        solution = HornSolver().solve(constraints, [space])
        assert solution.solved
        assert solution.assignment["P"] == (ops.member(x, t),)

    def test_unjustified_set_qualifier_is_pruned(self):
        from repro.logic.sorts import set_of

        s = ops.var("s", set_of(INT))
        t = ops.var("t", set_of(INT))
        space = QualifierSpace("P", (ops.member(x, t),))
        constraints = [constraint([ops.member(x, s)], Unknown("P"))]
        solution = HornSolver().solve(constraints, [space])
        assert solution.assignment["P"] == ()


class TestSpaces:
    def test_missing_space_means_trivial_valuation(self):
        solution = HornSolver().solve([constraint([ops.le(x, y)], Unknown("P"))], [])
        assert solution.solved
        assert solution.assignment["P"] == ()
        assert solution.formula_for("P") == ops.bool_lit(True)

    def test_space_map_accepts_iterables_and_mappings(self):
        space = QualifierSpace("P", (ops.le(x, nu),))
        by_list = HornSolver().solve([constraint([ops.le(x, nu)], Unknown("P"))], [space])
        by_map = HornSolver().solve([constraint([ops.le(x, nu)], Unknown("P"))], {"P": space})
        assert by_list.assignment == by_map.assignment

    def test_build_space_sizes(self):
        space = build_space("P", default_qualifiers(), [x, y], value_sort=INT)
        # 4 qualifiers x 6 ordered distinct pairs of {x, y, nu}
        assert len(space) == 24


def disjunctive_system():
    """A goal only candidate-set search can solve (disjunctive inference).

    The abducible guard ``C`` ranges over the four bounds on ``x``; the two
    definite constraints force ``x != 0`` and ``x <= 0``, so the weakest
    realizable guard is ``x <= -1`` — but the greedy path commits to
    ``x >= 0`` first (space order) and dead-ends in a region every
    extension of which contains a MUS.  ``P`` keeps a classic
    greatest-fixpoint unknown in the same system.
    """
    zero, one, neg_one = IntLit(0), IntLit(1), IntLit(-1)
    guard_space = QualifierSpace(
        "C",
        (ops.ge(x, zero), ops.ge(x, one), ops.le(x, zero), ops.le(x, neg_one)),
        abducible=True,
    )
    flow_space = QualifierSpace("P", (ops.le(nu, zero), ops.ge(nu, zero)))
    constraints = [
        constraint([Unknown("C")], ops.neq(x, IntLit(0)), "nonzero"),
        constraint([Unknown("C")], ops.le(x, IntLit(0)), "nonpositive"),
        constraint([Unknown("C"), ops.eq(nu, x)], Unknown("P"), "flow"),
        constraint([Unknown("P")], ops.le(nu, IntLit(0)), "use"),
    ]
    return constraints, {"C": guard_space, "P": flow_space}


class TestSolveOptions:
    def test_classic_path_exposes_its_single_candidate(self):
        constraints, spaces = max_system()
        solution = HornSolver().solve(constraints, spaces)
        assert solution.candidates == (solution.assignment,)

    def test_options_object_matches_old_default(self):
        constraints, spaces = max_system()
        by_default = HornSolver().solve(constraints, spaces)
        by_options = HornSolver().solve(constraints, spaces, SolveOptions())
        assert by_default.assignment == by_options.assignment
        assert by_default.candidates == by_options.candidates

    def test_minimize_keyword_warns_but_works(self):
        constraints, spaces = max_system()
        with pytest.warns(DeprecationWarning, match="SolveOptions"):
            solution = HornSolver().solve(constraints, spaces, minimize=True)
        assert solution.solved
        assert set(solution.weakest["P"]) == {ops.le(x, nu), ops.le(y, nu)}

    def test_unsolved_classic_path_has_no_candidates(self):
        space = build_space("P", default_qualifiers(), [x], value_sort=INT)
        constraints = [
            constraint([ops.ge(x, IntLit(0))], Unknown("P", (("_v", x),))),
            constraint([Unknown("P")], ops.lt(nu, IntLit(0)), "spec"),
        ]
        solution = HornSolver().solve(constraints, [space])
        assert not solution.solved
        assert solution.candidates == ()


class TestDisjunctiveInference:
    def test_single_candidate_greedy_path_dead_ends(self):
        constraints, spaces = disjunctive_system()
        solution = HornSolver().solve(constraints, spaces, SolveOptions(max_candidates=1))
        assert not solution.solved
        assert solution.failed is not None

    def test_candidate_set_search_solves_it(self):
        constraints, spaces = disjunctive_system()
        solver = HornSolver()
        solution = solver.solve(constraints, spaces)
        assert solution.solved
        # the weakest realizable guard, not the greedy one
        assert solution.assignment["C"] == (ops.le(x, IntLit(-1)),)
        # the classic core still solved the positive unknown per candidate
        assert ops.le(nu, IntLit(0)) in solution.assignment["P"]
        # MUSFix did the pruning that makes the search finite
        assert solver.statistics.muses_enumerated > 0
        assert solver.statistics.candidates_pruned > 0

    def test_surviving_candidates_form_a_weakest_antichain(self):
        constraints, spaces = disjunctive_system()
        solution = HornSolver().solve(constraints, spaces)
        guards = [frozenset(candidate["C"]) for candidate in solution.candidates]
        assert frozenset({ops.le(x, IntLit(-1))}) in guards
        for i, a in enumerate(guards):
            for j, b in enumerate(guards):
                assert i == j or not a < b, "a dominated candidate survived"

    def test_minimize_applies_to_the_chosen_candidate(self):
        constraints, spaces = disjunctive_system()
        solution = HornSolver().solve(constraints, spaces, SolveOptions(minimize=True))
        assert solution.solved
        assert solution.weakest is not None
        assert solution.weakest["C"] == (ops.le(x, IntLit(-1)),)

    def test_abducible_in_conclusion_is_rejected(self):
        _, spaces = disjunctive_system()
        bad = [constraint([ops.ge(x, IntLit(0))], Unknown("C"), "bad")]
        with pytest.raises(ValueError, match="abducible"):
            HornSolver().solve(bad, spaces)


class TestProvenance:
    def test_label_argument_folds_into_the_trail(self):
        constr = constraint([ops.le(x, y)], Unknown("P"), "spec", provenance=("f", "body"))
        assert constr.provenance == ("f", "body", "spec")
        assert constr.origin() == "f / body / spec"

    def test_origin_without_trail_is_a_placeholder(self):
        constr = constraint([ops.le(x, y)], Unknown("P"))
        assert constr.origin() == "<unlabeled constraint>"

    def test_label_property_is_a_deprecated_alias(self):
        constr = constraint([ops.le(x, y)], Unknown("P"), "spec")
        with pytest.warns(DeprecationWarning, match="origin"):
            assert constr.label == "spec"
        bare = constraint([ops.le(x, y)], Unknown("P"))
        with pytest.warns(DeprecationWarning):
            assert bare.label == ""
