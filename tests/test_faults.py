"""The chaos suite: every degradation path, proven by injected faults.

Each test arms one named failure point (:mod:`repro.testing.faults`) and
asserts the stack *degrades* exactly as documented instead of dying:

* a portfolio worker killed mid-solve → the branch group is re-searched
  inline and the results equal a clean serial run (on the whole examples
  corpus — the acceptance bar for this machinery);
* the process pool unavailable outright → transparent serial fallback;
* a cache entry corrupted mid-read → counted, dropped, recomputed;
* a theory check raising → the batch sweep records one failure, resets
  the warm stack (visibly), and finishes the rest;
* a warm stack stalling past its deadline → the server answers 503 and
  ``/stats`` shows a timeout reset;
* ``synth --timeout-ms`` on an oversized goal → exit code 2 with a
  structured timeout report, in well under twice the deadline.
"""

import io
import json
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.horn import HornSolver, SolveOptions
from repro.service.batch import run_batch
from repro.service.cache import ResultCache
from repro.service.server import ReproServer
from repro.syntax.parser import parse_program
from repro.syntax.types import generalize
from repro.testing import faults
from repro.typecheck.environment import EMPTY
from repro.typecheck.session import TypecheckSession
from test_portfolio import two_guard_system

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def disarm():
    faults.reset()
    yield
    faults.reset()


class TestFaultHarness:
    def test_points_are_disarmed_by_default(self):
        assert not faults.maybe_fire("anything")

    def test_armed_point_fires_exactly_its_charges(self):
        faults.arm("p", times=2)
        assert faults.maybe_fire("p")
        assert faults.maybe_fire("p")
        assert not faults.maybe_fire("p")

    def test_env_arming(self, monkeypatch):
        monkeypatch.setenv(faults.FAULTS_ENV, "a, b:3")
        faults.reset()  # force a re-read of the environment
        assert faults.maybe_fire("a")
        assert not faults.maybe_fire("a")
        for _ in range(3):
            assert faults.maybe_fire("b")
        assert not faults.maybe_fire("b")


def check_outcomes(program, options=None):
    """Every definition in ``program`` through the checker; the list of
    (solved, assignment, candidates) triples — the serial baseline the
    degraded runs must reproduce."""
    outcomes = []
    for name, term in program.definitions.items():
        session = TypecheckSession(
            datatypes=program.datatypes.values(),
            measure_defs=program.measures.values(),
        )
        env = session.bind_constructors(EMPTY)
        for signame, rtype in program.signatures.items():
            if signame == name:
                break
            env = env.bind(signame, generalize(rtype))
        session.check_program(term, program.signatures[name], env, where=name)
        outcome = session.solve(options)
        outcomes.append((outcome.solved, outcome.assignment, outcome.candidates))
    return outcomes


class TestPortfolioWorkerDeath:
    def test_dead_worker_degrades_to_inline_search(self):
        constraints, spaces = two_guard_system()
        serial = HornSolver().solve(constraints, spaces)
        faults.arm("portfolio.worker-death.0")
        coordinator = HornSolver()
        degraded = coordinator.solve(constraints, spaces, SolveOptions(max_workers=2))
        assert degraded.solved == serial.solved
        assert degraded.assignment == serial.assignment
        assert coordinator.statistics.worker_deaths >= 1

    @pytest.mark.parametrize("example", sorted(p.name for p in EXAMPLES.glob("*.sq")))
    def test_corpus_survives_a_worker_death(self, example):
        """Acceptance: killing one portfolio worker mid-solve still
        produces the serial result set on the whole examples corpus."""
        program = parse_program((EXAMPLES / example).read_text())
        serial = check_outcomes(program)
        faults.arm("portfolio.worker-death.0", times=len(program.definitions) or 1)
        degraded = check_outcomes(program, SolveOptions(max_workers=2))
        assert degraded == serial

    def test_executor_unavailable_falls_back_to_serial(self):
        constraints, spaces = two_guard_system()
        serial = HornSolver().solve(constraints, spaces)
        faults.arm("portfolio.executor-down")
        fallback = HornSolver().solve(constraints, spaces, SolveOptions(max_workers=2))
        assert fallback.solved == serial.solved
        assert fallback.assignment == serial.assignment


class TestCacheCorruption:
    def test_corrupt_read_is_counted_dropped_and_recomputed(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" * 32, {"items": [], "failures": 0})
        faults.arm("cache.corrupt-read")
        assert cache.get("ab" * 32) is None  # corrupt → miss
        stats = cache.stats()
        assert stats["corrupt"] == 1 and stats["entries"] == 0
        cache.put("ab" * 32, {"items": [], "failures": 0})  # recompute+rewrite
        assert cache.get("ab" * 32) == {"items": [], "failures": 0}


SIMPLE_SQ = """\
inc :: a:Int -> {Int | nu == a + 1}

plus2 :: a:Int -> {Int | nu == a + 2}
plus2 = \\a . inc (inc a)
"""


def corpus(tmp_path, count=3):
    for index in range(count):
        # distinct names so each file is a distinct cache key
        (tmp_path / f"file{index}.sq").write_text(
            SIMPLE_SQ.replace("plus2", f"plus2_{index}")
        )
    return tmp_path


class TestBatchFaultTolerance:
    def test_theory_crash_fails_one_file_not_the_sweep(self, tmp_path):
        faults.arm("theory.raise")
        report = run_batch(str(corpus(tmp_path)), cache=None)
        assert len(report["files"]) == 3
        assert report["failures"] == 1
        errors = [r for r in report["files"] if "error" in r]
        assert len(errors) == 1 and "theory.raise" in errors[0]["error"]
        # the crashed query reset the warm stack, and the report says so
        assert report["resets"] == 1
        # the remaining files still checked clean
        assert sum(1 for r in report["files"] if "check" in r) == 2

    def test_transient_worker_death_is_retried(self, tmp_path):
        faults.arm("batch.worker-death")
        report = run_batch(str(corpus(tmp_path)), cache=None, retries=1, backoff_s=0.0)
        assert report["failures"] == 0
        assert report["retries"] == 1

    def test_worker_death_without_retries_fails_only_that_file(self, tmp_path):
        faults.arm("batch.worker-death")
        report = run_batch(str(corpus(tmp_path)), cache=None, retries=0)
        assert report["failures"] == 1
        assert any("worker died" in r.get("error", "") for r in report["files"])
        assert sum(1 for r in report["files"] if "check" in r) == 2

    def test_file_timeout_is_recorded_and_the_sweep_continues(self, tmp_path):
        corpus(tmp_path)
        (tmp_path / "slow.sq").write_text((EXAMPLES / "list.sq").read_text())
        report = run_batch(
            str(tmp_path), cache=None, file_timeout_ms=80, depth=8, max_matches=2
        )
        assert len(report["files"]) == 4
        assert report["timeouts"] >= 1
        timed_out = [r for r in report["files"] if r.get("timeout")]
        assert any(r["file"].endswith("slow.sq") for r in timed_out)


class TestServerDegradation:
    @pytest.fixture
    def server(self):
        srv = ReproServer("127.0.0.1", 0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            yield srv
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=5)

    def post(self, server, path, body):
        conn = HTTPConnection("127.0.0.1", server.server_port)
        conn.request(
            "POST", path, json.dumps(body).encode(), {"Content-Type": "application/json"}
        )
        response = conn.getresponse()
        answer = json.loads(response.read())
        conn.close()
        return response.status, answer

    def test_stalled_stack_times_out_as_503_and_resets(self, server):
        source = (EXAMPLES / "list.sq").read_text()
        faults.arm("stack.stall")
        status, body = self.post(server, "/check", {"program": source, "timeout_ms": 150})
        assert status == 503
        assert body["timeout"] is True and body["limit"] == "wall_clock"
        assert body["stats"]["worker"]["timeout_resets"] == 1
        # the replacement stack answers the same query normally
        status, body = self.post(server, "/check", {"program": SIMPLE_SQ})
        assert status == 200
        assert body["result"]["failures"] == 0

    def test_oversized_synth_request_times_out_with_partial_results(self, server):
        source = (EXAMPLES / "list.sq").read_text()
        status, body = self.post(
            server,
            "/synth",
            {"program": source, "depth": 8, "max_matches": 2, "timeout_ms": 300},
        )
        assert status == 503
        assert body["timeout"] is True
        items = body["result"]["items"]
        assert any(item.get("timeout") for item in items)


class TestCliTimeout:
    def test_synth_budget_exhaustion_exits_2_within_twice_the_deadline(self):
        """Acceptance: ``synth --timeout-ms 500`` on an oversized goal →
        exit code 2 with a structured timeout report, in < 2x the
        deadline."""
        out = io.StringIO()
        started = time.monotonic()
        code = cli_main(
            [
                "synth",
                str(EXAMPLES / "list.sq"),
                "--timeout-ms",
                "500",
                "--depth",
                "8",
                "--max-conditionals",
                "3",
                "--max-matches",
                "2",
            ],
            out=out,
        )
        elapsed_ms = (time.monotonic() - started) * 1000
        assert code == 2
        assert elapsed_ms < 1000
        text = out.getvalue()
        assert "timeout: wall_clock budget exhausted at depth" in text
        assert "budget exhausted" in text

    def test_check_timeout_reports_unknown_not_rejected(self, tmp_path):
        out = io.StringIO()
        code = cli_main(
            ["check", str(EXAMPLES / "list.sq"), "--timeout-ms", "1"], out=out
        )
        assert code == 2
        text = out.getvalue()
        assert "UNKNOWN" in text
        assert "REJECTED" not in text
