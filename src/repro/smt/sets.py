"""Element-wise elimination of finite-set constraints.

The paper's refinement logic uses sets (via the theory of arrays in Z3) for
measures such as ``elems`` and ``keys``.  This module compiles set atoms away
before the lazy SMT loop runs:

* the *universe* of relevant elements is the set of element terms named in
  the query plus one fresh witness per negative set atom;
* positive equalities / inclusions are expanded into membership constraints
  over the universe;
* negative equalities / inclusions are expanded using their witness element
  (which makes them exact);
* membership in an *uninterpreted* set term (a set-sorted variable or measure
  application) becomes an uninterpreted boolean application ``mem(e, S)``,
  so congruence closure supplies functional consistency.

For the operator set used by the refinement logic (union, intersection,
difference, literals, ``in``, subset, equality — no complement and no
cardinality) this reduction is satisfiability-preserving: base sets in a
countermodel can always be shrunk to contain only named elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..logic import ops
from ..logic.formulas import (
    App,
    Binary,
    BinaryOp,
    Formula,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Var,
)
from ..logic.sorts import SetSort, Sort
from ..logic.transform import subterms
from .names import FreshNames

#: Name of the uninterpreted membership predicate introduced by the encoding.
MEMBERSHIP_FUNC = "__mem"

#: Prefix of fresh witness element variables.
WITNESS_PREFIX = "__wit"


@dataclass
class SetEncoder:
    """Stateful encoder; one instance per SMT query.

    When several queries share a solver context (the incremental backend),
    pass the solver's :class:`FreshNames` so witness elements introduced for
    different assertions never alias each other.
    """

    fresh_names: Optional[FreshNames] = None
    _universe: List[Formula] = field(default_factory=list)
    _witness_count: int = 0

    def encode(self, formula: Formula) -> Formula:
        """Eliminate all set atoms from a formula in negation normal form."""
        self._universe = self._collect_elements(formula)
        return self._rewrite(formula)

    # -- universe construction --------------------------------------------

    def _collect_elements(self, formula: Formula) -> List[Formula]:
        elements: List[Formula] = []
        seen = set()

        def add(term: Formula) -> None:
            if term not in seen:
                seen.add(term)
                elements.append(term)

        for node in subterms(formula):
            if isinstance(node, SetLit):
                for element in node.elements:
                    add(element)
            elif isinstance(node, Binary) and node.op is BinaryOp.MEMBER:
                add(node.lhs)
        return elements

    def _fresh_witness(self, sort: Sort) -> Var:
        if self.fresh_names is not None:
            return self.fresh_names.fresh_var("wit", sort)
        self._witness_count += 1
        return Var(f"{WITNESS_PREFIX}{self._witness_count}", sort)

    # -- rewriting ----------------------------------------------------------

    def _rewrite(self, formula: Formula) -> Formula:
        if isinstance(formula, Binary):
            op = formula.op
            if op in (BinaryOp.AND, BinaryOp.OR, BinaryOp.IMPLIES, BinaryOp.IFF):
                return Binary(op, self._rewrite(formula.lhs), self._rewrite(formula.rhs))
            if op is BinaryOp.MEMBER:
                return self._membership(formula.lhs, formula.rhs)
            if op is BinaryOp.SUBSET:
                return self._subset(formula.lhs, formula.rhs, positive=True)
            if op in (BinaryOp.EQ, BinaryOp.NEQ) and isinstance(formula.lhs.sort, SetSort):
                positive = op is BinaryOp.EQ
                if positive:
                    return self._set_equality(formula.lhs, formula.rhs, positive=True)
                return self._set_equality(formula.lhs, formula.rhs, positive=False)
            return formula
        if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
            inner = formula.arg
            if isinstance(inner, Binary):
                if inner.op is BinaryOp.MEMBER:
                    return ops.not_(self._membership(inner.lhs, inner.rhs))
                if inner.op is BinaryOp.SUBSET:
                    return self._subset(inner.lhs, inner.rhs, positive=False)
                if inner.op is BinaryOp.EQ and isinstance(inner.lhs.sort, SetSort):
                    return self._set_equality(inner.lhs, inner.rhs, positive=False)
                if inner.op is BinaryOp.NEQ and isinstance(inner.lhs.sort, SetSort):
                    return self._set_equality(inner.lhs, inner.rhs, positive=True)
            return ops.not_(self._rewrite(inner))
        if isinstance(formula, Ite):
            return Ite(
                self._rewrite(formula.cond),
                self._rewrite(formula.then_),
                self._rewrite(formula.else_),
            )
        return formula

    # -- atom encodings -----------------------------------------------------

    def _membership(self, element: Formula, set_term: Formula) -> Formula:
        """``element in set_term`` expanded structurally."""
        if isinstance(set_term, SetLit):
            return ops.disj(ops.eq(element, member) for member in set_term.elements)
        if isinstance(set_term, Binary):
            if set_term.op is BinaryOp.UNION:
                return ops.or_(
                    self._membership(element, set_term.lhs),
                    self._membership(element, set_term.rhs),
                )
            if set_term.op is BinaryOp.INTERSECT:
                return ops.and_(
                    self._membership(element, set_term.lhs),
                    self._membership(element, set_term.rhs),
                )
            if set_term.op is BinaryOp.DIFF:
                return ops.and_(
                    self._membership(element, set_term.lhs),
                    ops.not_(self._membership(element, set_term.rhs)),
                )
        if isinstance(set_term, Ite):
            return ops.ite(
                self._rewrite(set_term.cond),
                self._membership(element, set_term.then_),
                self._membership(element, set_term.else_),
            )
        # Uninterpreted set term (variable or measure application).
        from ..logic.sorts import BOOL

        return App(MEMBERSHIP_FUNC, (element, set_term), BOOL)

    def _element_sort(self, set_term: Formula) -> Sort:
        sort = set_term.sort
        if isinstance(sort, SetSort):
            return sort.element
        raise TypeError(f"not a set-sorted term: {set_term!r}")

    def _set_equality(self, lhs: Formula, rhs: Formula, positive: bool) -> Formula:
        if positive:
            return ops.conj(
                ops.iff(self._membership(e, lhs), self._membership(e, rhs))
                for e in self._universe
            )
        witness = self._fresh_witness(self._element_sort(lhs))
        return ops.not_(ops.iff(self._membership(witness, lhs), self._membership(witness, rhs)))

    def _subset(self, lhs: Formula, rhs: Formula, positive: bool) -> Formula:
        if positive:
            return ops.conj(
                ops.implies(self._membership(e, lhs), self._membership(e, rhs))
                for e in self._universe
            )
        witness = self._fresh_witness(self._element_sort(lhs))
        return ops.and_(self._membership(witness, lhs), ops.not_(self._membership(witness, rhs)))


def eliminate_sets(formula: Formula, fresh_names: Optional[FreshNames] = None) -> Formula:
    """Eliminate set atoms from a formula in negation normal form."""
    return SetEncoder(fresh_names).encode(formula)


def mentions_sets(formula: Formula) -> bool:
    """Does the formula contain any set-sorted subterm or set predicate?"""
    for node in subterms(formula):
        if isinstance(node, SetLit) or isinstance(node.sort, SetSort):
            return True
        if isinstance(node, Binary) and node.op in (BinaryOp.MEMBER, BinaryOp.SUBSET):
            return True
    return False
