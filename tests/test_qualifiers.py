"""Tests for qualifier instantiation and extraction."""

from repro.logic import ops
from repro.logic.formulas import IntLit, value_var
from repro.logic.qualifiers import (
    default_qualifiers,
    extract_qualifiers,
    instantiate_all,
    instantiate_qualifier,
    make_qualifier,
    placeholder,
)
from repro.logic.sorts import BOOL, INT

x = ops.var("x", INT)
y = ops.var("y", INT)
z = ops.var("z", INT)


def le_qualifier():
    return make_qualifier(ops.le(placeholder(0, INT), placeholder(1, INT)))


class TestInstantiation:
    def test_no_reflexive_instantiations(self):
        instances = list(instantiate_qualifier(le_qualifier(), [x, y]))
        assert ops.le(x, x) not in instances
        assert ops.le(y, y) not in instances
        assert set(instances) == {ops.le(x, y), ops.le(y, x)}

    def test_structurally_equal_candidates_are_duplicates(self):
        # Two distinct-but-equal Var objects must not fill both placeholders.
        x_again = ops.var("x", INT)
        instances = list(instantiate_qualifier(le_qualifier(), [x, x_again]))
        assert instances == []

    def test_ordered_pairs_over_three_candidates(self):
        instances = list(instantiate_qualifier(le_qualifier(), [x, y, z]))
        assert len(instances) == 6  # all ordered pairs of distinct candidates

    def test_sort_filtering(self):
        b = ops.var("b", BOOL)
        instances = list(instantiate_qualifier(le_qualifier(), [x, b, y]))
        assert set(instances) == {ops.le(x, y), ops.le(y, x)}

    def test_literal_candidates(self):
        zero = IntLit(0)
        instances = list(instantiate_qualifier(le_qualifier(), [x, zero]))
        assert set(instances) == {ops.le(x, zero), ops.le(zero, x)}

    def test_instantiate_all_deduplicates(self):
        quals = [le_qualifier(), le_qualifier()]
        instances = instantiate_all(quals, [x, y])
        assert len(instances) == len(set(instances)) == 2

    def test_default_qualifiers_over_value_var(self):
        nu = value_var(INT)
        instances = instantiate_all(default_qualifiers(), [x, y, nu])
        assert ops.le(x, nu) in instances
        assert ops.le(y, nu) in instances
        assert ops.neq(x, y) in instances
        # reflexive pairs were skipped for every qualifier
        assert ops.eq(nu, nu) not in instances


class TestExtraction:
    def test_extracts_comparison_atoms(self):
        nu = value_var(INT)
        quals = extract_qualifiers([ops.and_(ops.ge(nu, x), ops.ge(nu, y))])
        # both atoms abstract to the same qualifier (nu >= ?0)
        assert len(quals) == 1
        assert quals[0].arity() == 1

    def test_extracted_qualifier_reinstantiates(self):
        nu = value_var(INT)
        quals = extract_qualifiers([ops.ge(nu, x)])
        instances = instantiate_all(quals, [y])
        assert instances == [ops.ge(nu, y)]

    def test_literal_only_atoms_are_dropped(self):
        quals = extract_qualifiers([ops.lt(IntLit(0), IntLit(1))])
        assert quals == []
