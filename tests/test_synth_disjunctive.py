"""Disjunctive condition abduction and multi-guard conditional realization.

The candidate-set Horn search can return a surviving-candidate *antichain*
with several incomparable guards; the synthesizer realizes the antichain as
a nested conditional chain (``if g1 ... else if g2 ... else ...``) and
discharges a whole-term coverage obligation before accepting it.  These
tests pin the antichain itself, the realized multi-guard programs, guard
order independence, and serial ≡ portfolio determinism over the whole
``examples/`` corpus.
"""

import random
from pathlib import Path

import pytest

from repro.logic import ops
from repro.logic.formulas import Var, value_var
from repro.logic.qualifiers import default_qualifiers, make_qualifier, placeholder
from repro.logic.sorts import INT
from repro.synth import SynthesisGoal, Synthesizer, abduce_condition
from repro.syntax import IfTerm, parse_program, parse_term, parse_type, pretty_term
from repro.syntax.types import int_type
from repro.typecheck import EMPTY, TypecheckSession

pytestmark = pytest.mark.timeout(120)

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

X = Var("x", INT)
Y = Var("y", INT)
ZERO = ops.int_lit(0)

MAX_GOAL = "{Int | nu >= x && nu >= y && (nu == x || nu == y)}"


def synth_example(filename: str, goal_name: str, depth: int, **kw):
    source = (EXAMPLES / filename).read_text()
    goal = SynthesisGoal.from_program(parse_program(source), goal_name)
    synthesizer = Synthesizer(goal, max_depth=depth, **kw)
    return synthesizer, synthesizer.synthesize()


def eq_session():
    a, b = placeholder(0, INT), placeholder(1, INT)
    return TypecheckSession(qualifiers=[make_qualifier(ops.eq(a, b))], literals=(ZERO,))


class TestAntichain:
    """The abduced condition keeps *all* incomparable surviving guards."""

    def setup_method(self):
        self.session = eq_session()
        self.env = EMPTY.bind("x", int_type()).bind("y", int_type())
        nu = value_var(INT)
        # `0` meets `nu == x || nu == y` under `x == 0` OR under `y == 0` —
        # two guards neither of which implies the other.
        self.goal = int_type(ops.disj([ops.eq(nu, X), ops.eq(nu, Y)]))

    def abduce(self):
        abduced = abduce_condition(self.session, self.env, parse_term("0"), self.goal)
        assert abduced is not None
        return abduced

    def test_both_incomparable_guards_survive(self):
        abduced = self.abduce()
        assert abduced.candidates == ((ops.eq(X, ZERO),), (ops.eq(Y, ZERO),))
        assert abduced.qualifiers == abduced.candidates[0]

    def test_members_are_pairwise_incomparable(self):
        backend = self.session.backend
        context = list(self.env.embedding())
        members = [ops.conj(member) for member in self.abduce().candidates]
        for i, lhs in enumerate(members):
            for rhs in members[i + 1:]:
                assert not backend.is_valid_implication(context + [lhs], rhs)
                assert not backend.is_valid_implication(context + [rhs], lhs)

    def test_every_branch_of_the_chain_is_reachable(self):
        """Realized as a chain, each guard fires somewhere: member k is
        satisfiable under the negations of members 1..k-1, and so is the
        final else branch under all negations."""
        backend = self.session.backend
        context = list(self.env.embedding())
        FALSE = ops.bool_lit(False)
        taken = []
        for member in self.abduce().candidates:
            guard = ops.conj(member)
            assert not backend.is_valid_implication(context + taken + [guard], FALSE)
            taken.append(ops.neg(guard))
        assert not backend.is_valid_implication(context + taken, FALSE)


class TestDisjunctiveSynthesis:
    """sign.sq: the first example that *needs* a two-guard chain."""

    def test_sign_synthesizes_a_nested_conditional(self):
        _, result = synth_example("sign.sq", "sign", 3)
        assert result.solved and result.verified
        body = result.program
        while hasattr(body, "body"):
            body = body.body
        assert isinstance(body, IfTerm)
        assert isinstance(body.else_, IfTerm)
        assert body.cond != body.else_.cond

    def test_sign_recheck_in_fresh_session(self):
        """The coverage obligation is real: the whole chained program
        re-verifies branch by branch in a fresh checker session."""
        _, result = synth_example("sign.sq", "sign", 3)
        goal = result.goal
        session, env = goal.session_environment()
        session.check_program(result.program, goal.goal, env, where="re-check")
        assert session.solve().solved

    def test_single_conditional_budget_cannot_express_sign(self):
        _, result = synth_example("sign.sq", "sign", 3, max_conditionals=1)
        assert not result.solved

    def test_statistics_expose_candidate_search_counters(self):
        _, result = synth_example("sign.sq", "sign", 3)
        stats = result.statistics.as_dict()
        assert stats["candidates_explored"] > 1
        assert stats["muses_enumerated"] > 0
        assert stats["candidates_pruned"] > 0


#: Whole corpus: (file, goal, depth) — kept in sync with scripts/bench_synth.py.
CORPUS = [
    ("max.sq", "max", 3),
    ("replicate.sq", "replicate", 4),
    ("stutter.sq", "stutter", 4),
    ("list.sq", "length", 3),
    ("list.sq", "append", 4),
    ("sign.sq", "sign", 3),
]


class TestPortfolioDeterminism:
    @pytest.mark.parametrize("filename,goal,depth", CORPUS)
    def test_serial_and_portfolio_synthesize_the_same_program(self, filename, goal, depth):
        """`--workers` only parallelizes the Horn candidate walk; the
        program that comes out is byte-identical either way."""
        _, serial = synth_example(filename, goal, depth, workers=1)
        _, portfolio = synth_example(filename, goal, depth, workers=2)
        assert serial.solved and portfolio.solved
        assert pretty_term(serial.program) == pretty_term(portfolio.program)


class TestGuardOrderIndependence:
    def test_weakest_guard_survives_pool_shuffling(self):
        """Regression for the conditions docstring case: abduction for the
        `max` x-branch must pick (something equivalent to) the weakest
        guard `y <= x`, never a stronger incidental solution like
        `x == 0 && y == 0`, no matter how the qualifier pool is ordered."""
        goal = parse_type(MAX_GOAL, scope={"x": INT, "y": INT})
        expected = ops.le(Y, X)
        for seed in range(10):
            pool = list(default_qualifiers())
            random.Random(seed).shuffle(pool)
            session = TypecheckSession(qualifiers=pool, literals=(ZERO,))
            env = EMPTY.bind("x", int_type()).bind("y", int_type())
            abduced = abduce_condition(session, env, parse_term("x"), goal)
            assert abduced is not None and not abduced.is_trivial(), f"seed {seed}"
            got = ops.conj(abduced.qualifiers)
            context = list(env.embedding())
            backend = session.backend
            assert backend.is_valid_implication(context + [got], expected), f"seed {seed}"
            assert backend.is_valid_implication(context + [expected], got), f"seed {seed}"
