"""Typed errors raised by the refinement type checker.

Every error carries enough provenance to name the program location and —
for refinement-level failures — the exact Horn constraint whose
unsolvability refuted the program, so messages read like
``subtyping obligation failed at max / if / then-branch: ... ==> ...``.
"""

from __future__ import annotations

from typing import Optional

from ..horn.constraints import HornConstraint


class TypecheckError(TypeError):
    """Base class of all checker failures."""


class ShapeError(TypecheckError):
    """The simple-type skeletons of two types do not match (e.g. an arrow
    where a scalar is required)."""


class WellFormednessError(TypecheckError):
    """A refinement is ill-sorted or mentions out-of-scope variables."""


class UnsupportedTermError(TypecheckError):
    """A term form whose typing rule is not implemented.

    No current term form triggers this — match and fix elaborated in the
    datatypes PR — but the class stays exported for surface extensions
    (e.g. intersection-typed terms, see ROADMAP) and their callers.
    """


class MatchError(TypecheckError):
    """An ill-formed match: non-datatype scrutinee, unknown constructor,
    wrong binder count, or a non-exhaustive case list."""


class TerminationError(TypecheckError):
    """A ``fix`` whose termination cannot be established: no argument has
    a well-founded metric, or the body does not bind the decreasing
    arguments with lambdas."""


class SubtypingError(TypecheckError):
    """A subtyping obligation is invalid under *every* valuation of the
    predicate unknowns — the Horn solver refuted the program.

    ``constraint`` is the failing definite constraint; its provenance names
    the subtyping obligation that produced it.
    """

    def __init__(self, message: str, constraint: Optional[HornConstraint] = None) -> None:
        super().__init__(message)
        self.constraint = constraint
