"""Horn constraints over predicate unknowns (Sec. 5 of the paper).

A Horn constraint is an implication ``p1 && ... && pk ==> c`` whose premises
may mention predicate unknowns anywhere and whose conclusion is either a
single predicate unknown (a *weakening* constraint — solving it may shrink
the unknown's valuation) or an unknown-free formula (a *definite*
constraint — it can only be checked, never repaired by weakening, because
weakening the premises proves less).

The type checker emits such constraints while walking the program (liquid
type inference reduces subtyping between refinement types to exactly this
shape); the Horn solver finds valuations for the unknowns that make every
constraint valid.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Mapping, Optional, Tuple

from ..logic.formulas import Formula, Unknown
from ..logic.substitution import substitute
from ..logic.transform import transform
from ..logic.transform import unknowns as formula_unknowns


@dataclass(frozen=True)
class HornConstraint:
    """``premises ==> conclusion`` with unknowns on either side.

    ``provenance`` is the structured diagnostics trail the type checker
    emits: the judgments (program location, branch, subtyping obligation)
    that produced the constraint, outermost first, so an unsolvable system
    can name the failing obligation precisely.  :meth:`origin` is the
    single diagnostics entry point; the free-form ``label`` string that
    used to sit next to the trail is folded into it (a bare tag becomes a
    one-element trail) and survives only as a deprecated alias property.
    """

    premises: Tuple[Formula, ...]
    conclusion: Formula
    provenance: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.conclusion, Unknown) and formula_unknowns(self.conclusion):
            raise ValueError(
                "conclusion must be a single predicate unknown or unknown-free, "
                f"got: {self.conclusion!r}"
            )

    # -- structure -----------------------------------------------------------

    def conclusion_unknown(self) -> Optional[Unknown]:
        """The conclusion's predicate unknown, if this is a weakening
        constraint."""
        return self.conclusion if isinstance(self.conclusion, Unknown) else None

    def is_definite(self) -> bool:
        """Is the conclusion unknown-free?"""
        return not isinstance(self.conclusion, Unknown)

    def premise_unknowns(self) -> FrozenSet[str]:
        """Names of unknowns occurring in the premises.

        Memoized: the candidate search's pruning sweep calls this once per
        (queued candidate, known MUS) pair, and the premise walk over big
        environment embeddings would dominate the whole search otherwise.
        """
        cached = self.__dict__.get("_premise_unknowns")
        if cached is None:
            names = set()
            for premise in self.premises:
                names |= formula_unknowns(premise)
            cached = frozenset(names)
            object.__setattr__(self, "_premise_unknowns", cached)
        return cached

    def unknowns(self) -> FrozenSet[str]:
        """Names of all unknowns occurring in the constraint."""
        names = set(self.premise_unknowns())
        names |= formula_unknowns(self.conclusion)
        return frozenset(names)

    def concrete_premises(self) -> Tuple[Formula, ...]:
        """The unknown-free premises — the hard facts that hold regardless
        of any valuation.  MUS enumeration checks tentative valuations of
        premise-position unknowns for consistency against exactly these.
        Memoized like :meth:`premise_unknowns`."""
        cached = self.__dict__.get("_concrete_premises")
        if cached is None:
            cached = tuple(p for p in self.premises if not formula_unknowns(p))
            object.__setattr__(self, "_concrete_premises", cached)
        return cached

    # -- diagnostics ---------------------------------------------------------

    def origin(self) -> str:
        """Where this constraint came from, for error messages: the joined
        provenance trail, or a placeholder when there is none."""
        if self.provenance:
            return " / ".join(self.provenance)
        return "<unlabeled constraint>"

    @property
    def label(self) -> str:
        """Deprecated alias for the innermost provenance entry.

        The free-form label field was folded into ``provenance``; use
        :meth:`origin` for diagnostics.
        """
        warnings.warn(
            "HornConstraint.label is deprecated; use origin() (the label was "
            "folded into the provenance trail)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.provenance[-1] if self.provenance else ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lhs = " && ".join(repr(p) for p in self.premises) or "True"
        tag = f"  [{self.origin()}]" if self.provenance else ""
        return f"{lhs} ==> {self.conclusion!r}{tag}"


def constraint(
    premises: Iterable[Formula],
    conclusion: Formula,
    label: str = "",
    provenance: Tuple[str, ...] = (),
) -> HornConstraint:
    """Convenience constructor accepting any iterable of premises.

    ``label`` is a provenance shorthand: a bare tag is appended to the
    trail, so ``constraint(ps, c, "spec")`` means
    ``HornConstraint(ps, c, provenance=("spec",))``.
    """
    trail = provenance + (label,) if label else provenance
    return HornConstraint(tuple(premises), conclusion, trail)


def substitute_unknowns(
    constr: HornConstraint, valuations: Mapping[str, Formula]
) -> HornConstraint:
    """``constr`` with the named unknowns replaced by concrete formulas.

    Each occurrence's pending substitution is applied to the replacement,
    so ``P[x := e]`` grounds to the valuation with ``e`` in place of ``x``.
    Unknowns not named in ``valuations`` are left untouched.  The candidate
    search uses this to fix a candidate's abducible valuations before
    running the greatest-fixpoint core; condition abduction uses it to try
    a tentative guard.
    """

    def ground(formula: Formula) -> Formula:
        def replace(node: Formula) -> Formula:
            if isinstance(node, Unknown) and node.name in valuations:
                body = valuations[node.name]
                if node.substitution:
                    body = substitute(body, dict(node.substitution))
                return body
            return node

        return transform(formula, replace)

    conclusion = constr.conclusion
    if isinstance(conclusion, Unknown) and conclusion.name in valuations:
        conclusion = ground(conclusion)
    return HornConstraint(
        tuple(ground(premise) for premise in constr.premises),
        conclusion,
        constr.provenance,
    )
