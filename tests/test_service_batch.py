"""Batch screening: determinism, cache reuse, and the CLI surface.

The load-bearing property is the cold/warm differential: a sweep served
entirely from the cache must produce exactly the payloads the cold sweep
computed — and a ``--no-cache`` CLI run must print byte-for-byte what a
cached run prints.
"""

import io
from pathlib import Path

from repro.cli import EXIT_FAILURE, EXIT_OK, main
from repro.service.batch import discover_files, run_batch
from repro.service.cache import open_cache

MAX_SQ = """\
leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}

max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}
max = ??
"""

CHECK_SQ = """\
inc :: a:Int -> {Int | nu == a + 1}

plus2 :: a:Int -> {Int | nu == a + 2}
plus2 = \\a . inc (inc a)
"""

BAD_CHECK_SQ = CHECK_SQ.replace("inc (inc a)", "inc a")


def corpus(tmp_path, bad=False):
    root = tmp_path / "corpus"
    (root / "sub").mkdir(parents=True)
    (root / "max.sq").write_text(MAX_SQ)
    (root / "sub" / "plus2.sq").write_text(BAD_CHECK_SQ if bad else CHECK_SQ)
    return root


def payloads(report):
    """The deterministic slice of a batch report (no timings, no
    cached/fresh markers)."""
    return [
        {key: record.get(key) for key in ("file", "failures", "check", "synth", "error")}
        for record in report["files"]
    ]


class TestRunBatch:
    def test_discovery_is_recursive_and_sorted(self, tmp_path):
        root = corpus(tmp_path)
        assert [p.name for p in discover_files(str(root))] == ["max.sq", "plus2.sq"]

    def test_cold_then_warm_is_deterministic(self, tmp_path):
        root = corpus(tmp_path)
        cache, store = open_cache(str(tmp_path / "cache"))
        cold = run_batch(str(root), cache=cache, lemma_store=store)
        assert cold["failures"] == 0
        assert cold["cached"] == 0 and cold["queries"] == 2
        warm_cache, warm_store = open_cache(str(tmp_path / "cache"))
        warm = run_batch(str(root), jobs=2, cache=warm_cache, lemma_store=warm_store)
        assert warm["cached"] == warm["queries"] == 2, "warm sweep must hit on every file"
        assert warm["cache"]["hits"] == 2
        assert payloads(warm) == payloads(cold)

    def test_parse_error_counts_but_does_not_abort(self, tmp_path):
        root = corpus(tmp_path)
        (root / "broken.sq").write_text("max :: Int ->")
        report = run_batch(str(root))
        assert report["failures"] == 1
        assert len(report["files"]) == 3
        broken = next(r for r in report["files"] if "broken" in r["file"])
        assert "error" in broken

    def test_rejected_definition_counts_as_failure(self, tmp_path):
        report = run_batch(str(corpus(tmp_path, bad=True)))
        assert report["failures"] == 1

    def test_without_cache_reports_disabled(self, tmp_path):
        report = run_batch(str(corpus(tmp_path)))
        assert report["cache"] is None
        assert report["cached"] == 0


class TestBatchCli:
    def run(self, argv):
        out = io.StringIO()
        return main(argv, out=out), out.getvalue()

    def test_batch_summary_and_exit(self, tmp_path):
        root = corpus(tmp_path)
        code, output = self.run(
            ["batch", str(root), "--jobs", "2", "--cache-dir", str(tmp_path / "c")]
        )
        assert code == EXIT_OK
        assert "max.sq: synth ok [solver]" in output
        assert "plus2.sq: check ok [solver]" in output
        assert "batch: 2 files, 0 failures, cache: 0 hits / 2 misses" in output
        code, output = self.run(["batch", str(root), "--cache-dir", str(tmp_path / "c")])
        assert code == EXIT_OK
        assert "[cache]" in output
        assert "cache: 2 hits / 0 misses" in output

    def test_batch_failure_exits_nonzero(self, tmp_path):
        code, output = self.run(["batch", str(corpus(tmp_path, bad=True)), "--no-cache"])
        assert code == EXIT_FAILURE
        assert "check FAILED" in output
        assert "cache: disabled" in output


class TestNoCacheDifferential:
    def test_synth_output_is_byte_identical_with_and_without_cache(self, tmp_path):
        """The acceptance differential: a fresh run, a cache-writing run,
        a cache-hitting run, and a --no-cache run all print the same
        bytes."""
        source = tmp_path / "max.sq"
        source.write_text(MAX_SQ)
        cache_dir = str(tmp_path / "cache")
        runs = [
            ["synth", str(source), "--no-cache"],
            ["synth", str(source), "--cache-dir", cache_dir],  # cold: writes
            ["synth", str(source), "--cache-dir", cache_dir],  # warm: hits
            ["synth", str(source), "--no-cache"],
        ]
        outputs = []
        for argv in runs:
            out = io.StringIO()
            assert main(argv, out=out) == EXIT_OK
            outputs.append(out.getvalue())
        assert len(set(outputs)) == 1, "cache must never change what is printed"
        # The warm run really did hit: its cache directory has the entry.
        assert list(Path(cache_dir).glob("objects/*/*.json"))

    def test_check_output_is_byte_identical_with_and_without_cache(self, tmp_path):
        source = tmp_path / "plus2.sq"
        source.write_text(CHECK_SQ)
        cache_dir = str(tmp_path / "cache")
        outputs = []
        for argv in (
            ["check", str(source), "--no-cache"],
            ["check", str(source), "--cache-dir", cache_dir],
            ["check", str(source), "--cache-dir", cache_dir],
        ):
            out = io.StringIO()
            assert main(argv, out=out) == EXIT_OK
            outputs.append(out.getvalue())
        assert len(set(outputs)) == 1
