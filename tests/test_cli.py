"""The CLI driver and the ``.sq`` program format.

Negative paths matter as much as the happy ones here: an unknown
subcommand, an unreadable or unparsable file, and an unsynthesizable goal
must all exit non-zero with a message a user can act on.
"""

import io
from pathlib import Path

import pytest

from repro.cli import EXIT_FAILURE, EXIT_OK, EXIT_USAGE, main
from repro.syntax import ParseError, parse_program

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

MAX_SQ = """\
leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}

max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}
max = ??
"""

CHECK_SQ = """\
inc :: a:Int -> {Int | nu == a + 1}

plus2 :: a:Int -> {Int | nu == a + 2}
plus2 = \\a . inc (inc a)
"""

BAD_CHECK_SQ = """\
inc :: a:Int -> {Int | nu == a + 1}

plus2 :: a:Int -> {Int | nu == a + 2}
plus2 = \\a . inc a
"""


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestUsageErrors:
    def test_unknown_subcommand_exits_nonzero(self, capsys):
        code, _ = run(["frobnicate", "x.sq"])
        assert code == EXIT_USAGE
        assert "invalid choice" in capsys.readouterr().err

    def test_no_subcommand_exits_nonzero(self, capsys):
        code, _ = run([])
        assert code == EXIT_USAGE
        assert "expected a subcommand" in capsys.readouterr().err

    def test_missing_file_exits_nonzero(self, capsys):
        code, _ = run(["check", "does-not-exist.sq"])
        assert code == EXIT_USAGE
        assert "cannot read" in capsys.readouterr().err

    def test_unparsable_file_exits_nonzero(self, tmp_path, capsys):
        source = tmp_path / "broken.sq"
        source.write_text("max :: Int ->")
        code, _ = run(["check", str(source)])
        assert code == EXIT_USAGE
        assert "parse error" in capsys.readouterr().err

    def test_help_exits_zero(self):
        code, _ = run(["--help"])
        assert code == EXIT_OK

    def test_version_exits_zero_and_reports_package_version(self, capsys):
        from repro.version import package_version

        code, _ = run(["--version"])
        assert code == EXIT_OK
        assert package_version() in capsys.readouterr().out


class TestCheck:
    def test_accepted_definition(self, tmp_path):
        source = tmp_path / "ok.sq"
        source.write_text(CHECK_SQ)
        code, output = run(["check", str(source)])
        assert code == EXIT_OK
        assert "plus2: OK" in output

    def test_rejected_definition_exits_nonzero(self, tmp_path):
        source = tmp_path / "bad.sq"
        source.write_text(BAD_CHECK_SQ)
        code, output = run(["check", str(source)])
        assert code == EXIT_FAILURE
        assert "plus2: REJECTED" in output

    def test_goals_only_file_is_valid_input(self, tmp_path):
        """A file of signatures and goals has nothing to check, but it is
        not an error — exit 1 is reserved for refutations."""
        source = tmp_path / "goal.sq"
        source.write_text(MAX_SQ)
        code, output = run(["check", str(source)])
        assert code == EXIT_OK
        assert "skipped (synthesis goal" in output
        assert "no definitions to check" in output

    def test_example_file_checks(self):
        code, output = run(["check", str(EXAMPLES / "list.sq")])
        assert code == EXIT_OK
        assert "stutter: OK" in output


class TestSynth:
    def test_max_synthesizes_with_statistics(self, tmp_path):
        source = tmp_path / "max.sq"
        source.write_text(MAX_SQ)
        code, output = run(["synth", str(source)])
        assert code == EXIT_OK
        assert "max = \\x . \\y . if leq" in output
        assert "pruned early" in output
        assert "verified: yes" in output

    def test_quiet_suppresses_statistics(self, tmp_path):
        source = tmp_path / "max.sq"
        source.write_text(MAX_SQ)
        code, output = run(["synth", "--quiet", str(source)])
        assert code == EXIT_OK
        assert "pruned early" not in output

    def test_unsynthesizable_goal_exits_nonzero(self, tmp_path):
        source = tmp_path / "impossible.sq"
        source.write_text("impossible :: x:Int -> {Int | nu > x && nu < x}\nimpossible = ??\n")
        code, output = run(["synth", str(source)])
        assert code == EXIT_FAILURE
        assert "no program found within depth" in output

    def test_depth_bound_exhaustion_is_reported(self, tmp_path):
        """A too-small depth bound terminates with the exhaustion message
        (and a non-zero exit), rather than hanging or crashing."""
        source = tmp_path / "stutter.sq"
        source.write_text((EXAMPLES / "stutter.sq").read_text())
        code, output = run(["synth", "--depth", "2", str(source)])
        assert code == EXIT_FAILURE
        assert "no program found within depth 2" in output
        assert "candidates generated" in output

    def test_file_without_goals_exits_nonzero(self, tmp_path):
        source = tmp_path / "nogoals.sq"
        source.write_text(CHECK_SQ)
        code, output = run(["synth", str(source)])
        assert code == EXIT_FAILURE
        assert "no synthesis goals" in output

    def test_goal_may_precede_its_components(self, tmp_path):
        """The CLI uses the same component pool as the scriptable API:
        every *other* signature in the file, regardless of order."""
        source = tmp_path / "reordered.sq"
        source.write_text(
            "max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}\n"
            "max = ??\n\n"
            "leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}\n"
        )
        code, output = run(["synth", str(source)])
        assert code == EXIT_OK
        assert "verified: yes" in output

    def test_only_unknown_goal_is_a_usage_error(self, tmp_path, capsys):
        source = tmp_path / "max.sq"
        source.write_text(MAX_SQ)
        code, _ = run(["synth", "--only", "nonesuch", str(source)])
        assert code == EXIT_USAGE
        assert "no signature" in capsys.readouterr().err


class TestProgramFormat:
    def test_goals_definitions_and_comments(self):
        program = parse_program(MAX_SQ + "\n-- trailing comment\n")
        assert program.goals == ("max",)
        assert "leq" in program.signatures and "max" in program.signatures
        assert program.definitions == {}

    def test_definition_bodies_may_contain_let_and_ascriptions(self):
        """`=` in a let and `::` in an ascription must not start a new
        declaration chunk (declarations are anchored to column 0)."""
        source = "f :: a:Int -> Int\nf = \\a . let b = (0 :: {Int | nu == 0}) in a\n"
        program = parse_program(source)
        assert "f" in program.definitions

    def test_goal_without_signature_is_rejected(self):
        with pytest.raises(ParseError, match="no .* signature"):
            parse_program("mystery = ??\n")

    def test_definition_without_signature_is_rejected(self):
        with pytest.raises(ParseError, match="no .* signature"):
            parse_program("f = \\a . a\n")

    def test_duplicate_signature_is_rejected(self):
        with pytest.raises(ParseError, match="duplicate signature"):
            parse_program("f :: Int -> Int\nf :: Int -> Int\n")

    def test_duplicate_definition_is_rejected(self):
        with pytest.raises(ParseError, match="duplicate definition"):
            parse_program("f :: a:Int -> Int\nf = \\a . a\nf = ??\n")

    def test_empty_program_is_rejected(self):
        with pytest.raises(ParseError, match="empty program"):
            parse_program("  \n-- nothing here\n")

    def test_declarations_resolve_mutually(self):
        program = parse_program((EXAMPLES / "replicate.sq").read_text())
        assert set(program.datatypes) == {"List"}
        assert set(program.measures) == {"len"}
        assert program.goals == ("replicate",)


class TestWorkersFlag:
    def test_check_accepts_workers(self, tmp_path):
        source = tmp_path / "ok.sq"
        source.write_text(CHECK_SQ)
        code, output = run(["check", str(source), "--workers", "2"])
        assert code == EXIT_OK
        assert "plus2: OK" in output

    def test_workers_do_not_change_a_rejection(self, tmp_path):
        source = tmp_path / "bad.sq"
        source.write_text(BAD_CHECK_SQ)
        serial_code, serial_out = run(["check", str(source)])
        parallel_code, parallel_out = run(["check", str(source), "--workers", "2"])
        assert serial_code == parallel_code == EXIT_FAILURE
        assert serial_out == parallel_out

    def test_workers_listed_in_check_help(self, capsys):
        code, _ = run(["check", "--help"])
        assert code == EXIT_OK
        assert "--workers" in capsys.readouterr().out


class TestCacheFlags:
    def test_every_verb_takes_cache_flags(self, capsys):
        for verb in ("check", "synth", "batch", "serve"):
            code, _ = run([verb, "--help"])
            assert code == EXIT_OK
            text = capsys.readouterr().out
            assert "--cache-dir" in text and "--no-cache" in text

    def test_one_shot_verbs_stay_stateless_by_default(self, tmp_path, monkeypatch):
        """Without --cache-dir (or REPRO_CACHE_DIR) a plain check writes
        no cache directory anywhere."""
        monkeypatch.chdir(tmp_path)
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        source = tmp_path / "ok.sq"
        source.write_text(CHECK_SQ)
        code, _ = run(["check", str(source)])
        assert code == EXIT_OK
        assert not (tmp_path / ".repro-cache").exists()

    def test_env_var_opts_one_shot_verbs_in(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        source = tmp_path / "ok.sq"
        source.write_text(CHECK_SQ)
        code, _ = run(["check", str(source)])
        assert code == EXIT_OK
        assert list((tmp_path / "envcache").glob("objects/*/*.json"))
