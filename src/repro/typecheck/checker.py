"""The bidirectional refinement type checker.

Implements the type system of Polikarpova, Kuraj & Solar-Lezama,
*Program Synthesis from Polymorphic Refinement Types* (PLDI 2016):
the round-trip-friendly bidirectional judgments of Sec. 3 (inference for
E-terms, checking for I-terms), selfification and contextual types of
Secs. 3.2–3.3, the liquid abstraction of Sec. 3.6 (via
:class:`~repro.typecheck.session.TypecheckSession`), match elaboration
with constructor selfification and measure unfolding (Sec. 3.2),
terminating ``fix`` (Sec. 3), and the application-site type-variable
unification that keeps polymorphic components first-order-instantiable.
The synthesizer (:mod:`repro.synth`, Sec. 4) re-enters this module
through :func:`elaborate_match_case` and :func:`recursion_signature`.

Typing is split into two mutually recursive judgments:

* :func:`infer` — elimination terms (variables, constants, applications,
  ascriptions) *produce* a type.  Variable lookups are selfified
  (``x : {B | psi && nu == x}``) so dependent application can talk about
  the argument precisely; applications substitute the argument into the
  callee's result type, or produce a :class:`ContextualType` binding a
  fresh name when the argument is not representable as a refinement term.

* :func:`check` — introduction terms (lambdas, conditionals, lets) are
  checked *against* a goal type.  Conditionals check each branch under the
  guard extracted from the scrutinee's refinement; the catch-all case
  infers a type and delegates to :func:`subtype`.

:func:`subtype` reduces ``Γ ⊢ T1 <: T2`` to Horn constraints: for scalars
it emits ``⟦Γ⟧ && [nu-normalized] psi1 ==> psi2`` (split into one
constraint per conjunct of ``psi2``, so conclusions are either a lone
predicate unknown or unknown-free, as the Horn solver requires); for
arrows it recurses contravariantly on arguments and covariantly on
results.  Every emitted constraint carries the provenance trail of the
obligation that produced it, so an unsolvable system names the program
location at fault.

``match`` elaboration (Sec. 3.2): the scrutinee must be a declared
datatype; each case binds the constructor's arguments at its instantiated
signature and checks the body under *constructor selfification* — the
constructor's result refinement with ``nu`` replaced by the scrutinee —
conjoined with the catamorphism unfolding of every measure on the
datatype (``len(xs) == 1 + len(ys)`` in the ``Cons`` case).  Matches must
be exhaustive.

``fix`` (Sec. 3): the recursive occurrence is bound at the goal signature
*strengthened with a termination metric*: every argument that has a
well-founded metric (``nu`` for Int, the first Int-resulted measure for a
datatype) is refined so the tuple of metrics decreases lexicographically
and stays non-negative at every recursive call.

At application sites, a polymorphic component's type variables are
unified against the shape of the actual argument
(:func:`_instantiate_at_application`), so ``Cons 3 xs`` elaborates at
``a := Int`` instead of leaving ``a`` free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from ..logic import ops
from ..logic.formulas import FALSE, TRUE, Formula, Var, value_var
from ..logic.simplify import simplify
from ..logic.sortcheck import SortError, check_refinement
from ..logic.sorts import BOOL, INT, VarSort
from ..logic.substitution import instantiate_value_var, substitute
from ..syntax.terms import (
    Annot,
    AppTerm,
    BoolConst,
    FixTerm,
    IfTerm,
    IntConst,
    LambdaTerm,
    LetTerm,
    MatchCase,
    MatchTerm,
    Term,
    VarTerm,
)
from ..syntax.types import (
    BOOL_BASE,
    INT_BASE,
    ContextualType,
    DataBase,
    FunctionType,
    IntBase,
    RType,
    ScalarType,
    TypeSchema,
    TypeVarBase,
    same_shape,
    shape,
    substitute_in_type,
    type_free_vars,
)
from .environment import Environment
from .errors import (
    MatchError,
    ShapeError,
    TerminationError,
    TypecheckError,
    WellFormednessError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..syntax.datatypes import Datatype
    from .session import TypecheckSession

Provenance = Tuple[str, ...]


# ---------------------------------------------------------------------------
# well-formedness
# ---------------------------------------------------------------------------


def well_formed(session: "TypecheckSession", env: Environment, rtype: RType) -> None:
    """Demand every refinement in ``rtype`` is a boolean formula over the
    variables in scope, raising :class:`WellFormednessError` otherwise."""
    scope = env.sort_scope()

    def walk(node: RType, local: dict) -> None:
        if isinstance(node, ScalarType):
            refinement_scope = dict(local)
            refinement_scope[value_var(node.sort).name] = node.sort
            try:
                check_refinement(node.refinement, refinement_scope, session.measures)
            except SortError as error:
                raise WellFormednessError(
                    f"ill-formed refinement in {node!r}: {error}"
                ) from error
            return
        if isinstance(node, FunctionType):
            walk(node.arg_type, local)
            inner = dict(local)
            if isinstance(node.arg_type, ScalarType):
                inner[node.arg_name] = node.arg_type.sort
            walk(node.result_type, inner)
            return
        if isinstance(node, ContextualType):
            inner = dict(local)
            for name, bound in node.bindings:
                walk(bound, inner)
                if isinstance(bound, ScalarType):
                    inner[name] = bound.sort
            walk(node.body, inner)
            return
        raise WellFormednessError(f"unknown type node: {node!r}")

    walk(rtype, scope)


# ---------------------------------------------------------------------------
# inference (elimination terms)
# ---------------------------------------------------------------------------


def infer(
    session: "TypecheckSession",
    env: Environment,
    term: Term,
    where: Provenance = (),
) -> RType:
    """Infer the type of an elimination term."""
    if isinstance(term, VarTerm):
        return _infer_var(session, env, term, where)
    if isinstance(term, IntConst):
        return ScalarType(INT_BASE, ops.eq(value_var(INT), ops.int_lit(term.value)))
    if isinstance(term, BoolConst):
        return ScalarType(BOOL_BASE, ops.iff(value_var(BOOL), ops.bool_lit(term.value)))
    if isinstance(term, AppTerm):
        return _infer_app(session, env, term, where)
    if isinstance(term, Annot):
        well_formed(session, env, term.rtype)
        check(session, env, term.term, term.rtype, where + ("ascription",))
        return term.rtype
    raise TypecheckError(
        f"cannot infer a type for the introduction term `{term!r}` "
        f"at {_pretty_where(where)}; check it against a goal type instead"
    )


def _infer_var(
    session: "TypecheckSession", env: Environment, term: VarTerm, where: Provenance
) -> RType:
    bound = env.lookup(term.name)
    if bound is None:
        raise TypecheckError(f"unbound variable `{term.name}` at {_pretty_where(where)}")
    if isinstance(bound, TypeSchema):
        bound = session.instantiate(bound, env)
    if isinstance(bound, ScalarType):
        # Selfification: x : {B | psi && nu == x} (Sec. 3.3) — the precise
        # singleton type dependent application relies on.
        nu = value_var(bound.sort)
        return ScalarType(
            bound.base,
            ops.and_(bound.refinement, ops.eq(nu, Var(term.name, bound.sort))),
        )
    return bound


def _infer_app(
    session: "TypecheckSession",
    env: Environment,
    term: AppTerm,
    where: Provenance,
    trailing: Tuple[Term, ...] = (),
) -> RType:
    fun_type = _infer_fun_type(session, env, term, where, trailing)
    context: Tuple[Tuple[str, RType], ...] = ()
    if isinstance(fun_type, ContextualType):
        context = fun_type.bindings
        fun_type = fun_type.body
    if not isinstance(fun_type, FunctionType):
        raise ShapeError(
            f"`{term.fun!r}` of type `{fun_type!r}` is applied but is not a "
            f"function, at {_pretty_where(where)}"
        )
    inner_env = env.bind_all(context)
    argument = _as_refinement_term(inner_env, term.arg)
    if argument is not None:
        check(session, inner_env, term.arg, fun_type.arg_type, where + ("argument",))
        result = substitute_in_type(fun_type.result_type, {fun_type.arg_name: argument})
        return ContextualType(context, result) if context else result

    dependent = fun_type.arg_name in type_free_vars(fun_type.result_type)
    if not term.arg.is_e_term():
        # Introduction terms (lambdas, conditionals) have no inferred type:
        # check them directly.  They cannot occur in refinements, so a
        # dependent position cannot be satisfied by one.
        check(session, inner_env, term.arg, fun_type.arg_type, where + ("argument",))
        if dependent:
            raise ShapeError(
                f"argument `{term.arg!r}` of a dependent application must be "
                f"scalar-typed, at {_pretty_where(where)}"
            )
        result = fun_type.result_type
        return ContextualType(context, result) if context else result

    # E-term argument without a refinement-term translation: infer its type
    # once (a check would walk the argument a second time) and, when the
    # result type needs the value, name it with a fresh contextual binding
    # (Sec. 3.2) and substitute the name instead.
    arg_type = infer(session, inner_env, term.arg, where + ("argument",))
    if isinstance(arg_type, ContextualType):
        context = context + arg_type.bindings
        inner_env = env.bind_all(context)
        arg_type = arg_type.body
    subtype(session, inner_env, arg_type, fun_type.arg_type, where + ("argument",))
    if not dependent:
        result = fun_type.result_type
        return ContextualType(context, result) if context else result
    if not isinstance(arg_type, ScalarType):
        raise ShapeError(
            f"argument `{term.arg!r}` of a dependent application must be "
            f"scalar-typed, got `{arg_type!r}`, at {_pretty_where(where)}"
        )
    fresh = session.fresh_name("ctx")
    context = context + ((fresh, arg_type),)
    result = substitute_in_type(
        fun_type.result_type, {fun_type.arg_name: Var(fresh, arg_type.sort)}
    )
    return ContextualType(context, result)


def _infer_fun_type(
    session: "TypecheckSession",
    env: Environment,
    term: AppTerm,
    where: Provenance,
    trailing: Tuple[Term, ...],
) -> RType:
    """The applied function's type — with type variables unified against the
    arguments when the function is a polymorphic component.

    ``trailing`` carries the arguments of the *enclosing* applications of a
    curried spine, so the innermost application (where the polymorphic head
    sits) sees every argument: ``Cons (dec n) xs`` instantiates the element
    variable from ``xs`` even though the first argument's shape is unknown.
    """
    spine_args = (term.arg,) + trailing
    if isinstance(term.fun, VarTerm):
        bound = env.lookup(term.fun.name)
        if isinstance(bound, TypeSchema) and bound.type_vars:
            return _instantiate_at_application(session, env, bound, spine_args)
    if isinstance(term.fun, AppTerm):
        return _infer_app(session, env, term.fun, where + ("function",), spine_args)
    return infer(session, env, term.fun, where + ("function",))


def _instantiate_at_application(
    session: "TypecheckSession",
    env: Environment,
    schema: TypeSchema,
    args: Tuple[Term, ...],
) -> RType:
    """Instantiate a polymorphic schema at an application site by unifying
    each curried parameter's shape against the corresponding argument's
    (Sec. 3.3: type variables are resolved structurally; refinements are
    erased so the instantiation never narrows the component's domain).
    Variables no argument determines stay free — a later application or the
    permissive sort compatibility of subtyping resolves them.
    """
    type_args: dict = {}
    type_vars = frozenset(schema.type_vars)
    node = schema.body
    for arg in args:
        if not isinstance(node, FunctionType):
            break
        arg_shape = _term_shape(env, arg)
        if arg_shape is not None:
            _unify_shape(node.arg_type, arg_shape, type_vars, type_args)
        node = node.result_type
    return session.instantiate(schema, env, type_args=type_args)


def _term_shape(env: Environment, term: Term) -> Optional[RType]:
    """The simple-type skeleton of an E-term, when it is known without a
    full inference walk."""
    if isinstance(term, VarTerm):
        bound = env.lookup(term.name)
        if isinstance(bound, TypeSchema):
            return None if bound.type_vars else shape(bound.body)
        return None if bound is None else shape(bound)
    if isinstance(term, IntConst):
        return ScalarType(INT_BASE)
    if isinstance(term, BoolConst):
        return ScalarType(BOOL_BASE)
    if isinstance(term, Annot):
        return shape(term.rtype)
    if isinstance(term, AppTerm):
        # The result shape of an application: peel one arrow off the head's
        # shape per argument.  Polymorphic heads yield None (their result
        # shape depends on the instantiation being computed).
        head: Term = term
        arity = 0
        while isinstance(head, AppTerm):
            head = head.fun
            arity += 1
        node = _term_shape(env, head)
        for _ in range(arity):
            if not isinstance(node, FunctionType):
                return None
            node = node.result_type
        return node
    return None


def _unify_shape(param: RType, arg: RType, type_vars: "frozenset", out: dict) -> None:
    """Match ``param`` against ``arg`` structurally, binding the schema's
    type variables to the argument's (refinement-erased) subtypes."""
    if isinstance(param, ContextualType):
        param = param.body
    if isinstance(arg, ContextualType):
        arg = arg.body
    if isinstance(param, ScalarType) and isinstance(param.base, TypeVarBase):
        name = param.base.name
        if name in type_vars and name not in out and isinstance(arg, ScalarType):
            out[name] = shape(arg)
        return
    if isinstance(param, ScalarType) and isinstance(arg, ScalarType):
        if (
            isinstance(param.base, DataBase)
            and isinstance(arg.base, DataBase)
            and param.base.name == arg.base.name
        ):
            for param_arg, arg_arg in zip(param.base.args, arg.base.args):
                _unify_shape(param_arg, arg_arg, type_vars, out)
        return
    if isinstance(param, FunctionType) and isinstance(arg, FunctionType):
        _unify_shape(param.arg_type, arg.arg_type, type_vars, out)
        _unify_shape(param.result_type, arg.result_type, type_vars, out)


def _as_refinement_term(env: Environment, term: Term) -> Optional[Formula]:
    """The refinement-logic translation of an E-term, when one exists."""
    if isinstance(term, IntConst):
        return ops.int_lit(term.value)
    if isinstance(term, BoolConst):
        return ops.bool_lit(term.value)
    if isinstance(term, VarTerm):
        bound = env.lookup(term.name)
        if isinstance(bound, ScalarType):
            return Var(term.name, bound.sort)
    return None


# ---------------------------------------------------------------------------
# checking (introduction terms)
# ---------------------------------------------------------------------------


def check(
    session: "TypecheckSession",
    env: Environment,
    term: Term,
    goal: RType,
    where: Provenance = (),
) -> None:
    """Check ``term`` against ``goal``, emitting subtyping constraints."""
    if isinstance(goal, ContextualType):
        check(session, env.bind_all(goal.bindings), term, goal.body, where)
        return
    if isinstance(term, LambdaTerm):
        _check_lambda(session, env, term, goal, where)
        return
    if isinstance(term, IfTerm):
        _check_if(session, env, term, goal, where)
        return
    if isinstance(term, LetTerm):
        value_type = infer(session, env, term.value, where + (f"let {term.name}",))
        env, renamed = env.unshadow(term.name)
        if renamed:
            value_type = substitute_in_type(value_type, renamed)
            goal = substitute_in_type(goal, renamed)
        check(
            session,
            env.bind(term.name, value_type),
            term.body,
            goal,
            where + ("let body",),
        )
        return
    if isinstance(term, MatchTerm):
        _check_match(session, env, term, goal, where)
        return
    if isinstance(term, FixTerm):
        _check_fix(session, env, term, goal, where)
        return
    inferred = infer(session, env, term, where)
    subtype(session, env, inferred, goal, where)


def _check_lambda(
    session: "TypecheckSession",
    env: Environment,
    term: LambdaTerm,
    goal: RType,
    where: Provenance,
) -> None:
    if not isinstance(goal, FunctionType):
        raise ShapeError(
            f"lambda checked against the non-function type `{goal!r}` "
            f"at {_pretty_where(where)}"
        )
    binder = term.arg_name
    # A binder reusing an in-scope name must not capture the context's
    # facts about the outer variable (branch guards, refinements): rename
    # the outer one out of the way first.  The substitution is applied to
    # the arrow as a whole so occurrences bound by the goal's own binder
    # are left alone.
    env, renamed = env.unshadow(binder)
    if renamed:
        goal = substitute_in_type(goal, renamed)
    goal_arg = goal.arg_type
    result = goal.result_type
    if binder != goal.arg_name:
        if binder in type_free_vars(result):
            raise TypecheckError(
                f"lambda binder `{binder}` collides with a variable free in the "
                f"goal type `{goal!r}`; alpha-rename the program, "
                f"at {_pretty_where(where)}"
            )
        if isinstance(goal_arg, ScalarType):
            result = substitute_in_type(result, {goal.arg_name: Var(binder, goal_arg.sort)})
    inner = env.bind(binder, goal_arg)
    check(session, inner, term.body, result, where + (f"\\{binder}",))


def _check_if(
    session: "TypecheckSession",
    env: Environment,
    term: IfTerm,
    goal: RType,
    where: Provenance,
) -> None:
    cond_type = infer(session, env, term.cond, where + ("condition",))
    context: Tuple[Tuple[str, RType], ...] = ()
    if isinstance(cond_type, ContextualType):
        context = cond_type.bindings
        cond_type = cond_type.body
    if not (isinstance(cond_type, ScalarType) and cond_type.base == BOOL_BASE):
        raise ShapeError(
            f"condition `{term.cond!r}` has type `{cond_type!r}`, expected Bool, "
            f"at {_pretty_where(where)}"
        )
    branch_env = env.bind_all(context)
    guard = simplify(instantiate_value_var(cond_type.refinement, TRUE))
    refuted = simplify(instantiate_value_var(cond_type.refinement, FALSE))
    check(session, branch_env.assume(guard), term.then_, goal, where + ("then-branch",))
    check(session, branch_env.assume(refuted), term.else_, goal, where + ("else-branch",))


# ---------------------------------------------------------------------------
# match elaboration (Sec. 3.2)
# ---------------------------------------------------------------------------


def _check_match(
    session: "TypecheckSession",
    env: Environment,
    term: MatchTerm,
    goal: RType,
    where: Provenance,
) -> None:
    scrutinee_type = infer(session, env, term.scrutinee, where + ("scrutinee",))
    context: Tuple[Tuple[str, RType], ...] = ()
    if isinstance(scrutinee_type, ContextualType):
        context = scrutinee_type.bindings
        scrutinee_type = scrutinee_type.body
    if not isinstance(scrutinee_type, ScalarType) or not isinstance(
        scrutinee_type.base, DataBase
    ):
        raise MatchError(
            f"scrutinee `{term.scrutinee!r}` has type `{scrutinee_type!r}`, "
            f"expected a datatype, at {_pretty_where(where)}"
        )
    base = scrutinee_type.base
    datatype = session.datatypes.get(base.name)
    if datatype is None:
        raise MatchError(
            f"datatype `{base.name}` has no declaration in this session, "
            f"at {_pretty_where(where)}"
        )
    match_env = env.bind_all(context)
    # Name the scrutinee so constructor selfification and measure unfoldings
    # can talk about it; a scrutinee that is not already a variable gets a
    # fresh binding carrying its inferred type.
    subject = _as_refinement_term(match_env, term.scrutinee)
    if subject is None:
        fresh = session.fresh_name("scr")
        match_env = match_env.bind(fresh, scrutinee_type)
        subject = Var(fresh, scrutinee_type.sort)
    type_args = dict(zip(datatype.type_params, base.args))
    covered: set = set()
    for case in term.cases:
        if case.constructor in covered:
            raise MatchError(f"duplicate case for `{case.constructor}` at {_pretty_where(where)}")
        covered.add(case.constructor)
        _check_match_case(session, match_env, case, datatype, type_args, subject, goal, where)
    missing = [name for name in datatype.constructor_names() if name not in covered]
    if missing:
        raise MatchError(
            f"non-exhaustive match on `{base.name}`: missing "
            f"{', '.join(missing)}, at {_pretty_where(where)}"
        )


def elaborate_match_case(
    session: "TypecheckSession",
    env: Environment,
    constructor: str,
    binders: Tuple[str, ...],
    datatype: "Datatype",
    type_args: dict,
    subject: Formula,
    goal: RType,
    where: Provenance,
) -> Tuple[Environment, RType]:
    """The typing context of one match alternative ``constructor binders ->``.

    Returns the environment the case body is checked in — the constructor's
    arguments bound at their instantiated signature types, under the
    *constructor selfification* assumption (the result refinement holding of
    the scrutinee ``subject``) conjoined with the catamorphism unfolding of
    every measure on the datatype — together with the goal type, alpha-
    renamed where a case binder shadowed a variable it mentions.  Shared by
    the checker (:func:`_check_match_case`) and by the synthesizer's match
    generator, which synthesizes the case body against the returned subgoal.
    """
    ctor = datatype.find(constructor)
    if ctor is None:
        raise MatchError(
            f"`{constructor}` is not a constructor of `{datatype.name}` "
            f"(has: {', '.join(datatype.constructor_names())}), "
            f"at {_pretty_where(where)}"
        )
    if len(set(binders)) != len(binders):
        raise MatchError(
            f"case `{constructor}` binds a name twice, at {_pretty_where(where)}",
        )
    node: RType = session.instantiate(ctor.schema, env, type_args=type_args)
    mapping: dict = {}  # signature binder name -> case binder variable
    binder_args: list = []  # per-position formulas for measure unfolding
    case_env = env
    for binder in binders:
        if not isinstance(node, FunctionType):
            raise MatchError(
                f"constructor `{constructor}` takes {ctor.arity()} "
                f"arguments, the case binds {len(binders)}, "
                f"at {_pretty_where(where)}"
            )
        # A case binder reusing an in-scope name (often the scrutinee
        # itself) must not capture the context's facts about it.
        case_env, renamed = case_env.unshadow(binder)
        if renamed:
            goal = substitute_in_type(goal, renamed)
            subject = substitute(subject, renamed)
            node = substitute_in_type(node, renamed)
            mapping = {name: substitute(value, renamed) for name, value in mapping.items()}
            binder_args = [
                None if value is None else substitute(value, renamed)
                for value in binder_args
            ]
        arg_type = substitute_in_type(node.arg_type, mapping)
        case_env = case_env.bind(binder, arg_type)
        if isinstance(arg_type, ScalarType):
            bound_var = Var(binder, arg_type.sort)
            mapping[node.arg_name] = bound_var
            binder_args.append(bound_var)
        else:
            binder_args.append(None)
        node = node.result_type
    if isinstance(node, FunctionType):
        raise MatchError(
            f"constructor `{constructor}` takes {ctor.arity()} arguments, "
            f"the case binds {len(binders)}, at {_pretty_where(where)}"
        )
    # Constructor selfification: the constructor's result refinement holds
    # of the scrutinee in this branch ...
    result = substitute_in_type(node, mapping)
    assert isinstance(result, ScalarType)
    assumption = instantiate_value_var(result.refinement, subject)
    # ... plus the catamorphism unfolding of every measure on the datatype.
    for mdef in session.measures_for(datatype.name):
        assumption = ops.and_(assumption, mdef.unfold(subject, constructor, binder_args))
    return case_env.assume(simplify(assumption)), goal


def _check_match_case(
    session: "TypecheckSession",
    env: Environment,
    case: MatchCase,
    datatype: "Datatype",
    type_args: dict,
    subject: Formula,
    goal: RType,
    where: Provenance,
) -> None:
    case_env, case_goal = elaborate_match_case(
        session, env, case.constructor, case.binders, datatype, type_args, subject, goal, where
    )
    check(session, case_env, case.body, case_goal, where + (f"case {case.constructor}",))


# ---------------------------------------------------------------------------
# fix: recursion with termination metrics (Sec. 3)
# ---------------------------------------------------------------------------


def _check_fix(
    session: "TypecheckSession",
    env: Environment,
    term: FixTerm,
    goal: RType,
    where: Provenance,
) -> None:
    if not isinstance(goal, FunctionType):
        raise ShapeError(
            f"fix checked against the non-function type `{goal!r}` "
            f"at {_pretty_where(where)}"
        )
    where = where + (f"fix {term.name}",)
    env, renamed = env.unshadow(term.name)
    if renamed:
        goal = substitute_in_type(goal, renamed)
    # Peel the body's lambda spine in lockstep with the goal's arrows —
    # exactly what _check_lambda would do — so the termination refinements
    # of the recursive signature can name the bound arguments.
    spine: list = []  # (binder, argument type as bound)
    body: Term = term.body
    remaining: RType = goal
    inner_env = env
    inner_where = where
    while isinstance(remaining, FunctionType) and isinstance(body, LambdaTerm):
        binder = body.arg_name
        inner_env, renamed = inner_env.unshadow(binder)
        if renamed:
            remaining = substitute_in_type(remaining, renamed)
            # An earlier spine binder being shadowed is renamed in the
            # environment; its spine entry must follow, or the termination
            # metric would compare against the inner (shadowing) variable.
            spine = [
                (
                    renamed[name].name if name in renamed else name,
                    substitute_in_type(rtype, renamed),
                )
                for name, rtype in spine
            ]
        goal_arg = remaining.arg_type
        result = remaining.result_type
        if binder != remaining.arg_name:
            if binder in type_free_vars(result):
                raise TypecheckError(
                    f"lambda binder `{binder}` collides with a variable free in "
                    f"the goal type `{remaining!r}`; alpha-rename the program, "
                    f"at {_pretty_where(inner_where)}"
                )
            if isinstance(goal_arg, ScalarType):
                result = substitute_in_type(
                    result, {remaining.arg_name: Var(binder, goal_arg.sort)}
                )
        inner_env = inner_env.bind(binder, goal_arg)
        spine.append((binder, goal_arg))
        inner_where = inner_where + (f"\\{binder}",)
        remaining = result
        body = body.body
    # A lambda binder reusing the fix name shadows the recursive occurrence
    # entirely (no recursive call can be written), so only bind — and only
    # demand a termination metric — when the name is actually visible.
    if term.name not in {binder for binder, _ in spine}:
        recursive = _termination_strengthened(session, spine, remaining, where)
        inner_env = inner_env.bind(term.name, recursive)
    check(session, inner_env, body, remaining, inner_where)


def _metric(session: "TypecheckSession", rtype: RType):
    """The termination metric of an argument type, as a formula builder:
    the value itself for Int, the datatype's first Int-resulted measure for
    a datatype, ``None`` when the type has no well-founded metric."""
    if not isinstance(rtype, ScalarType):
        return None
    base = rtype.base
    if isinstance(base, IntBase):
        return lambda value: value
    if isinstance(base, DataBase):
        mdef = session.termination_measure(base.name)
        if mdef is not None:
            return mdef.apply
    return None


def _termination_strengthened(
    session: "TypecheckSession",
    spine: list,
    result: RType,
    where: Provenance,
) -> RType:
    """The recursive occurrence's signature: the goal's arrow spine with
    every metric-bearing argument refined so the tuple of metrics is
    lexicographically smaller than the enclosing call's.

    With metric positions ``p1 < ... < pk`` over outer arguments
    ``x1 ... xk`` and recursive binders ``y1 ... yk``, a *strict* descent
    of component ``j`` is ``0 <= m(yj) && m(yj) < m(xj)`` — bounded below
    exactly where well-foundedness needs it.  The last position demands a
    strict descent (or an earlier one as escape); earlier positions only
    demand ``m(nu) <= m(xi)`` (or an escape), so an integer accumulator
    passed through or decremented alongside structural recursion does not
    need a non-negativity proof.  Soundness: along an infinite call chain
    component 1 never increases and each strict drop lands >= 0, so it
    drops finitely often; once it is stable its escapes die and the
    argument repeats at component 2, until the last component would have
    to strictly descend below 0.
    """
    metric_positions = [
        index for index, (_, rtype) in enumerate(spine) if _metric(session, rtype) is not None
    ]
    if not metric_positions:
        raise TerminationError(
            f"cannot establish termination at {_pretty_where(where)}: no "
            "lambda-bound argument has a well-founded metric (Int, or a "
            "datatype with an Int-resulted measure); bind the decreasing "
            "argument with a lambda directly under the fix"
        )
    last = metric_positions[-1]
    fresh_names = [session.fresh_name(name) for name, _ in spine]
    mapping: dict = {}  # outer binder name -> recursive binder variable
    strengthened: list = []
    earlier_strict: list = []  # m_j(y_j) < m_j(x_j) escapes
    for index, (binder, rtype) in enumerate(spine):
        arg_type = substitute_in_type(rtype, mapping)
        metric = _metric(session, arg_type)
        if metric is not None:
            assert isinstance(arg_type, ScalarType)
            nu = value_var(arg_type.sort)
            metric_nu = metric(nu)
            metric_outer = metric(Var(binder, arg_type.sort))
            if index == last:
                descends = ops.and_(
                    ops.le(ops.int_lit(0), metric_nu), ops.lt(metric_nu, metric_outer)
                )
            else:
                descends = ops.le(metric_nu, metric_outer)
            termination = descends
            for strict in earlier_strict:
                termination = ops.or_(termination, strict)
            arg_type = ScalarType(arg_type.base, ops.and_(arg_type.refinement, termination))
            recursive_var = Var(fresh_names[index], arg_type.sort)
            metric_recursive = metric(recursive_var)
            earlier_strict.append(
                ops.and_(
                    ops.le(ops.int_lit(0), metric_recursive),
                    ops.lt(metric_recursive, metric_outer),
                )
            )
        if isinstance(arg_type, ScalarType):
            mapping[binder] = Var(fresh_names[index], arg_type.sort)
        strengthened.append((fresh_names[index], arg_type))
    rec_type: RType = substitute_in_type(result, mapping)
    for name, arg_type in reversed(strengthened):
        rec_type = FunctionType(name, arg_type, rec_type)
    return rec_type


def recursion_signature(
    session: "TypecheckSession",
    spine: "list",
    result: RType,
    where: Provenance = (),
) -> RType:
    """The termination-strengthened signature a recursive occurrence is
    bound at, for an enclosing definition with argument ``spine`` (pairs of
    binder name and argument type) and result type ``result``.

    This is the same signature :func:`_check_fix` builds for ``fix`` bodies,
    exposed so the synthesizer can bind a goal's own name before enumerating
    recursive calls (Sec. 4: recursion is only ever attempted at the
    strengthened type, so non-terminating candidates are pruned like any
    other ill-typed term).  Raises :class:`TerminationError` when no
    argument carries a well-founded metric.
    """
    return _termination_strengthened(session, spine, result, where)


# ---------------------------------------------------------------------------
# subtyping: reduction to Horn constraints
# ---------------------------------------------------------------------------


def subtype(
    session: "TypecheckSession",
    env: Environment,
    sub: RType,
    sup: RType,
    where: Provenance = (),
) -> None:
    """Reduce ``Γ ⊢ sub <: sup`` to Horn constraints on the session."""
    if isinstance(sub, ContextualType):
        subtype(session, env.bind_all(sub.bindings), sub.body, sup, where)
        return
    if isinstance(sup, ContextualType):
        subtype(session, env.bind_all(sup.bindings), sub, sup.body, where)
        return
    if isinstance(sub, ScalarType) and isinstance(sup, ScalarType):
        if not same_shape(sub, sup):
            raise ShapeError(
                f"`{sub!r}` is not a subtype of `{sup!r}`: base types differ, "
                f"at {_pretty_where(where)}"
            )
        _scalar_subtype(session, env, sub, sup, where)
        return
    if isinstance(sub, FunctionType) and isinstance(sup, FunctionType):
        _arrow_subtype(session, env, sub, sup, where)
        return
    raise ShapeError(
        f"`{sub!r}` is not a subtype of `{sup!r}`: shapes differ, "
        f"at {_pretty_where(where)}"
    )


def _scalar_subtype(
    session: "TypecheckSession",
    env: Environment,
    sub: ScalarType,
    sup: ScalarType,
    where: Provenance,
) -> None:
    # Normalize both value variables to one concrete sort so the premises
    # and the conclusion talk about the same logical variable.
    sort = sub.sort if not isinstance(sub.sort, VarSort) else sup.sort
    nu = value_var(sort)
    lhs = substitute(sub.refinement, {nu.name: nu})
    rhs = substitute(sup.refinement, {nu.name: nu})
    premises = env.embedding()
    premises.append(lhs)
    session.emit(premises, rhs, where + (f"{sub!r} <: {sup!r}",))
    # Datatype type arguments are covariant (as in Synquid): their
    # element-level obligations must be emitted too, or `List Int <:
    # List {Int | nu > 0}` would be silently accepted.
    if isinstance(sub.base, DataBase) and isinstance(sup.base, DataBase):
        for index, (sub_arg, sup_arg) in enumerate(zip(sub.base.args, sup.base.args)):
            subtype(session, env, sub_arg, sup_arg, where + (f"type argument {index}",))


def _arrow_subtype(
    session: "TypecheckSession",
    env: Environment,
    sub: FunctionType,
    sup: FunctionType,
    where: Provenance,
) -> None:
    binder = sup.arg_name
    # As in _check_lambda: protect outer facts about a same-named variable,
    # renaming whole arrows so their own binders' occurrences stay bound.
    env, renamed = env.unshadow(binder)
    if renamed:
        sub = substitute_in_type(sub, renamed)
        sup = substitute_in_type(sup, renamed)
        assert isinstance(sub, FunctionType) and isinstance(sup, FunctionType)
        binder = sup.arg_name
    sup_arg, sub_arg = sup.arg_type, sub.arg_type
    sub_result, sup_result = sub.result_type, sup.result_type
    subtype(session, env, sup_arg, sub_arg, where + ("argument (contravariant)",))
    if sub.arg_name != binder:
        if binder in type_free_vars(sub_result):
            raise TypecheckError(
                f"binder `{binder}` of `{sup!r}` collides with a variable free "
                f"in `{sub!r}`; alpha-rename one of the signatures, "
                f"at {_pretty_where(where)}"
            )
        if isinstance(sub_arg, ScalarType):
            sub_result = substitute_in_type(sub_result, {sub.arg_name: Var(binder, sub_arg.sort)})
    inner = env.bind(binder, sup_arg)
    subtype(session, inner, sub_result, sup_result, where + ("result",))


def _pretty_where(where: Provenance) -> str:
    return " / ".join(where) if where else "<top level>"
