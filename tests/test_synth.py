"""Round-trip synthesis: the paper's benchmarks from signatures alone.

Each benchmark must (a) synthesize, (b) be re-verified by the ordinary
type checker in a fresh session, and (c) show early pruning at work
(``pruned_early > 0``): the whole point of round-trip checking is that
ill-typed subterms die before they are extended.
"""

import pytest

from repro.logic import ops
from repro.logic.formulas import Var
from repro.logic.sorts import INT
from repro.syntax import (
    FixTerm,
    IfTerm,
    MatchTerm,
    parse_program,
    parse_term,
    parse_type,
    pretty_term,
)
from repro.syntax.types import bool_type, int_type, type_var
from repro.synth import (
    ETermEnumerator,
    SynthesisGoal,
    Synthesizer,
    abduce_condition,
    synthesize,
)
from repro.synth.enumerator import rigid_shape_match
from repro.typecheck import EMPTY, TypecheckSession

PRELUDE = """
data List a where
    Nil :: {List a | len(nu) == 0}
  | Cons :: x:a -> xs:List a -> {List a | len(nu) == 1 + len(xs)}

measure len :: List a -> {Int | nu >= 0} where
    Nil -> 0 | Cons x xs -> 1 + len(xs)
"""

MAX_SQ = """
leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}

max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}
max = ??
"""

REPLICATE_SQ = PRELUDE + """
dec :: a:Int -> {Int | nu == a - 1}

leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}

replicate :: n:{Int | nu >= 0} -> x:a -> {List a | len(nu) == n}
replicate = ??
"""

STUTTER_SQ = PRELUDE + """
stutter :: xs:List a -> {List a | len(nu) == len(xs) + len(xs)}
stutter = ??
"""

LENGTH_SQ = PRELUDE + """
inc :: a:Int -> {Int | nu == a + 1}

length :: xs:List a -> {Int | nu == len(xs)}
length = ??
"""

APPEND_SQ = PRELUDE + """
append :: xs:List a -> ys:List a -> {List a | len(nu) == len(xs) + len(ys)}
append = ??
"""


def run(source: str, name: str, **limits):
    goal = SynthesisGoal.from_program(parse_program(source), name)
    return synthesize(goal, **limits)


def top_body(term):
    """Strip the fix/lambda spine off a synthesized program."""
    while hasattr(term, "body"):
        term = term.body
    return term


class TestPaperBenchmarks:
    def test_max_needs_an_abduced_condition(self):
        result = run(MAX_SQ, "max", max_depth=3)
        assert result.solved and result.verified
        assert result.statistics.abductions >= 1
        assert result.statistics.pruned_early > 0
        assert isinstance(top_body(result.program), IfTerm)

    def test_stutter_needs_match_and_recursion(self):
        result = run(STUTTER_SQ, "stutter", max_depth=4)
        assert result.solved and result.verified
        assert result.statistics.pruned_early > 0
        assert isinstance(result.program, FixTerm)
        assert isinstance(top_body(result.program), MatchTerm)

    def test_replicate_needs_abduction_and_recursion(self):
        result = run(REPLICATE_SQ, "replicate", max_depth=4)
        assert result.solved and result.verified
        assert result.statistics.abductions >= 1
        assert result.statistics.pruned_early > 0
        assert isinstance(result.program, FixTerm)
        assert isinstance(top_body(result.program), IfTerm)

    def test_length(self):
        result = run(LENGTH_SQ, "length", max_depth=3)
        assert result.solved and result.verified
        assert result.statistics.pruned_early > 0

    def test_append(self):
        result = run(APPEND_SQ, "append", max_depth=4)
        assert result.solved and result.verified
        assert result.statistics.pruned_early > 0

    def test_synthesized_programs_reparse(self):
        """The reported surface syntax round-trips through the parser."""
        result = run(LENGTH_SQ, "length", max_depth=3)
        assert parse_term(pretty_term(result.program)) == result.program

    def test_verification_is_independent(self):
        """Re-checking runs in a fresh session of the ordinary checker."""
        result = run(MAX_SQ, "max", max_depth=3)
        goal = result.goal
        session, env = goal.session_environment()
        session.check_program(result.program, goal.goal, env, where="re-check")
        assert session.solve().solved


class TestSearchLimits:
    def test_depth_exhaustion_reports_no_program(self):
        """The enumerator terminates at the depth bound with a readable
        outcome instead of diverging."""
        result = run(STUTTER_SQ, "stutter", max_depth=2)
        assert not result.solved
        assert "no program found within depth 2" in result.reason
        assert result.statistics.generated > 0

    def test_unsatisfiable_goal_is_not_synthesized(self):
        source = "impossible :: x:Int -> {Int | nu > x && nu < x}\nimpossible = ??\n"
        result = run(source, "impossible", max_depth=3)
        assert not result.solved
        assert result.statistics.pruned_early > 0

    def test_conditional_budget_zero_disables_abduction(self):
        result = run(MAX_SQ, "max", max_depth=3, max_conditionals=0)
        assert not result.solved


class TestEnumerator:
    def make(self, env, **kw):
        session = TypecheckSession(literals=[ops.int_lit(0)])
        return session, ETermEnumerator(session, env, **kw)

    def test_atoms_are_shape_filtered(self):
        env = EMPTY.bind("n", int_type()).bind("b", bool_type())
        _, enum = self.make(env)
        ints = list(enum.candidates(int_type(), 1))
        assert [pretty_term(t) for t in ints] == ["n", "0"]
        bools = list(enum.candidates(bool_type(), 1))
        assert [pretty_term(t) for t in bools] == ["b"]

    def test_prefix_pruning_cuts_ill_typed_applications(self):
        """`pos` demands a positive argument; every atom in scope violates
        that, so depth-2 enumeration yields nothing and counts the prunes."""
        env = (
            EMPTY.bind("pos", parse_type("a:{Int | nu > 0} -> {Int | nu == a}"))
            .bind("n", int_type(ops.lt(ops.var("nu", INT), ops.int_lit(0))))
        )
        session = TypecheckSession(literals=[ops.int_lit(0)])
        enum = ETermEnumerator(session, env)
        found = list(enum.candidates(int_type(), 2))
        assert found == []
        assert enum.statistics.pruned_early == 2  # pos n, pos 0
        assert enum.statistics.generated >= 2

    def test_pruning_leaves_no_constraint_residue(self):
        env = (
            EMPTY.bind("pos", parse_type("a:{Int | nu > 0} -> {Int | nu == a}"))
            .bind("n", int_type())
        )
        session = TypecheckSession(literals=[ops.int_lit(0)])
        enum = ETermEnumerator(session, env)
        list(enum.candidates(int_type(), 2))
        assert session.constraints == []
        assert session.spaces == {}


class TestRigidShapes:
    def test_rigid_variable_only_matches_itself_or_flexible(self):
        a, b, c = type_var("a"), type_var("b"), type_var("c")
        rigid = frozenset({"a", "b"})
        assert rigid_shape_match(a, a, rigid)
        assert rigid_shape_match(c, a, rigid)  # flexible candidate
        assert not rigid_shape_match(b, a, rigid)  # another rigid variable
        assert not rigid_shape_match(int_type(), a, rigid)  # concrete type

    def test_flexible_goal_variable_is_permissive(self):
        assert rigid_shape_match(int_type(), type_var("c"), frozenset({"a"}))

    def test_component_variable_names_do_not_capture_rigid_ones(self):
        """A polymorphic component whose quantified variable happens to be
        named like the goal's rigid variable must stay applicable: schema
        variables are freshened before shape matching, and each
        instantiation mints fresh names."""
        from repro.syntax import generalize
        from repro.logic import ops

        session = TypecheckSession(literals=[ops.int_lit(0)])
        env = EMPTY.bind("ident", generalize(parse_type("x:a -> {a | nu == x}")))
        env = env.bind("n", int_type())
        enum = ETermEnumerator(session, env, rigid=frozenset({"a"}))
        found = {pretty_term(t) for t in enum.candidates(int_type(), 2)}
        assert "ident n" in found and "ident 0" in found

    def test_degenerate_polymorphic_instantiation_is_refuted(self):
        """A `List a` goal must not be inhabited by lists of lists: the
        stutter benchmark once found `Cons Nil (Cons Nil ...)` this way."""
        result = run(STUTTER_SQ, "stutter", max_depth=4)
        assert "Cons Nil" not in pretty_term(result.program)


class TestAbduction:
    def goal_env(self):
        goal = SynthesisGoal.from_program(parse_program(MAX_SQ), "max")
        synthesizer = Synthesizer(goal)
        session, env = synthesizer.session, synthesizer.base_env
        env = env.bind("x", int_type()).bind("y", int_type())
        return session, env

    def test_weakest_condition_is_a_single_comparison(self):
        session, env = self.goal_env()
        goal = parse_type(
            "{Int | nu >= x && nu >= y && (nu == x || nu == y)}",
            scope={"x": INT, "y": INT},
        )
        abduced = abduce_condition(session, env, parse_term("x"), goal)
        assert abduced is not None
        assert abduced.qualifiers == (ops.le(Var("y", INT), Var("x", INT)),)

    def test_unconditional_candidate_abduces_trivially(self):
        session, env = self.goal_env()
        goal = parse_type("{Int | nu == x}", scope={"x": INT, "y": INT})
        abduced = abduce_condition(session, env, parse_term("x"), goal)
        assert abduced is not None and abduced.is_trivial()

    def test_unabducible_candidate_returns_none(self):
        session, env = self.goal_env()
        goal = parse_type("{Int | nu == x + 1}", scope={"x": INT, "y": INT})
        assert abduce_condition(session, env, parse_term("x"), goal) is None

    def test_abduction_leaves_no_residue(self):
        session, env = self.goal_env()
        goal = parse_type("{Int | nu == x}", scope={"x": INT, "y": INT})
        before_constraints = list(session.constraints)
        before_spaces = dict(session.spaces)
        abduce_condition(session, env, parse_term("y"), goal)
        assert session.constraints == before_constraints
        assert session.spaces == before_spaces


class TestTrialScopes:
    def test_try_check_rolls_back(self):
        session = TypecheckSession()
        env = EMPTY.bind("n", int_type())
        good = session.try_check(env, parse_term("n"), int_type())
        bad = session.try_check(
            env, parse_term("n"), parse_type("{Int | nu > n}", scope={"n": INT})
        )
        assert good.solved and not bad.solved
        assert session.constraints == []

    def test_try_check_reports_structural_errors_as_unsolved(self):
        session = TypecheckSession()
        env = EMPTY.bind("n", int_type())
        result = session.try_check(env, parse_term("n n"), int_type())
        assert not result.solved

    def test_try_infer_rejects_unsolvable_obligations(self):
        session = TypecheckSession()
        env = EMPTY.bind(
            "pos", parse_type("a:{Int | nu > 0} -> Int")
        ).bind("n", int_type(ops.lt(ops.var("nu", INT), ops.int_lit(0))))
        assert session.try_infer(env, parse_term("pos n")) is None
        assert session.try_infer(env, parse_term("pos")) is not None


class TestGoalDescription:
    def test_result_pretty_without_program(self):
        result = run(STUTTER_SQ, "stutter", max_depth=1)
        assert not result.solved
        assert "no program found" in result.pretty()


def test_custom_literals_reach_abduction_spaces():
    """The term-literal pool and the qualifier-space literal pool must
    agree: a goal whose guard needs the constant 1 synthesizes only when
    `IntConst(1)` is passed, because abduction can then discover `n <= 1`."""
    from repro.syntax.terms import IntConst

    source = (
        "leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}\n"
        "clamp :: n:{Int | nu >= 0} -> {Int | nu <= n && nu <= 1 && (nu == n || nu == 1)}\n"
        "clamp = ??\n"
    )
    goal = SynthesisGoal.from_program(parse_program(source), "clamp")
    result = synthesize(goal, max_depth=3, literals=(IntConst(0), IntConst(1)))
    assert result.solved and result.verified
    assert result.statistics.abductions >= 1
    body = top_body(result.program)
    assert isinstance(body, IfTerm)


def test_scalar_goal_without_arrows():
    """A scalar goal needs no lambdas at all."""
    source = "three :: {Int | nu == 3}\nthree = ??\n"
    goal = SynthesisGoal.from_program(parse_program(source), "three")
    result = synthesize(goal, max_depth=1, literals=(parse_term("3"),))
    assert result.solved and result.verified
    assert pretty_term(result.program) == "3"


def test_component_order_is_respected():
    """SynthesisGoal.from_program excludes the goal's own signature from
    the component pool (recursion goes through fix instead)."""
    goal = SynthesisGoal.from_program(parse_program(STUTTER_SQ), "stutter")
    assert "stutter" not in dict(goal.components)


@pytest.mark.parametrize("source,name", [(MAX_SQ, "max"), (LENGTH_SQ, "length")])
def test_statistics_counters_are_consistent(source, name):
    result = run(source, name, max_depth=3)
    stats = result.statistics
    assert stats.checked <= stats.generated
    assert stats.pruned_early <= stats.checked
    data = stats.as_dict()
    assert data["generated"] == stats.generated
    assert data["pruned_early"] == stats.pruned_early
