"""Refinement type checking: subtyping reduced to Horn constraints.

The fifth layer of the reproduction (Sec. 3 of the paper): typing
environments with embeddings into the refinement logic, a bidirectional
checker whose subtyping judgment emits Horn constraints over fresh
predicate unknowns, and the :class:`TypecheckSession` that accumulates the
system and solves it with :class:`repro.horn.HornSolver` over one shared
incremental SMT backend.
"""

from .checker import (
    check,
    elaborate_match_case,
    infer,
    recursion_signature,
    subtype,
    well_formed,
)
from .environment import EMPTY, Environment
from .errors import (
    MatchError,
    ShapeError,
    SubtypingError,
    TerminationError,
    TypecheckError,
    UnsupportedTermError,
    WellFormednessError,
)
from ..horn.musfix import MusFixSolver
from .session import TypecheckResult, TypecheckSession

__all__ = [
    "EMPTY",
    "Environment",
    "MatchError",
    "MusFixSolver",
    "ShapeError",
    "SubtypingError",
    "TerminationError",
    "TypecheckError",
    "TypecheckResult",
    "TypecheckSession",
    "UnsupportedTermError",
    "WellFormednessError",
    "check",
    "elaborate_match_case",
    "infer",
    "recursion_signature",
    "subtype",
    "well_formed",
]
