"""Batch screening: sweep a directory of ``.sq`` files through the cache.

The screening loop the paper's evaluation section implies but never
ships: point the tool at a corpus, get one line per file and a summary.
Each file is parsed once and routed through the same query layer the CLI
and server use — ``check`` when it has definitions, ``synth`` when it
has goals — so results are content-addressed: a warm second sweep (or a
sweep over a corpus that shares files with a previous one) answers from
the :class:`~repro.service.cache.ResultCache` without touching a solver.

Files are processed by a bounded worker pool.  Workers are threads (the
solver stack is pure Python, but the cache is I/O and corpora are many
small independent jobs), and each worker thread owns its own
:class:`~repro.service.worker.WarmStack` so solver state is never shared
across threads; learned lemmas from every stack are merged into the
store at the end of the sweep.

Because it reports wall-clock time and cache counters, the sweep doubles
as the service throughput benchmark (``scripts/bench_service.py`` runs
it cold and warm and asserts the ratio).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import List, Optional

from ..syntax.parser import ParseError, parse_program
from . import api
from .cache import LemmaStore, ResultCache
from .worker import WarmStack


def discover_files(root: str) -> List[Path]:
    """The ``.sq`` files under ``root`` (a directory, recursively, in
    sorted order — the sweep's result order is deterministic) or the
    single file ``root`` itself."""
    path = Path(root)
    if path.is_dir():
        return sorted(path.rglob("*.sq"))
    return [path]


def screen_file(
    path: Path,
    cache: Optional[ResultCache] = None,
    backend=None,
    depth: int = 4,
    max_conditionals: int = 2,
    max_matches: int = 1,
) -> dict:
    """One file through the query layer; the per-file batch record.

    ``{"file", "failures", "cached", "fresh", "check"?, "synth"?,
    "error"?}`` — ``check``/``synth`` hold the ordinary query payloads,
    ``error`` a parse failure (which counts as one failure but does not
    abort the sweep).
    """
    record: dict = {"file": str(path), "failures": 0, "cached": 0, "fresh": 0}
    try:
        program = parse_program(path.read_text())
    except (OSError, ParseError) as error:
        record["error"] = str(error)
        record["failures"] = 1
        return record
    if program.definitions:
        payload, was_cached, _ = api.check_query(program, cache=cache, backend=backend)
        record["check"] = payload
        record["failures"] += payload["failures"]
        record["cached" if was_cached else "fresh"] += 1
    if program.goals:
        payload, was_cached, _ = api.synth_query(
            program,
            depth=depth,
            max_conditionals=max_conditionals,
            max_matches=max_matches,
            cache=cache,
            backend=backend,
        )
        record["synth"] = payload
        record["failures"] += payload["failures"]
        record["cached" if was_cached else "fresh"] += 1
    return record


def run_batch(
    root: str,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    lemma_store: Optional[LemmaStore] = None,
    depth: int = 4,
    max_conditionals: int = 2,
    max_matches: int = 1,
) -> dict:
    """Sweep ``root`` and return the batch report.

    ``{"files": [record, ...], "failures", "queries", "cached",
    "elapsed", "cache": counters-or-None}`` — everything except
    ``elapsed`` (and the counters) is deterministic, which is what the
    cold-vs-warm determinism test pins down.
    """
    paths = discover_files(root)
    local = threading.local()
    stacks: List[WarmStack] = []
    stacks_lock = threading.Lock()

    def stack() -> WarmStack:
        if getattr(local, "stack", None) is None:
            local.stack = WarmStack(lemma_store)
            with stacks_lock:
                stacks.append(local.stack)
        return local.stack

    def job(path: Path) -> dict:
        worker = stack()
        with worker.query() as backend:
            return screen_file(
                path,
                cache=cache,
                backend=backend,
                depth=depth,
                max_conditionals=max_conditionals,
                max_matches=max_matches,
            )

    started = time.monotonic()
    if jobs <= 1:
        records = [job(path) for path in paths]
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            records = list(pool.map(job, paths))
    for worker in stacks:
        worker.flush_lemmas()
    return {
        "files": records,
        "failures": sum(record["failures"] for record in records),
        "queries": sum(record["cached"] + record["fresh"] for record in records),
        "cached": sum(record["cached"] for record in records),
        "elapsed": time.monotonic() - started,
        "cache": cache.stats() if cache is not None else None,
    }


def render_report(report: dict, out) -> None:
    """The batch report as the CLI prints it: one line per file plus the
    summary line (hit/miss counters included so a throughput run can be
    eyeballed without ``/stats``)."""
    for record in report["files"]:
        if "error" in record:
            print(f"{record['file']}: ERROR — {record['error']}", file=out)
            continue
        verbs = []
        for verb in ("check", "synth"):
            if verb in record:
                ok = record[verb]["failures"] == 0
                verbs.append(f"{verb} {'ok' if ok else 'FAILED'}")
        detail = ", ".join(verbs) if verbs else "nothing to do"
        source = "cache" if record["cached"] and not record["fresh"] else "solver"
        print(f"{record['file']}: {detail} [{source}]", file=out)
    counters = report["cache"]
    cache_note = (
        f"{counters['hits']} hits / {counters['misses']} misses"
        if counters is not None
        else "disabled"
    )
    print(
        f"batch: {len(report['files'])} files, {report['failures']} failures, "
        f"cache: {cache_note}, {report['elapsed']:.2f}s",
        file=out,
    )
