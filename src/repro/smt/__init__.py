"""The SMT substrate: SAT core, EUF, LIA, set encoding, lazy DPLL(T)."""

from .euf import CongruenceClosure, TermBank
from .interface import (
    SolverBackend,
    default_solver,
    reset_default_solver,
    satisfiable,
    statistics,
    valid,
)
from .lia import Constraint, LiaSolver, LinearExpr, Relation
from .names import FreshNames
from .sat import SatResult, SatSolver, SatStatistics, solve_clauses
from .sets import eliminate_sets, mentions_sets
from .solver import (
    DEFAULT_CACHE_SIZE,
    IncrementalSolver,
    SmtSolver,
    SolverStatistics,
    TseitinEncoder,
)
from .theory import Literal, TheoryChecker

__all__ = [
    "CongruenceClosure",
    "Constraint",
    "DEFAULT_CACHE_SIZE",
    "FreshNames",
    "IncrementalSolver",
    "LiaSolver",
    "LinearExpr",
    "Literal",
    "Relation",
    "SatResult",
    "SatSolver",
    "SatStatistics",
    "SmtSolver",
    "SolverBackend",
    "SolverStatistics",
    "TermBank",
    "TheoryChecker",
    "TseitinEncoder",
    "default_solver",
    "eliminate_sets",
    "mentions_sets",
    "reset_default_solver",
    "satisfiable",
    "solve_clauses",
    "statistics",
    "valid",
]
