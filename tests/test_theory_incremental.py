"""Differential tests for the incremental theory backend.

:class:`repro.smt.theory.IncrementalTheory` maintains one persistent
term bank, congruence closure, and simplex tableau across
``push``/``pop``-bracketed assertion scopes, un-merging and retracting
via undo trails.  These tests pin its behaviour to the stateless
:class:`repro.smt.theory.TheoryChecker` oracle: on every prefix of every
random assert/push/pop sequence the two must agree on consistency.

The lemma-generalization tests pin the cross-candidate replay path: a
theory conflict refuted once must answer every alpha-renamed copy of
itself propositionally, without the renamed query ever reaching the
theory.
"""

import random

import pytest

from repro.logic import ops
from repro.logic.formulas import IntLit
from repro.logic.sorts import BOOL, INT
from repro.smt.solver import IncrementalSolver
from repro.smt.theory import IncrementalTheory, Literal, TheoryChecker


def _atom_pool():
    x = ops.var("x", INT)
    y = ops.var("y", INT)
    z = ops.var("z", INT)
    p = ops.var("p", BOOL)
    q = ops.var("q", BOOL)
    len_x = ops.measure("len", x, INT)
    len_y = ops.measure("len", y, INT)
    return [
        ops.le(x, y),
        ops.lt(y, z),
        ops.ge(x, IntLit(0)),
        ops.le(z, IntLit(5)),
        ops.eq(x, y),
        ops.neq(y, z),
        ops.eq(x, IntLit(3)),
        ops.lt(x, IntLit(10)),
        ops.eq(len_x, len_y),
        ops.le(len_x, IntLit(4)),
        ops.ge(len_y, IntLit(7)),
        ops.eq(x, z),
        ops.neq(x, IntLit(0)),
        p,
        q,
        ops.eq(p, q),
        ops.le(ops.plus(x, y), IntLit(8)),
        ops.ge(ops.plus(x, y), IntLit(2)),
        ops.eq(ops.times(IntLit(2), x), IntLit(1)),
        ops.le(ops.minus(x, y), IntLit(-1)),
    ]


class TestDifferential:
    """IncrementalTheory vs fresh TheoryChecker on random sequences.

    Every step either asserts a literal inside a new scope, opens an
    empty scope, or pops the innermost scope; after every step the
    incremental verdict for the live prefix must match what a stateless
    check of that prefix says.  Four seeds x 80 sequences x 25 steps
    gives 320 sequences (8000 differential verdicts) per run.
    """

    @pytest.mark.parametrize("seed", [7, 99, 2024, 31337])
    def test_random_sequences_agree_with_stateless_oracle(self, seed):
        rng = random.Random(seed)
        pool = _atom_pool()
        oracle = TheoryChecker()
        for _ in range(80):
            theory = IncrementalTheory()
            frames = []  # literals asserted per live scope
            prefix = []  # flat live-literal list, oracle's input
            for _ in range(25):
                roll = rng.random()
                if roll < 0.6 or not frames:
                    literal = Literal(rng.choice(pool), rng.random() < 0.7)
                    theory.push()
                    frames.append([literal])
                    conflict = theory.assert_literal(literal)
                    prefix.append(literal)
                    incremental_ok = conflict is None and theory.check() is None
                elif roll < 0.85:
                    theory.push()
                    frames.append([])
                    incremental_ok = theory.check() is None
                else:
                    for _ in frames.pop():
                        prefix.pop()
                    theory.pop()
                    incremental_ok = theory.check() is None
                oracle_ok = oracle.is_consistent(list(prefix))
                assert incremental_ok == oracle_ok, (
                    f"divergence (seed {seed}): incremental={incremental_ok} "
                    f"oracle={oracle_ok} on prefix {prefix}"
                )

    def test_conflict_retracts_on_pop(self):
        x = ops.var("x", INT)
        theory = IncrementalTheory()
        theory.push()
        assert theory.assert_literal(Literal(ops.ge(x, IntLit(5)), True)) is None
        assert theory.check() is None
        theory.push()
        conflict = theory.assert_literal(Literal(ops.le(x, IntLit(2)), True))
        if conflict is None:
            conflict = theory.check()
        assert conflict is not None
        theory.pop()
        # The surviving scope must be consistent again, and remain usable.
        assert theory.check() is None
        theory.push()
        assert theory.assert_literal(Literal(ops.le(x, IntLit(9)), True)) is None
        assert theory.check() is None

    def test_congruence_unmerges_on_pop(self):
        x = ops.var("x", INT)
        y = ops.var("y", INT)
        len_x = ops.measure("len", x, INT)
        len_y = ops.measure("len", y, INT)
        theory = IncrementalTheory()
        theory.push()
        assert theory.assert_literal(Literal(ops.neq(len_x, len_y), True)) is None
        assert theory.check() is None
        theory.push()
        # x = y forces len x = len y by congruence: conflict.
        conflict = theory.assert_literal(Literal(ops.eq(x, y), True))
        if conflict is None:
            conflict = theory.check()
        assert conflict is not None
        theory.pop()
        # Un-merging must restore consistency of the disequality alone.
        assert theory.check() is None


class TestLemmaGeneralization:
    """Alpha-renamed copies of a refuted conflict replay propositionally."""

    def test_renamed_conflict_skips_the_theory(self):
        solver = IncrementalSolver()
        tv0 = ops.var("_tv0", INT)
        tv1 = ops.var("_tv1", INT)

        solver.push()
        solver.assert_(ops.le(tv0, IntLit(2)))
        solver.assert_(ops.ge(tv0, IntLit(5)))
        assert solver.check() is False
        solver.pop()
        assert solver.statistics.lemmas_generalized == 0

        theory = solver._bridge.theory
        calls = {"asserts": 0, "checks": 0}
        original_assert = theory.assert_literal
        original_check = theory.check

        def spying_assert(literal):
            calls["asserts"] += 1
            return original_assert(literal)

        def spying_check():
            calls["checks"] += 1
            return original_check()

        theory.assert_literal = spying_assert
        theory.check = spying_check
        try:
            solver.push()
            solver.assert_(ops.le(tv1, IntLit(2)))
            solver.assert_(ops.ge(tv1, IntLit(5)))
            # The generalized lemma instantiates at interning time ...
            assert solver.statistics.lemmas_generalized == 1
            # ... so the renamed query is refuted by unit propagation alone.
            assert solver.check() is False
            assert calls == {"asserts": 0, "checks": 0}
        finally:
            solver.pop()
            theory.assert_literal = original_assert
            theory.check = original_check

    def test_renamed_satisfiable_queries_unaffected(self):
        solver = IncrementalSolver()
        tv0 = ops.var("_tv0", INT)
        tv1 = ops.var("_tv1", INT)

        solver.push()
        solver.assert_(ops.le(tv0, IntLit(2)))
        solver.assert_(ops.ge(tv0, IntLit(5)))
        assert solver.check() is False
        solver.pop()

        # A renaming asserting only half the conflict stays satisfiable.
        solver.push()
        solver.assert_(ops.le(tv1, IntLit(2)))
        assert solver.check() is True
        solver.pop()
