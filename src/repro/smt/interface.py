"""Solver backend protocol and module-level convenience interface.

The type checker and the Horn solver issue a very large number of small
validity / satisfiability queries.  Two layers serve them:

* :class:`SolverBackend` — the abstract *incremental* interface
  (``push`` / ``pop`` / ``assert_`` / ``check``).  The concrete
  :class:`repro.smt.solver.IncrementalSolver` implements it with assumption
  literals over a single persistent SAT solver running DPLL(T) against one
  persistent, trail-backed theory state, so a fixpoint loop that re-asserts
  the same premises thousands of times pays for their encoding exactly
  once, keeps every learned (and alpha-generalized) theory lemma, and
  resumes every simplex check from the previous feasible basis.

* the module-level functions (:func:`valid`, :func:`satisfiable`) — a
  back-compat shim routing one-shot queries through a process-wide shared
  :class:`repro.smt.solver.SmtSolver` so results are memoized across the
  whole synthesis run.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterable, Iterator, List, Optional, Sequence

from ..logic import ops
from ..logic.formulas import Formula

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .solver import SmtSolver, SolverStatistics


class SolverBackend(ABC):
    """Abstract incremental satisfiability backend.

    Assertions are scoped: ``push`` opens a scope, ``assert_`` adds a
    formula to the innermost scope, ``pop`` discards the innermost scope,
    and ``check`` decides satisfiability of the conjunction of all formulas
    in all live scopes.  Implementations are expected to make re-assertion
    of a previously seen formula cheap (no re-encoding), which is what the
    Horn fixpoint loop relies on.
    """

    @abstractmethod
    def push(self) -> None:
        """Open a new assertion scope."""

    @abstractmethod
    def pop(self) -> None:
        """Discard the innermost assertion scope."""

    @abstractmethod
    def assert_(self, formula: Formula) -> None:
        """Add a formula to the innermost scope."""

    @abstractmethod
    def check(self) -> bool:
        """Is the conjunction of all live assertions satisfiable?"""

    def has_assertions(self) -> bool:
        """Is any assertion live in any scope (base frame included)?

        Consumers use this to decide whether a ``check`` answer is
        context-free (cacheable).  The conservative default is ``True`` —
        backends that track their scopes, like
        :class:`repro.smt.solver.IncrementalSolver`, override it.
        """
        return True

    # -- conveniences shared by all backends --------------------------------

    @contextmanager
    def scoped(self) -> Iterator["SolverBackend"]:
        """A ``with``-block assertion scope: ``push`` on entry, ``pop`` on
        exit (even on error).  Long-lived consumers — a typing derivation
        sharing one backend across many obligations — use this to keep
        their scope discipline exception-safe."""
        self.push()
        try:
            yield self
        finally:
            self.pop()

    def check_evaluating(
        self, probes: Sequence[Formula]
    ) -> Optional[List[Optional[bool]]]:
        """Check the live assertions; on SAT, report each probe formula's
        truth value under the model found when the backend can read it back.

        Returns ``None`` on UNSAT.  The default implementation answers the
        satisfiability question but evaluates nothing (every probe entry is
        ``None``) — backends with model access, like
        :class:`repro.smt.solver.IncrementalSolver`, override it, which is
        what lets the Horn solver prune whole qualifier batches from one
        counterexample.
        """
        if not self.check():
            return None
        return [None for _ in probes]

    def check_assuming(self, formulas: Iterable[Formula]) -> bool:
        """Satisfiability of the live assertions plus the given formulas."""
        with self.scoped():
            for formula in formulas:
                self.assert_(formula)
            return self.check()

    def is_valid_implication(self, premises: Iterable[Formula], conclusion: Formula) -> bool:
        """Does the conjunction of ``premises`` entail ``conclusion`` (in the
        context of the live assertions)?"""
        with self.scoped():
            for premise in premises:
                self.assert_(premise)
            self.assert_(ops.not_(conclusion))
            return not self.check()


def new_backend() -> SolverBackend:
    """A fresh incremental backend with no shared state.

    This is the portfolio's per-worker backend factory: it is a
    module-level function, so it pickles by reference into worker
    processes, and each call builds an independent solver (workers must
    not share the coordinator's SAT/theory state across process
    boundaries).
    """
    from .solver import IncrementalSolver

    return IncrementalSolver()


# ---------------------------------------------------------------------------
# process-wide shared solver (back-compat shim)
# ---------------------------------------------------------------------------

_default_solver: Optional["SmtSolver"] = None


def default_solver() -> "SmtSolver":
    """The process-wide shared solver instance."""
    global _default_solver
    if _default_solver is None:
        from .solver import SmtSolver

        _default_solver = SmtSolver()
    return _default_solver


def reset_default_solver() -> None:
    """Replace the shared solver (drops caches and statistics)."""
    global _default_solver
    from .solver import SmtSolver

    _default_solver = SmtSolver()


def valid(formula: Formula) -> bool:
    """Is the formula valid (true in all models)?"""
    return default_solver().is_valid(formula)


def satisfiable(formula: Formula) -> bool:
    """Is the formula satisfiable (true in some model)?"""
    return default_solver().is_satisfiable(formula)


def statistics() -> "SolverStatistics":
    """Counters of the shared solver."""
    return default_solver().statistics
