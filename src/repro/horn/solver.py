"""The Horn-constraint solver: greatest fixpoint plus candidate sets.

Implements the constraint-solving procedure of Polikarpova, Kuraj &
Solar-Lezama, *Program Synthesis from Polymorphic Refinement Types*
(PLDI 2016): Sec. 5.1 (the greatest-fixpoint iteration over candidate
valuations, initialised at the strongest assignment), Sec. 5.2's use of
*weakest* solutions for unknowns in negative positions, and Sec. 5.3's
MUSFix search over *sets* of candidate assignments.

Ordinary unknowns take the classic path: the solver maintains one
candidate assignment ``L`` mapping each predicate unknown to a subset of
its qualifier space, starting from the *strongest* candidate
``L[P] = Q_P``.  One round visits every weakening constraint
``lhs ==> P[sigma]`` and prunes from ``L[P]`` the qualifiers that do not
follow from the premises under the current assignment; rounds repeat until
a fixpoint.  The result is the greatest fixpoint, and the remaining
*definite* constraints (concrete conclusions) are then checked against it:
if one fails there, no assignment in the qualifier space can succeed (the
premises only get weaker from here) — for this constraint language the
single candidate is complete.

Unknowns whose space is marked :attr:`~repro.horn.spaces.QualifierSpace.abducible`
(premise-position guards, as in condition abduction) break that
completeness: they are solved bottom-up from the weakest valuation
``True``, and a failing definite constraint admits *several* minimal
strengthenings — disjunctive inference.  For those the solver keeps a
**frontier of candidates**: each candidate fixes the abducible valuations,
the classic fixpoint core runs on the grounded system, and a failure
branches the candidate into its single-qualifier strengthenings while
:class:`~repro.horn.musfix.MusFixSolver` enumerates MUSes of the failing
constraint and prunes every frontier member containing one.  With
``max_workers > 1`` the branches fan out across worker processes (see
:mod:`repro.horn.portfolio`), MUS lemmas flowing between them.

Pruning on the classic path is unsat-core style: a constraint's full
valuation is first checked in one validity query; only when that fails
does the solver descend to per-qualifier checks to identify exactly the
conjuncts to drop.  All validity checks are issued through an incremental
:class:`~repro.smt.interface.SolverBackend` — the premises of a constraint
are asserted once per round and every per-qualifier probe runs in a
sub-scope on top of them, so unchanged premises are never re-encoded.

In addition to the strongest solution the solver can greedily minimize it
into a locally *weakest* one (a minimal subset of each valuation keeping
every constraint valid), which is what the paper reports for inferred
preconditions.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .. import limits
from ..logic import ops
from ..logic.formulas import Formula, Unknown
from ..logic.substitution import apply_assignment, substitute
from ..logic.transform import unknowns as formula_unknowns
from ..smt.interface import SolverBackend
from ..smt.sets import mentions_sets
from ..smt.solver import IncrementalSolver
from .constraints import HornConstraint, substitute_unknowns
from .musfix import MusFixSolver, MusLemma
from .spaces import QualifierSpace, SpacesLike, as_space_map

#: A candidate valuation: unknown name -> conjunction of qualifiers.
Assignment = Dict[str, Tuple[Formula, ...]]


@dataclass(frozen=True)
class SolveOptions:
    """How :meth:`HornSolver.solve` should search.

    ``minimize`` greedily weakens the chosen solution into a locally
    minimal one.  ``max_workers`` fans candidate branches out across that
    many worker processes (1 = serial).  ``max_candidates`` bounds the
    candidate frontier *and* the number of surviving solutions reported —
    1 degenerates to a greedy single path that can dead-end on disjunctive
    goals.  ``mus_budget`` caps MARCO theory checks per failing
    constraint's qualifier pool.
    """

    minimize: bool = False
    max_workers: int = 1
    max_candidates: int = 16
    mus_budget: int = 64


@dataclass
class HornStatistics:
    """Counters describing one solver's work."""

    validity_checks: int = 0
    fixpoint_rounds: int = 0
    weakenings: int = 0
    pruned_qualifiers: int = 0
    #: Qualifiers pruned directly from a counterexample model, without a
    #: per-qualifier validity probe of their own.
    model_pruned_qualifiers: int = 0
    #: Candidate assignments taken off the search frontier and evaluated.
    candidates_explored: int = 0
    #: Candidates dropped because they contained a known MUS (or were
    #: vacuous) — work the search never had to do.
    candidates_pruned: int = 0
    #: Minimal unsatisfiable subsets enumerated by the MARCO loop.
    muses_enumerated: int = 0
    #: MUS lemmas adopted from other portfolio branches.
    lemmas_shared: int = 0
    #: Portfolio worker processes that died mid-branch; their groups were
    #: re-searched inline (visible degradation, never a lost result).
    worker_deaths: int = 0

    def merge(self, other: "HornStatistics") -> None:
        """Fold another solver's counters into this one (portfolio)."""
        self.validity_checks += other.validity_checks
        self.fixpoint_rounds += other.fixpoint_rounds
        self.weakenings += other.weakenings
        self.pruned_qualifiers += other.pruned_qualifiers
        self.model_pruned_qualifiers += other.model_pruned_qualifiers
        self.candidates_explored += other.candidates_explored
        self.candidates_pruned += other.candidates_pruned
        self.muses_enumerated += other.muses_enumerated
        self.lemmas_shared += other.lemmas_shared
        self.worker_deaths += other.worker_deaths


@dataclass
class HornSolution:
    """Outcome of :meth:`HornSolver.solve`.

    ``candidates`` is the surviving candidate set, weakest first (on the
    classic path it is the one greatest-fixpoint assignment).
    ``assignment`` stays the chosen member — the weakest survivor — so
    existing callers keep working.  When ``solved`` is false, ``failed``
    names a definite constraint no candidate could satisfy.  ``weakest``
    is the greedily minimized valuation, present only when minimization
    was requested.
    """

    solved: bool
    assignment: Assignment
    candidates: Tuple[Assignment, ...] = ()
    weakest: Optional[Assignment] = None
    failed: Optional[HornConstraint] = None

    def formula_for(self, unknown: str) -> Formula:
        """The chosen valuation of ``unknown`` as one conjunction."""
        return ops.conj(self.assignment.get(unknown, ()))


@dataclass
class CandidateSearchResult:
    """Raw outcome of one :meth:`HornSolver.search_candidates` run.

    The portfolio merges several of these: ``solutions`` are full
    assignments (abducible guards plus fixpoint valuations), ``frontier``
    is the unexplored remainder of the queue (branch seeds), ``lemmas``
    are the MUSes learned, and ``failed`` is the last constraint a
    candidate died on (diagnostics when nothing solves).
    """

    solutions: Tuple[Assignment, ...]
    frontier: Tuple[Assignment, ...]
    failed: Optional[HornConstraint]
    lemmas: Tuple[MusLemma, ...]


def _candidate_key(candidate: Assignment) -> Tuple:
    return tuple(sorted(candidate.items(), key=lambda item: item[0]))


def _solution_order_key(
    assignment: Assignment, names: Sequence[str], spaces: Dict[str, QualifierSpace]
) -> Tuple:
    """Sort key: total guard size, then per-space qualifier indices.

    Positions in each space's fixed qualifier order — not reprs — so the
    weakest survivor is the one a smallest-first, pool-order subset walk
    (``itertools.combinations`` over the space) would reach first; the
    brute-force abduction oracle relies on that agreement.
    """
    guards = []
    for name in sorted(names):
        quals = assignment.get(name, ())
        space = spaces.get(name)
        if space is not None:
            key: Tuple = tuple(sorted(space.index_of(q) for q in quals))
        else:
            key = tuple(sorted(repr(q) for q in quals))
        guards.append((name, key))
    return (sum(len(key) for _, key in guards), guards)


def filter_dominated(
    solutions: Sequence[Assignment], abducible_names: Sequence[str]
) -> List[Assignment]:
    """Keep only the antichain of weakest solutions.

    A solution is dominated when another one's abducible guards are all
    (weakly) subsets of its own with at least one strictly smaller — the
    weaker guard admits every behaviour the stronger one does.
    """
    guards = [
        {name: frozenset(sol.get(name, ())) for name in abducible_names} for sol in solutions
    ]
    kept: List[Assignment] = []
    kept_guards: List[Dict[str, FrozenSet[Formula]]] = []
    for sol, guard in zip(solutions, guards):
        dominated = any(
            other != guard and all(other[name] <= guard[name] for name in abducible_names)
            for other in guards
        )
        if not dominated and guard not in kept_guards:
            kept.append(sol)
            kept_guards.append(guard)
    return kept


def order_solutions(
    solutions: Sequence[Assignment],
    names: Sequence[str],
    spaces: Dict[str, QualifierSpace],
) -> List[Assignment]:
    """Deterministic weakest-first order, stable across processes."""
    return sorted(solutions, key=lambda sol: _solution_order_key(sol, names, spaces))


def screen_singletons(
    backend: SolverBackend,
    statistics: "HornStatistics",
    constraints: Sequence[HornConstraint],
    name: str,
    qualifiers: Sequence[Formula],
    musfix: Optional[MusFixSolver] = None,
) -> Optional[Dict[Formula, Optional[HornConstraint]]]:
    """Classify every singleton valuation of ``name`` against a *flat*
    definite system in a handful of countermodel sweeps.

    Returns ``{qualifier: first refuting constraint, or None if valid
    everywhere}`` — or ``None`` when the system is not flat (weakening
    constraints, other unknowns, nested unknown occurrences, set atoms)
    and the per-candidate fixpoint must run instead.

    The trick: under ``premises && !conclusion`` asserted once, a single
    SAT model convicts every qualifier it satisfies, and narrowing with
    the disjunction of the still-open qualifiers forces each further model
    to convict at least one more.  A 20-qualifier pool typically resolves
    in 2-4 solver calls per constraint instead of 20 grounded fixpoints.
    Constraints are processed in order and convicted qualifiers skipped,
    so each qualifier's refuter is the *first* failing constraint —
    exactly what the sequential fixpoint would report.
    """
    plan = []
    for constr in constraints:
        if not constr.is_definite():
            return None
        subs = []
        for premise in constr.premises:
            if isinstance(premise, Unknown):
                if premise.name != name:
                    return None
                subs.append(dict(premise.substitution))
            elif formula_unknowns(premise):
                return None  # an unknown nested under connectives
        involved = list(constr.premises) + [constr.conclusion] + list(qualifiers)
        if any(mentions_sets(f) for f in involved if not isinstance(f, Unknown)):
            return None
        plan.append((constr, subs))

    verdicts: Dict[Formula, Optional[HornConstraint]] = {q: None for q in qualifiers}
    for constr, subs in plan:
        pending = [q for q in qualifiers if verdicts[q] is None]
        if not pending:
            break
        if not subs:
            # The constraint ignores the abducible: one verdict for all.
            statistics.validity_checks += 1
            if not backend.is_valid_implication(list(constr.premises), constr.conclusion):
                for q in pending:
                    verdicts[q] = constr
            continue
        # Raw occurrences (no substitution) double as vacuity evidence:
        # any countermodel satisfies the premises, so the qualifiers it
        # makes true are consistent with them — free ``note_live`` entries
        # that spare the vacuity prefill a theory probe each.  A
        # substituted occurrence proves things about ``q[σ]``, not ``q``.
        raw = musfix is not None and all(not sub for sub in subs)
        applied = {
            q: ops.conj([substitute(q, sub) if sub else q for sub in subs]) for q in qualifiers
        }
        with backend.scoped():
            for premise in constr.concrete_premises():
                backend.assert_(premise)
            backend.assert_(ops.not_(constr.conclusion))
            statistics.validity_checks += 1
            # The whole pool is evaluated (not just the pending guards):
            # convicted guards need no further verdict, but their truth
            # values in the model are free vacuity harvest.
            values = backend.check_evaluating([applied[q] for q in qualifiers])
            if values is None:
                continue  # no countermodel at all: every guard valid here
            value_of = dict(zip(qualifiers, values))
            if raw:
                for q, value in value_of.items():
                    if value is True:
                        musfix.note_live(constr, q)
            for q in pending:
                if value_of[q] is True:
                    verdicts[q] = constr
                    continue
                # The model leaves this guard open: probe it individually
                # (the premises and negated conclusion stay asserted, and
                # the guard's selector is cached, so each probe is one
                # incremental solve).
                statistics.validity_checks += 1
                if backend.check_assuming((applied[q],)):
                    verdicts[q] = constr
                    if raw:
                        musfix.note_live(constr, q)
    return verdicts


def resolve_options(options: Optional[SolveOptions], minimize: Optional[bool]) -> SolveOptions:
    if minimize is not None:
        warnings.warn(
            "the minimize= keyword is deprecated; pass SolveOptions(minimize=...)",
            DeprecationWarning,
            stacklevel=3,
        )
        return replace(options if options is not None else SolveOptions(), minimize=minimize)
    return options if options is not None else SolveOptions()


class HornSolver:
    """Solves systems of Horn constraints over predicate unknowns."""

    def __init__(
        self,
        backend: Optional[SolverBackend] = None,
        validity_memo: Optional[Dict[Tuple[Tuple[Formula, ...], Formula], bool]] = None,
    ) -> None:
        self._backend = backend if backend is not None else IncrementalSolver()
        self.statistics = HornStatistics()
        # Validity of a *grounded* implication is a pure function of its
        # formulas, and the candidate-set search re-derives the same
        # grounded constraints for every candidate that leaves them
        # untouched — so verdicts are memoized for the solver's lifetime.
        # A caller owning many solver runs (the typecheck session during
        # enumeration) may pass a shared ``validity_memo`` so the verdicts
        # outlive any single run.
        self._validity_memo: Dict[Tuple[Tuple[Formula, ...], Formula], bool] = (
            validity_memo if validity_memo is not None else {}
        )

    @property
    def backend(self) -> SolverBackend:
        """The incremental backend issuing this solver's validity checks."""
        return self._backend

    # -- public API ----------------------------------------------------------

    def solve(
        self,
        constraints: Sequence[HornConstraint],
        spaces: SpacesLike,
        options: Optional[SolveOptions] = None,
        *,
        minimize: Optional[bool] = None,
    ) -> HornSolution:
        """Find assignments making every constraint valid.

        Unknowns that appear in constraints but have no qualifier space get
        the empty valuation ``True`` (they cannot constrain anything).
        Systems without abducible spaces take the classic greatest-fixpoint
        path; abducible spaces trigger the candidate-set search (and, for
        ``max_workers > 1``, the process portfolio).

        ``minimize`` as a keyword is a one-release deprecation shim for the
        old boolean API; pass ``SolveOptions(minimize=True)`` instead.
        """
        opts = resolve_options(options, minimize)
        space_map = as_space_map(spaces)
        abducibles = sorted(name for name, sp in space_map.items() if sp.abducible)
        if abducibles:
            for constr in constraints:
                target = constr.conclusion_unknown()
                if target is not None and target.name in abducibles:
                    raise ValueError(
                        f"abducible unknown {target.name!r} cannot appear as a "
                        f"conclusion (it is solved bottom-up): {constr!r}"
                    )
            if opts.max_workers > 1:
                from .portfolio import solve_portfolio

                return solve_portfolio(constraints, space_map, opts, solver=self)
            return self._solve_candidates(constraints, space_map, opts)

        solution = self._solve_fixpoint(constraints, space_map)
        if solution.solved:
            solution.candidates = (dict(solution.assignment),)
            if opts.minimize:
                solution.weakest = self._minimize(constraints, solution.assignment)
        return solution

    # -- candidate-set search ------------------------------------------------

    def search_candidates(
        self,
        constraints: Sequence[HornConstraint],
        spaces: SpacesLike,
        options: Optional[SolveOptions] = None,
        roots: Optional[Sequence[Assignment]] = None,
        lemmas: Sequence[MusLemma] = (),
        explore_limit: Optional[int] = None,
    ) -> CandidateSearchResult:
        """Breadth-first search over candidate abducible valuations.

        Each candidate fixes every abducible unknown to a subset of its
        space (in canonical space order); the classic fixpoint core runs on
        the grounded system.  A candidate is rejected as *vacuous* when a
        guard contradicts the concrete premises of **every** constraint
        mentioning its unknown — refuted even in the weakest demanding
        context (its declaration point), it is unestablishable outright.
        Contradicting only *some* contexts is fine: such a guard merely
        makes those program points unreachable, which is exactly what a
        branch condition is for.  A failed candidate feeds the failing
        constraint to the MUS enumerator, prunes the frontier, and
        branches into its single-qualifier strengthenings.

        ``roots`` seeds the frontier (default: the all-``True`` candidate);
        ``lemmas`` pre-loads MUSes learned elsewhere (the portfolio bus);
        ``explore_limit`` caps candidates evaluated this call, leaving the
        rest in ``frontier``.

        The search is *level-stopped*: the queue is size-ordered, so once
        a solution of total guard size ``k`` exists, the first pop of a
        size-``> k`` candidate ends the search (everything deeper is
        either a superset of a solution or a strictly stronger guard no
        weakest-first caller wants).  The level holding the solution is
        always finished first, so every minimal-size solution is found.
        A space's :attr:`~repro.horn.spaces.QualifierSpace.max_conjuncts`
        additionally stops branching past that valuation size.
        """
        opts = options if options is not None else SolveOptions()
        space_map = as_space_map(spaces)
        abducibles = {n: sp for n, sp in space_map.items() if sp.abducible}
        positives = {n: sp for n, sp in space_map.items() if not sp.abducible}
        capacity = max(1, opts.max_candidates)
        if explore_limit is None:
            explore_limit = 64 * capacity

        musfix = MusFixSolver(space_map, backend=self._backend, budget=opts.mus_budget)
        if lemmas:
            self.statistics.lemmas_shared += musfix.import_muses(lemmas)

        # The demanding contexts of each abducible: one representative
        # constraint per distinct concrete-premise tuple, weakest first so
        # the all-contexts vacuity check short-circuits fast on live guards.
        mentioning: Dict[str, List[HornConstraint]] = {name: [] for name in abducibles}
        for name in abducibles:
            contexts = {}
            for constr in constraints:
                if name in constr.premise_unknowns():
                    contexts.setdefault(constr.concrete_premises(), constr)
            mentioning[name] = sorted(contexts.values(), key=lambda c: len(c.concrete_premises()))

        if roots is None:
            roots = [{name: () for name in sorted(abducibles)}]
        queue: deque = deque()
        seen = set()
        for cand in roots:
            key = _candidate_key(cand)
            if key not in seen:
                seen.add(key)
                queue.append(dict(cand))

        solutions: List[Assignment] = []
        solution_guards: List[Dict[str, FrozenSet[Formula]]] = []
        failed_constr: Optional[HornConstraint] = None
        explored = 0
        best_size: Optional[int] = None

        # Flat systems (one abducible, no positives) get their whole
        # size-1 level classified by countermodel sweeps instead of one
        # grounded fixpoint per candidate; built lazily on the first
        # size-1 pop so a root that solves outright pays nothing.
        single_name = min(abducibles) if len(abducibles) == 1 and not positives else None
        screen: Optional[Dict[Formula, Optional[HornConstraint]]] = None
        screen_built = False

        while queue and explored < explore_limit and len(solutions) < capacity:
            candidate = queue.popleft()
            size = sum(len(candidate[name]) for name in abducibles)
            if best_size is not None and size > best_size:
                # Level stop: a weaker solution exists and this whole level
                # (the queue is size-ordered) can only strengthen it.
                queue.appendleft(candidate)
                break
            explored += 1
            self.statistics.candidates_explored += 1
            # One cancellation point per candidate valuation: each costs at
            # least one grounded fixpoint, so this is the search's natural
            # quantum.
            limits.checkpoint("horn_candidates")
            if musfix.dooms_everywhere(candidate, mentioning):
                self.statistics.candidates_pruned += 1
                continue
            guard = {name: frozenset(candidate[name]) for name in abducibles}
            if any(
                all(prev[name] <= guard[name] for name in abducibles) for prev in solution_guards
            ):
                continue  # dominated: a weaker solution already covers it
            if self._vacuous(musfix, mentioning, candidate):
                # Checked *before* the fixpoint: a vacuous guard's whole
                # superset cone is vacuous too, so the recorded MUS prunes
                # it at the smallest level instead of after n fixpoints.
                self.statistics.candidates_pruned += 1
                continue

            if single_name is not None and size == 1 and not screen_built:
                screen_built = True
                screen = screen_singletons(
                    self._backend,
                    self.statistics,
                    constraints,
                    single_name,
                    abducibles[single_name].qualifiers,
                    musfix,
                )
            if (
                screen is not None
                and size == 1
                and candidate[single_name]
                and candidate[single_name][0] in screen
            ):
                solved = screen[candidate[single_name][0]] is None
                original = screen[candidate[single_name][0]]
                assignment: Assignment = {}
            else:
                valuations = {name: ops.conj(quals) for name, quals in candidate.items()}
                grounded = [substitute_unknowns(c, valuations) for c in constraints]
                sub = self._solve_fixpoint(grounded, positives)
                solved = sub.solved
                assignment = sub.assignment
                original = sub.failed
                for orig, ground in zip(constraints, grounded):
                    if ground is sub.failed:
                        original = orig
                        break

            if solved:
                full = dict(assignment)
                full.update(candidate)
                solutions.append(full)
                solution_guards.append(guard)
                if best_size is None or size < best_size:
                    best_size = size
                continue

            failed_constr = original
            assert original is not None
            repairable = sorted(n for n in original.premise_unknowns() if n in abducibles)
            if single_name is not None and not screen_built:
                # Build the screen on the *first* failure (usually the
                # all-``True`` root): its countermodels feed the vacuity
                # harvest, so it must run before the prefill below or the
                # prefill re-proves every harvested liveness the hard way.
                screen_built = True
                screen = screen_singletons(
                    self._backend,
                    self.statistics,
                    constraints,
                    single_name,
                    abducibles[single_name].qualifiers,
                    musfix,
                )
            for name in repairable:
                # Enumerate against every demanding context, not just the
                # failing constraint: dooming needs a refutation in all of
                # them before a candidate may be dropped.
                musfix.prefill_contexts(mentioning[name], abducibles[name].qualifiers)
                for rep in mentioning[name]:
                    musfix.enumerate_muses(rep, abducibles[name].qualifiers)
            if repairable and len(queue):
                queue = deque(musfix.prune_everywhere(list(queue), mentioning))
            for name in repairable:
                space = abducibles[name]
                current = set(candidate[name])
                if space.max_conjuncts is not None and len(current) >= space.max_conjuncts:
                    continue  # guard at its size cap: no further strengthening
                for qualifier in space.qualifiers:
                    if qualifier in current:
                        continue
                    successor = dict(candidate)
                    successor[name] = tuple(
                        q for q in space.qualifiers if q in current or q == qualifier
                    )
                    key = _candidate_key(successor)
                    if key in seen:
                        continue
                    seen.add(key)
                    if musfix.dooms_everywhere(successor, mentioning):
                        self.statistics.candidates_pruned += 1
                        continue
                    if len(queue) < capacity:
                        queue.append(successor)
                    # else: frontier full — the overflow branch is dropped,
                    # which is what makes max_candidates=1 a greedy search.

        self.statistics.candidates_pruned += musfix.statistics.candidates_pruned
        self.statistics.muses_enumerated += musfix.statistics.muses_enumerated
        return CandidateSearchResult(
            solutions=tuple(solutions),
            frontier=tuple(queue),
            failed=failed_constr,
            lemmas=tuple(musfix.export_muses()),
        )

    def _vacuous(
        self,
        musfix: MusFixSolver,
        mentioning: Dict[str, List[HornConstraint]],
        candidate: Assignment,
    ) -> bool:
        """Does some guard contradict *every* demanding context of its
        unknown?  (Contexts whose premises are contradictory on their own
        don't count against the guard — :meth:`MusFixSolver.is_vacuous`
        answers ``False`` for those.)"""
        for name, constrs in mentioning.items():
            valuation = candidate.get(name)
            if not valuation or not constrs:
                continue
            if all(musfix.is_vacuous(constr, valuation) for constr in constrs):
                return True
        return False

    def _solve_candidates(
        self,
        constraints: Sequence[HornConstraint],
        space_map: Dict[str, QualifierSpace],
        options: SolveOptions,
    ) -> HornSolution:
        result = self.search_candidates(constraints, space_map, options)
        return self.assemble_solution(
            constraints, result.solutions, result.failed, options, space_map
        )

    def assemble_solution(
        self,
        constraints: Sequence[HornConstraint],
        solutions: Sequence[Assignment],
        failed: Optional[HornConstraint],
        options: SolveOptions,
        spaces: SpacesLike,
    ) -> HornSolution:
        """Rank surviving candidates weakest-first into a :class:`HornSolution`.

        Only minimal-total-size solutions survive; deeper ones are either
        supersets of a minimal guard or strictly stronger strengthenings no
        weakest-first caller wants.  Because every search (serial, or each
        portfolio branch) finishes the level a solution lives on before
        stopping, the minimal level is explored exhaustively everywhere —
        which is what makes this filter process-count independent.
        """
        space_map = as_space_map(spaces)
        names = sorted(n for n, sp in space_map.items() if sp.abducible)

        def total_size(sol: Assignment) -> int:
            return sum(len(sol.get(name, ())) for name in names)

        solutions = list(solutions)
        if solutions:
            best = min(total_size(sol) for sol in solutions)
            solutions = [sol for sol in solutions if total_size(sol) == best]
        survivors = order_solutions(filter_dominated(solutions, names), names, space_map)
        survivors = survivors[: max(1, options.max_candidates)]
        if not survivors:
            return HornSolution(False, {}, failed=failed)
        best = survivors[0]
        solution = HornSolution(True, dict(best), candidates=tuple(dict(s) for s in survivors))
        if options.minimize:
            solution.weakest = self._minimize(constraints, best)
        return solution

    # -- fixpoint internals --------------------------------------------------

    def _solve_fixpoint(
        self,
        constraints: Sequence[HornConstraint],
        space_map: Dict[str, QualifierSpace],
    ) -> HornSolution:
        """The classic greatest-fixpoint core over one candidate."""
        assignment = self._initial_assignment(constraints, space_map)
        weakening = [c for c in constraints if not c.is_definite()]
        definite = [c for c in constraints if c.is_definite()]

        changed = True
        while changed:
            changed = False
            self.statistics.fixpoint_rounds += 1
            limits.checkpoint()  # wall-clock cancellation per weakening round
            for constr in weakening:
                if self._weaken(constr, assignment):
                    changed = True

        solution = HornSolution(True, dict(assignment))
        failed = self._first_invalid_definite(definite, assignment)
        if failed is not None:
            solution.solved = False
            solution.failed = failed
        return solution

    def _first_invalid_definite(
        self,
        definite: Sequence[HornConstraint],
        assignment: Assignment,
    ) -> Optional[HornConstraint]:
        """First definite constraint the assignment does not validate.

        Grounded constraints sharing a premises tuple (the common case in
        abduction, where one goal splits into per-conjunct constraints
        under the same context) are probed in one backend solve: the
        premises and the negated conjunction of conclusions are asserted
        once, and on SAT the counterexample model convicts every
        conclusion it falsifies.  Only conclusions the model leaves open
        fall back to an individual validity check, so the first-failure
        order of the sequential scan is preserved exactly.
        """
        grounded = []
        groups: Dict[Tuple[Formula, ...], List[Formula]] = {}
        for constr in definite:
            premises = tuple(apply_assignment(p, assignment) for p in constr.premises)
            conclusion = apply_assignment(constr.conclusion, assignment)
            grounded.append((constr, premises, conclusion))
            groups.setdefault(premises, []).append(conclusion)
        probed = set()
        for constr, premises, conclusion in grounded:
            key = (premises, conclusion)
            if key not in self._validity_memo and premises not in probed:
                probed.add(premises)
                self._probe_group(premises, groups[premises])
            verdict = self._validity_memo.get(key)
            if verdict is None:
                self.statistics.validity_checks += 1
                verdict = self._backend.is_valid_implication(list(premises), conclusion)
                self._validity_memo[key] = verdict
            if not verdict:
                return constr
        return None

    def _probe_group(self, premises: Tuple[Formula, ...], conclusions: List[Formula]) -> None:
        """One batched probe resolving as many of the group's verdicts as
        a single model can; results land in the validity memo."""
        pending = [c for c in conclusions if (premises, c) not in self._validity_memo]
        if not pending:
            return
        if any(mentions_sets(f) for f in list(premises) + pending):
            return  # set atoms need the exact one-shot pipeline
        self.statistics.validity_checks += 1
        with self._backend.scoped():
            for premise in premises:
                self._backend.assert_(premise)
            self._backend.assert_(ops.not_(ops.conj(pending)))
            values = self._backend.check_evaluating(pending)
        if values is None:
            for conclusion in pending:
                self._validity_memo[(premises, conclusion)] = True
            return
        for conclusion, value in zip(pending, values):
            if value is False:
                self._validity_memo[(premises, conclusion)] = False

    @staticmethod
    def _initial_assignment(
        constraints: Sequence[HornConstraint],
        space_map: Dict[str, QualifierSpace],
    ) -> Assignment:
        names = set()
        for constr in constraints:
            names |= constr.unknowns()
        return {name: space_map[name].qualifiers if name in space_map else () for name in names}

    def _weaken(self, constr: HornConstraint, assignment: Assignment) -> bool:
        """Prune the conclusion unknown's valuation; True if it shrank."""
        target = constr.conclusion_unknown()
        assert target is not None
        current = assignment[target.name]
        if not current:
            return False
        premises = [apply_assignment(p, assignment) for p in constr.premises]
        pending = dict(target.substitution)
        goals = [substitute(q, pending) if pending else q for q in current]

        # Set-sensitive constraints go through is_valid_implication per
        # qualifier (the backend conjoins them so set elimination sees one
        # universe); the batched counterexample path below cannot read set
        # atoms back from a model.
        if any(mentions_sets(p) for p in premises) or any(mentions_sets(g) for g in goals):
            self.statistics.validity_checks += 1
            if self._backend.is_valid_implication(premises, ops.conj(goals)):
                return False
            kept: List[Formula] = []
            for qualifier, goal in zip(current, goals):
                self.statistics.validity_checks += 1
                if self._backend.is_valid_implication(premises, goal):
                    kept.append(qualifier)
        else:
            # The premises are asserted (and encoded) once for the whole
            # sweep.  The fast-path query doubles as a batched probe: when
            # the full valuation is not entailed, the counterexample model
            # is read back and every qualifier it falsifies is pruned in
            # one pass; only qualifiers the model happens to satisfy fall
            # back to a per-qualifier validity check.
            kept = []
            retry: List[Tuple[Formula, Formula]] = []
            with self._backend.scoped():
                for premise in premises:
                    self._backend.assert_(premise)
                with self._backend.scoped():
                    self._backend.assert_(ops.not_(ops.conj(goals)))
                    self.statistics.validity_checks += 1
                    values = self._backend.check_evaluating(goals)
                if values is None:
                    return False  # the whole current valuation is entailed
                for qualifier, goal, value in zip(current, goals, values):
                    if value is False:
                        self.statistics.model_pruned_qualifiers += 1
                    else:
                        retry.append((qualifier, goal))
                for qualifier, goal in retry:
                    with self._backend.scoped():
                        self._backend.assert_(ops.not_(goal))
                        self.statistics.validity_checks += 1
                        if not self._backend.check():
                            kept.append(qualifier)

        dropped = len(current) - len(kept)
        if dropped:
            assignment[target.name] = tuple(kept)
            self.statistics.weakenings += 1
            self.statistics.pruned_qualifiers += dropped
        return dropped > 0

    def _constraint_valid(self, constr: HornConstraint, assignment: Assignment) -> bool:
        premises = [apply_assignment(p, assignment) for p in constr.premises]
        conclusion = apply_assignment(constr.conclusion, assignment)
        key = (tuple(premises), conclusion)
        cached = self._validity_memo.get(key)
        if cached is not None:
            return cached
        self.statistics.validity_checks += 1
        verdict = self._backend.is_valid_implication(premises, conclusion)
        self._validity_memo[key] = verdict
        return verdict

    # -- weakest-solution minimization ---------------------------------------

    def _minimize(
        self, constraints: Sequence[HornConstraint], assignment: Assignment
    ) -> Assignment:
        """Greedily drop qualifiers while every constraint stays valid.

        Dropping a qualifier from ``L[P]`` keeps constraints with ``P`` in
        the conclusion valid (fewer conjuncts to prove) but may break
        constraints with ``P`` in the premises, so each tentative drop is
        re-validated against the constraints mentioning ``P``.
        """
        weakest: Dict[str, List[Formula]] = {
            name: list(valuation) for name, valuation in assignment.items()
        }
        by_premise: Dict[str, List[HornConstraint]] = {name: [] for name in weakest}
        for constr in constraints:
            for name in constr.premise_unknowns():
                by_premise.setdefault(name, []).append(constr)

        for name in sorted(weakest):
            affected = by_premise.get(name, ())
            for qualifier in list(weakest[name]):
                weakest[name].remove(qualifier)
                trial = {n: tuple(v) for n, v in weakest.items()}
                if not all(self._constraint_valid(c, trial) for c in affected):
                    weakest[name].append(qualifier)
        return {name: tuple(valuation) for name, valuation in weakest.items()}
