"""End-to-end tests for the refinement type checker (Sec. 3 of the paper).

The paper's running examples: ``max`` and ``abs`` are typed against
refinement signatures, their subtyping obligations become Horn constraints,
and the Horn solver either validates the program (definite constraints) or
infers the refinements (predicate unknowns), whose valuations the tests
assert exactly.
"""

import warnings

import pytest

from repro.horn import SolveOptions
from repro.logic import ops
from repro.logic.formulas import Unknown, Var, value_var
from repro.logic.sorts import INT
from repro.smt.solver import IncrementalSolver
from repro.syntax import (
    ContextualType,
    annot,
    app,
    arrow,
    if_,
    int_type,
    lam,
    let,
    lit,
    parse_type,
    v,
)
from repro.syntax.types import INT_BASE
from repro.typecheck import EMPTY, Environment, TypecheckSession

x = ops.var("x", INT)
y = ops.var("y", INT)
nu = value_var(INT)

GEQ = "a:Int -> b:Int -> {Bool | nu <==> a >= b}"
NEG = "a:Int -> {Int | nu == 0 - a}"
INC = "a:Int -> {Int | nu == a + 1}"


def component_env(**components: str) -> Environment:
    env = EMPTY
    for name, signature in components.items():
        env = env.bind(name, parse_type(signature))
    return env


def max_term():
    return lam("x", "y", body=if_(app(v("geq"), v("x"), v("y")), v("x"), v("y")))


def abs_term():
    return lam("x", body=if_(app(v("geq"), v("x"), lit(0)), v("x"), app(v("neg"), v("x"))))


class TestEnvironment:
    def test_bind_lookup_shadowing(self):
        env = EMPTY.bind("x", int_type()).bind("x", int_type(ops.ge(nu, y)))
        assert env.lookup("x") == int_type(ops.ge(nu, y))
        assert env.lookup("missing") is None
        assert "x" in env and "missing" not in env

    def test_embedding_substitutes_value_var(self):
        env = EMPTY.bind("x", int_type(ops.ge(nu, ops.int_lit(0)))).assume(ops.lt(x, y))
        assert env.embedding() == [ops.ge(x, ops.int_lit(0)), ops.lt(x, y)]

    def test_embedding_skips_shadowed_refinements(self):
        env = EMPTY.bind("x", int_type(ops.ge(nu, ops.int_lit(7)))).bind("x", int_type())
        assert env.embedding() == []

    def test_scope_candidates_are_scalars_only(self):
        env = component_env(geq=GEQ).bind("x", int_type())
        assert env.scope_candidates() == [x]

    def test_assume_true_is_identity(self):
        env = EMPTY.assume(ops.bool_lit(True))
        assert env.assumptions == ()


class TestInference:
    def test_variable_selfification(self):
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type(ops.ge(nu, ops.int_lit(0))))
        inferred = session.infer(env, v("x"))
        assert inferred.refinement == ops.and_(ops.ge(nu, ops.int_lit(0)), ops.eq(nu, x))

    def test_constants(self):
        session = TypecheckSession()
        assert session.infer(EMPTY, lit(3)).refinement == ops.eq(nu, ops.int_lit(3))
        bool_ref = session.infer(EMPTY, lit(True)).refinement
        assert bool_ref == ops.var("_v", ops.bool_lit(True).sort)

    def test_dependent_application_substitutes_argument(self):
        session = TypecheckSession()
        env = component_env(inc=INC).bind("x", int_type())
        inferred = session.infer(env, app(v("inc"), v("x")))
        assert inferred.refinement == ops.eq(nu, ops.plus(x, ops.int_lit(1)))

    def test_nested_application_produces_contextual_type(self):
        session = TypecheckSession()
        env = component_env(inc=INC).bind("x", int_type())
        inferred = session.infer(env, app(v("inc"), app(v("inc"), v("x"))))
        assert isinstance(inferred, ContextualType)
        ((name, bound),) = inferred.bindings
        assert bound.refinement == ops.eq(nu, ops.plus(x, ops.int_lit(1)))
        assert inferred.body.refinement == ops.eq(nu, ops.plus(Var(name, INT), ops.int_lit(1)))

    def test_annotation_checks_and_returns(self):
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type(ops.ge(nu, ops.int_lit(1))))
        goal = int_type(ops.ge(nu, ops.int_lit(0)))
        assert session.infer(env, annot(v("x"), goal)) == goal
        assert session.solve().solved


class TestMaxExample:
    def test_concrete_signature_checks(self):
        """All obligations are definite: the checker validates max outright."""
        env = component_env(geq=GEQ)
        sig = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        session = TypecheckSession()
        session.check_program(max_term(), sig, env, where="max")
        assert session.constraints, "subtyping must have produced constraints"
        assert all(c.is_definite() for c in session.constraints)
        assert session.solve().solved

    def test_inferred_postcondition(self):
        """Liquid inference: a fresh unknown takes the place of the result
        refinement and the Horn solver discovers x <= nu && y <= nu."""
        env = component_env(geq=GEQ)
        session = TypecheckSession()
        inner = env.bind("x", int_type()).bind("y", int_type())
        result = session.fresh_scalar(inner, INT_BASE)
        sig = arrow("x", int_type(), arrow("y", int_type(), result))
        session.check(env, max_term(), sig, where="max")
        spec = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        session.subtype(env, sig, spec, where="max-spec")
        outcome = session.solve(SolveOptions(minimize=True))
        assert outcome.solved
        unknown = result.refinement
        assert isinstance(unknown, Unknown)
        valuation = set(outcome.assignment[unknown.name])
        assert ops.le(x, nu) in valuation
        assert ops.le(y, nu) in valuation
        assert ops.le(nu, x) not in valuation
        assert set(outcome.weakest[unknown.name]) == {ops.le(x, nu), ops.le(y, nu)}

    def test_guards_are_required(self):
        """Without the branch guard the obligations would be invalid — the
        then-branch constraint must carry x >= y as a premise."""
        env = component_env(geq=GEQ)
        sig = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        session = TypecheckSession()
        session.check_program(max_term(), sig, env, where="max")
        then_constraints = [
            c for c in session.constraints if any("then" in p for p in c.provenance)
        ]
        assert then_constraints
        assert all(ops.ge(x, y) in c.premises for c in then_constraints)


class TestAbsExample:
    def test_concrete_signature_checks(self):
        env = component_env(geq=GEQ, neg=NEG)
        sig = parse_type("x:Int -> {Int | nu >= 0 && nu >= x}")
        session = TypecheckSession()
        session.check_program(abs_term(), sig, env, where="abs")
        assert session.solve().solved

    def test_inferred_postcondition_uses_literal_candidates(self):
        env = component_env(geq=GEQ, neg=NEG)
        session = TypecheckSession(literals=[ops.int_lit(0)])
        inner = env.bind("x", int_type())
        result = session.fresh_scalar(inner, INT_BASE)
        sig = arrow("x", int_type(), result)
        session.check(env, abs_term(), sig, where="abs")
        session.subtype(env, sig, parse_type("x:Int -> {Int | nu >= 0}"), "abs-spec")
        outcome = session.solve()
        assert outcome.solved
        valuation = set(outcome.assignment[result.refinement.name])
        assert ops.le(ops.int_lit(0), nu) in valuation


class TestCheckForms:
    def test_let_binding(self):
        env = component_env(inc=INC).bind("x", int_type())
        goal = int_type(ops.eq(nu, ops.plus(x, ops.int_lit(1))))
        session = TypecheckSession()
        session.check(env, let("z", app(v("inc"), v("x")), v("z")), goal, "let")
        assert session.solve().solved

    def test_nested_application_against_goal(self):
        """inc (inc x) : {Int | nu == x + 2} via a contextual type."""
        env = component_env(inc=INC).bind("x", int_type())
        goal = int_type(ops.eq(nu, ops.plus(x, ops.int_lit(2))))
        session = TypecheckSession()
        session.check(env, app(v("inc"), app(v("inc"), v("x"))), goal, "nested")
        assert session.solve().solved

    def test_lambda_binder_renaming(self):
        """The lambda may name its binder differently from the goal type."""
        env = component_env(inc=INC)
        sig = parse_type("n:Int -> {Int | nu == n + 1}")
        session = TypecheckSession()
        session.check_program(lam("m", body=app(v("inc"), v("m"))), sig, env)
        assert session.solve().solved

    def test_higher_order_argument(self):
        """A lambda argument is checked against the component's arrow
        domain (introduction terms cannot be inferred)."""
        twice = parse_type("f:(Int -> {Int | nu >= 0}) -> x:Int -> {Int | nu >= 0}")
        env = EMPTY.bind("twice", twice)
        session = TypecheckSession()
        inferred = session.infer(env, app(v("twice"), lam("z", body=lit(1))))
        assert inferred.arg_name == "x"
        assert session.solve().solved

    def test_datatype_arguments_are_covariant(self):
        """List {Int | nu > 0} <: List Int holds; the converse must emit a
        failing element-level obligation rather than being dropped."""
        from repro.syntax import data_type

        positive = data_type("List", [int_type(ops.gt(nu, ops.int_lit(0)))])
        plain = data_type("List", [int_type()])
        session = TypecheckSession()
        session.subtype(EMPTY, positive, plain, "covariant")
        assert session.solve().solved
        failing = TypecheckSession()
        failing.subtype(EMPTY, plain, positive, "covariant-bad")
        outcome = failing.solve()
        assert not outcome.solved
        assert "type argument 0" in outcome.failed.origin()

    def test_contravariant_argument_subtyping(self):
        """f : {Int | nu >= 0} -> Int is usable where Int -> Int flows the
        other way: sub's domain must be weaker."""
        session = TypecheckSession()
        strong_domain = arrow("x", int_type(ops.ge(nu, ops.int_lit(0))), int_type())
        weak_domain = arrow("x", int_type(), int_type())
        session.subtype(EMPTY, weak_domain, strong_domain, "contra")
        assert session.solve().solved
        failing = TypecheckSession()
        failing.subtype(EMPTY, strong_domain, weak_domain, "contra-bad")
        assert not failing.solve().solved


class TestSessionBackend:
    def test_one_backend_serves_the_whole_derivation(self):
        backend = IncrementalSolver()
        session = TypecheckSession(backend=backend)
        env = component_env(geq=GEQ)
        sig = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        session.check_program(max_term(), sig, env, where="max")
        assert session.solve().solved
        queries_after_first = backend.statistics.sat_queries
        assert queries_after_first > 0
        # a second solve on the same session reuses the same backend (and
        # its learned state); the solver object is fresh each time, but the
        # session's shared validity memo answers every grounded implication
        # it has already settled — an identical re-solve is query-free
        first_solver = session.last_solver
        assert session.solve().solved
        assert session.last_solver is not first_solver
        assert session.last_solver.backend is backend
        assert backend.statistics.sat_queries == queries_after_first
        # re-asserted premises were not re-encoded
        assert backend.statistics.reused_assertions > 0

    def test_default_backend_is_incremental(self):
        session = TypecheckSession()
        assert isinstance(session.backend, IncrementalSolver)


class TestSchemaInstantiation:
    def test_predicate_variables_become_fresh_unknowns(self):
        from repro.logic.sorts import INT as int_sort
        from repro.syntax import PredSig, ScalarType, TypeSchema

        body = arrow("x", int_type(), ScalarType(INT_BASE, Unknown("P")))
        schema = TypeSchema((), (PredSig("P", (int_sort,)),), body)
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type())
        instantiated = session.instantiate(schema, env)
        unknown = instantiated.result_type.refinement
        assert isinstance(unknown, Unknown)
        assert unknown.name != "P"
        assert unknown.name in session.spaces
        assert len(session.spaces[unknown.name]) > 0

    def test_schema_bound_variable_is_instantiated_on_lookup(self):
        from repro.syntax import PredSig, ScalarType, TypeSchema

        body = arrow("a", int_type(), ScalarType(INT_BASE, Unknown("P")))
        schema = TypeSchema((), (PredSig("P", (INT,)),), body)
        session = TypecheckSession()
        env = EMPTY.bind("f", schema).bind("x", int_type())
        inferred = session.infer(env, app(v("f"), v("x")))
        assert isinstance(inferred.refinement, Unknown)
        assert inferred.refinement.name in session.spaces


class TestSolveOptionsShim:
    """``solve(minimize=True)`` still works for one release, but warns and
    routes through :class:`SolveOptions`; the modern spelling is silent and
    agrees with the legacy one."""

    def build_session(self):
        env = component_env(geq=GEQ)
        session = TypecheckSession()
        inner = env.bind("x", int_type()).bind("y", int_type())
        result = session.fresh_scalar(inner, INT_BASE)
        sig = arrow("x", int_type(), arrow("y", int_type(), result))
        session.check(env, max_term(), sig, where="max")
        spec = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        session.subtype(env, sig, spec, where="max-spec")
        return session

    def test_minimize_keyword_warns_and_still_minimizes(self):
        with pytest.warns(DeprecationWarning, match="SolveOptions"):
            legacy = self.build_session().solve(minimize=True)
        assert legacy.solved and legacy.weakest is not None

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            modern = self.build_session().solve(SolveOptions(minimize=True))
        assert modern.solved
        assert modern.weakest == legacy.weakest
        assert modern.assignment == legacy.assignment

    def test_classic_path_reports_its_single_candidate(self):
        outcome = self.build_session().solve()
        assert outcome.solved
        assert outcome.candidates == (outcome.assignment,)
