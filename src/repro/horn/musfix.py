"""MUSFix: MARCO-style enumeration of minimal unsatisfiable subsets.

The candidate-set Horn search (Sec. 5 of the paper) prunes its frontier
wholesale: the subsets of an abducible unknown's qualifier space that are
*inconsistent with a constraint's concrete premises* make that constraint
hold only vacuously — the guard renders its program point unreachable.
Those regions are summarized by their minimal elements: **minimal
unsatisfiable subsets** (MUSes) of the qualifier pool relative to one
constraint's unknown-free premises.  A MUS against a *single* constraint
is a lemma, not yet a death sentence (killing one match arm is what a
branch condition is for); a candidate is dropped — without a single
theory query — once known MUSes refute one of its guards in **every**
context demanding that unknown (:meth:`MusFixSolver.dooms_everywhere`),
which makes the guard unsatisfiable at its own declaration point.

Enumeration is the MARCO algorithm (Liffiton et al.): a propositional
"map" solver — one persistent :class:`repro.smt.sat.SatSolver` per
(constraint, pool) pair, variable *i* meaning "qualifier *i* is in the
subset" — proposes unexplored seeds.  Each seed is checked against the
theory through the shared incremental backend: a consistent seed is
*grown* into a maximal satisfiable subset (MSS) and the map learns that
every future seed must leave the MSS (at least one variable outside it is
true); an inconsistent seed is *shrunk* by linear deletion into a MUS,
which is recorded and blocked (at least one of its members is false).
Blocking clauses carve the power set down monotonically, so seeds never
repeat and the map going unsatisfiable means the lattice is exhausted.
Enumeration is budgeted (``mus_budget`` theory checks per pool) and
resumable: the map solver keeps its blocking clauses, so a later failure
of the same constraint continues where the last call stopped.

MUSes double as the portfolio's shared lemmas: they mention only the
constraint and qualifier formulas (no solver state), so a MUS learned on
one candidate branch prunes every other branch's frontier —
:meth:`MusFixSolver.export_muses` / :meth:`MusFixSolver.import_muses` are
the two ends of that bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .. import limits
from ..logic.formulas import Formula
from ..smt.interface import SolverBackend
from ..smt.sat import SatSolver
from ..smt.sets import mentions_sets
from .constraints import HornConstraint
from .spaces import QualifierSpace

#: A candidate assignment restricted to what pruning needs: unknown name to
#: the qualifiers currently in its valuation.
CandidateLike = Mapping[str, Sequence[Formula]]

#: A portfolio lemma: the constraint a MUS refutes, plus its members.
MusLemma = Tuple[HornConstraint, Tuple[Formula, ...]]


@dataclass
class MusFixStatistics:
    """Counters describing one enumerator's work."""

    muses_enumerated: int = 0
    theory_checks: int = 0
    map_seeds: int = 0
    lemmas_imported: int = 0
    candidates_pruned: int = 0


@dataclass
class _MarcoState:
    """Resumable MARCO state for one (constraint, qualifier pool) pair."""

    pool: Tuple[Formula, ...]
    map: SatSolver = field(default_factory=SatSolver)
    #: Every seed the map proposed, in order (introspection: tests assert
    #: that blocking makes them unique).
    seeds: List[FrozenSet[int]] = field(default_factory=list)
    budget_left: int = 0
    complete: bool = False


class MusFixSolver:
    """Enumerates MUSes of refuted qualifier sets to prune candidates."""

    def __init__(
        self,
        spaces: Dict[str, QualifierSpace],
        backend: Optional[SolverBackend] = None,
        budget: int = 64,
    ) -> None:
        if backend is None:
            from ..smt.solver import IncrementalSolver

            backend = IncrementalSolver()
        self.spaces = spaces
        self.statistics = MusFixStatistics()
        self._backend = backend
        self._budget = budget
        self._states: Dict[Tuple[HornConstraint, Tuple[Formula, ...]], _MarcoState] = {}
        #: Known MUSes per constraint (enumerated here or imported from the
        #: portfolio lemma bus), as frozensets plus the ordered originals.
        self._mus_sets: Dict[HornConstraint, List[FrozenSet[Formula]]] = {}
        self._mus_order: Dict[HornConstraint, List[Tuple[Formula, ...]]] = {}
        #: Vacuity memo keyed by (concrete premises, valuation): many
        #: constraints share one premise context (same program point), so
        #: one theory check answers for all of them.  The value is the
        #: shrunk inconsistent core, or ``None`` when consistent.
        self._vacuity: Dict[
            Tuple[Tuple[Formula, ...], FrozenSet[Formula]], Optional[Tuple[Formula, ...]]
        ] = {}
        #: Premise tuples found contradictory on their own: their vacuity
        #: entries are blanket bookkeeping, not model evidence.
        self._dead_contexts: set = set()

    # -- the MARCO loop ------------------------------------------------------

    def enumerate_muses(
        self, constraint: HornConstraint, valuation: Sequence[Formula]
    ) -> List[List[Formula]]:
        """Minimal subsets of ``valuation`` inconsistent with the concrete
        premises of ``constraint`` — the subsets that refute it as a guard
        (any candidate containing one can only satisfy the constraint
        vacuously).

        Runs the MARCO loop until the power set is exhausted or the theory
        budget is spent; every known MUS inside ``valuation`` is returned,
        including imported ones.  Calling again resumes enumeration.
        """
        state = self._state(constraint, tuple(valuation))
        self._run_marco(constraint, state)
        members = set(valuation)
        return [
            list(mus)
            for mus, mus_set in zip(
                self._mus_order.get(constraint, []), self._mus_sets.get(constraint, [])
            )
            if mus_set <= members
        ]

    def _state(self, constraint: HornConstraint, pool: Tuple[Formula, ...]) -> _MarcoState:
        key = (constraint, pool)
        if key not in self._states:
            self._states[key] = _MarcoState(pool=pool, budget_left=self._budget)
        return self._states[key]

    def _run_marco(self, constraint: HornConstraint, state: _MarcoState) -> None:
        if state.complete or state.budget_left <= 0 or not state.pool:
            return
        hard = constraint.concrete_premises()
        with self._backend.scoped():
            for premise in hard:
                self._backend.assert_(premise)
            if not self._probe(state, ()):
                # The constraint's own premises are contradictory: it is
                # vacuous for every valuation, which is no valuation's
                # fault — there is nothing to prune.
                state.complete = True
                return
            n = len(state.pool)
            while state.budget_left > 0 and not state.complete:
                result = state.map.solve()
                if not result.satisfiable:
                    state.complete = True
                    break
                seed = [i for i in range(1, n + 1) if result.model.get(i, False)]
                state.seeds.append(frozenset(seed))
                self.statistics.map_seeds += 1
                if self._probe(state, seed):
                    self._grow(state, seed, n)
                else:
                    self._shrink(constraint, state, seed)

    def _grow(self, state: _MarcoState, seed: List[int], n: int) -> None:
        """Grow a consistent seed toward an MSS, then block its down-set.

        Blocking the down-set of *any* consistent set is sound (all its
        subsets are consistent, so none is a MUS) — which makes running out
        of budget mid-grow harmless.
        """
        mss = list(seed)
        inside = set(seed)
        for j in range(1, n + 1):
            if j in inside:
                continue
            if state.budget_left <= 0:
                break
            if self._probe(state, mss + [j]):
                mss.append(j)
                inside.add(j)
        blocking = [j for j in range(1, n + 1) if j not in inside]
        if not blocking:
            state.complete = True  # the whole pool is consistent: no MUSes
        else:
            state.map.add_clause(blocking)

    def _shrink(self, constraint: HornConstraint, state: _MarcoState, seed: List[int]) -> None:
        """Shrink an inconsistent seed by linear deletion; record the MUS.

        Supersets of any inconsistent set are blocked either way (they are
        inconsistent too, so none is an MSS and no MUS hides above them);
        the core is *recorded* as a MUS only when the deletion pass ran to
        completion, since an interrupted shrink is not yet minimal.
        """
        core = list(seed)
        minimal = True
        for j in list(core):
            if state.budget_left <= 0:
                minimal = False
                break
            trial = [k for k in core if k != j]
            if not self._probe(state, trial):
                core = trial
        state.map.add_clause([-j for j in core] or [1])
        if minimal:
            self._record_mus(constraint, tuple(state.pool[j - 1] for j in core))

    def _probe(self, state: _MarcoState, indices: Sequence[int]) -> bool:
        """Theory-check a subset against the asserted hard premises."""
        state.budget_left -= 1
        self.statistics.theory_checks += 1
        # The per-pool ``mus_budget`` bounds each enumerator's *total*
        # work; this checkpoint is the global budget's view of the same
        # quantum, so one deadline governs MUS enumeration too.
        limits.checkpoint("mus_theory_checks")
        return self._backend.check_assuming(state.pool[i - 1] for i in indices)

    def _record_mus(
        self, constraint: HornConstraint, mus: Tuple[Formula, ...], enumerated: bool = True
    ) -> bool:
        known = self._mus_sets.setdefault(constraint, [])
        mus_set = frozenset(mus)
        if any(mus_set == existing for existing in known):
            return False
        known.append(mus_set)
        self._mus_order.setdefault(constraint, []).append(mus)
        if enumerated:
            self.statistics.muses_enumerated += 1
        return True

    # -- candidate pruning ---------------------------------------------------

    def prune_candidates(
        self,
        candidates: Sequence[Dict[str, Sequence[Formula]]],
        constraint: HornConstraint,
    ) -> List[Dict[str, Sequence[Formula]]]:
        """Drop every candidate containing a known MUS of ``constraint``.

        A candidate contains a MUS when the valuation it assigns to one of
        the constraint's premise unknowns is a superset of it — such a
        valuation is inconsistent exactly where the constraint applies, so
        no strengthening can ever rescue the candidate.
        """
        survivors = [c for c in candidates if not self.dooms(c, constraint)]
        self.statistics.candidates_pruned += len(candidates) - len(survivors)
        return list(survivors)

    def prune_everywhere(
        self,
        candidates: Sequence[Dict[str, Sequence[Formula]]],
        mentioning: Mapping[str, Sequence[HornConstraint]],
    ) -> List[Dict[str, Sequence[Formula]]]:
        """Drop every candidate some valuation of which is known-vacuous in
        *all* of its demanding contexts (see :meth:`dooms_everywhere`)."""
        survivors = [c for c in candidates if not self.dooms_everywhere(c, mentioning)]
        self.statistics.candidates_pruned += len(candidates) - len(survivors)
        return survivors

    def dooms_everywhere(
        self,
        candidate: CandidateLike,
        mentioning: Mapping[str, Sequence[HornConstraint]],
    ) -> bool:
        """Does some valuation of ``candidate`` contain a known MUS of
        *every* constraint mentioning that unknown?

        A guard inconsistent with one demanding context merely makes that
        program point unreachable — a legitimate branch condition.  Only a
        guard refuted in **all** the contexts where its unknown is demanded
        (equivalently, at the weakest of them — its own declaration point)
        is unestablishable outright, so this is the sound frontier prune
        for condition abduction.  MUS knowledge is partial (budgeted), so
        a ``False`` here is only "not yet known doomed".
        """
        for name, valuation in candidate.items():
            constrs = mentioning.get(name)
            if not constrs or not valuation:
                continue
            members = set(valuation)
            if all(
                any(mus <= members for mus in self._mus_sets.get(constr, []))
                for constr in constrs
            ):
                return True
        return False

    def dooms(self, candidate: CandidateLike, constraint: Optional[HornConstraint] = None) -> bool:
        """Does ``candidate`` contain a known MUS (of ``constraint``, or of
        any constraint when none is given)?"""
        items = (
            [(constraint, self._mus_sets.get(constraint, []))]
            if constraint is not None
            else list(self._mus_sets.items())
        )
        for constr, muses in items:
            if not muses:
                continue
            names = constr.premise_unknowns()
            for name, valuation in candidate.items():
                if name not in names:
                    continue
                members = set(valuation)
                if any(mus <= members for mus in muses):
                    return True
        return False

    def note_live(self, constraint: HornConstraint, qualifier: Formula) -> None:
        """Record outside model evidence that ``qualifier`` is consistent
        with the constraint's concrete premises — a free ``None`` entry in
        the vacuity memo, no theory check spent.

        Only sound on *raw-occurrence* evidence: the caller must have seen
        a model of the premises satisfying ``qualifier`` itself (not some
        substituted instance of it).
        """
        key = (constraint.concrete_premises(), frozenset((qualifier,)))
        self._vacuity.setdefault(key, None)

    def prefill_contexts(
        self, constraints: Sequence[HornConstraint], qualifiers: Sequence[Formula]
    ) -> None:
        """Prefill vacuity over several demanding contexts of one unknown,
        strongest (most premises) first, flowing live verdicts down the
        premise-subset order: a model of a superset context is a model of
        every subset context, so liveness there is liveness here for free.
        Dead contexts prove nothing — their blanket ``None`` entries are
        bookkeeping, not models — and are never propagated from.
        """
        ordered = sorted(constraints, key=lambda c: -len(c.concrete_premises()))
        for index, constr in enumerate(ordered):
            self.prefill_vacuity(constr, qualifiers)
            hard = constr.concrete_premises()
            if hard in self._dead_contexts:
                continue
            strong = set(hard)
            live = [
                q
                for q in qualifiers
                if (hard, frozenset((q,))) in self._vacuity
                and self._vacuity[(hard, frozenset((q,)))] is None
            ]
            for weaker in ordered[index + 1:]:
                weak_hard = weaker.concrete_premises()
                if weak_hard == hard or not set(weak_hard) <= strong:
                    continue
                for q in live:
                    self._vacuity.setdefault((weak_hard, frozenset((q,))), None)

    def prefill_vacuity(
        self, constraint: HornConstraint, qualifiers: Sequence[Formula]
    ) -> None:
        """Memoize singleton vacuity for a whole qualifier pool at once.

        One model of the constraint's concrete premises certifies every
        qualifier it satisfies as live; only the leftovers get individual
        probes, all under premises asserted a single time.  The candidate
        search calls this on a failure so the per-candidate
        :meth:`is_vacuous` checks at the next level are memo hits.
        """
        hard = constraint.concrete_premises()
        pending = [q for q in qualifiers if (hard, frozenset((q,))) not in self._vacuity]
        if not pending or any(mentions_sets(f) for f in tuple(hard) + tuple(pending)):
            return
        with self._backend.scoped():
            for premise in hard:
                self._backend.assert_(premise)
            self.statistics.theory_checks += 1
            values = self._backend.check_evaluating(pending)
            if values is None:
                # Dead context: contradictory premises never count
                # against a guard.
                self._dead_contexts.add(hard)
                for q in pending:
                    self._vacuity[(hard, frozenset((q,)))] = None
                return
            remaining = []
            for q, value in zip(pending, values):
                if value is True:
                    self._vacuity[(hard, frozenset((q,)))] = None
                else:
                    remaining.append(q)
            # Probe the leftovers individually (the premises stay asserted
            # and each qualifier's selector is cached, so every probe is
            # one incremental solve).
            for q in remaining:
                key = (hard, frozenset((q,)))
                self.statistics.theory_checks += 1
                if self._backend.check_assuming((q,)):
                    self._vacuity[key] = None
                else:
                    self._vacuity[key] = (q,)
                    self._record_mus(constraint, (q,))

    def is_vacuous(self, constraint: HornConstraint, valuation: Sequence[Formula]) -> bool:
        """Is ``valuation`` inconsistent with the constraint's concrete
        premises (so the constraint only holds vacuously under it)?

        Answers from known MUSes when possible; otherwise asks the theory
        directly and, on inconsistency, shrinks the witness into a new MUS
        so the discovery prunes future candidates too.
        """
        if not valuation:
            return False
        members = set(valuation)
        if any(mus <= members for mus in self._mus_sets.get(constraint, [])):
            return True
        hard = constraint.concrete_premises()
        memo_key = (hard, frozenset(valuation))
        if memo_key in self._vacuity:
            core = self._vacuity[memo_key]
            if core is None:
                return False
            self._record_mus(constraint, core)
            return True
        with self._backend.scoped():
            for premise in hard:
                self._backend.assert_(premise)
            self.statistics.theory_checks += 1
            if self._backend.check_assuming(valuation):
                self._vacuity[memo_key] = None
                return False
            if not self._backend.check_assuming(()):
                self._vacuity[memo_key] = None
                return False  # the premises alone are contradictory
            core = list(valuation)
            for q in list(core):
                trial = [k for k in core if k is not q]
                self.statistics.theory_checks += 1
                if not self._backend.check_assuming(trial):
                    core = trial
        self._vacuity[memo_key] = tuple(core)
        self._record_mus(constraint, tuple(core))
        return True

    # -- the portfolio lemma bus ---------------------------------------------

    def export_muses(self) -> List[MusLemma]:
        """Every known MUS as a (constraint, members) lemma pair."""
        return [
            (constraint, mus)
            for constraint, muses in self._mus_order.items()
            for mus in muses
        ]

    def import_muses(self, lemmas: Sequence[MusLemma]) -> int:
        """Adopt lemmas learned elsewhere; returns how many were new."""
        added = 0
        for constraint, mus in lemmas:
            if self._record_mus(constraint, tuple(mus), enumerated=False):
                added += 1
        self.statistics.lemmas_imported += added
        return added

    def seeds_for(
        self, constraint: HornConstraint, valuation: Sequence[Formula]
    ) -> List[FrozenSet[int]]:
        """The map-solver seeds proposed so far for this pool (1-based
        indices into ``valuation``) — introspection for tests and debugging."""
        state = self._states.get((constraint, tuple(valuation)))
        return list(state.seeds) if state is not None else []
