"""Regression tests pinning the MusFixSolver interface stub.

The MARCO-style MUS enumerator ships with the multiple-candidate Horn
solver (see ROADMAP, "Multiple candidates / MUSFix"); until then the stub
must keep its exact interface shape — future callers are written against
it — and every method must fail loudly with a pointer to the ROADMAP
item, never with a bare ``NotImplementedError``.
"""

import inspect

import pytest

from repro.horn import HornConstraint, build_space
from repro.logic import ops
from repro.logic.formulas import Unknown
from repro.logic.qualifiers import default_qualifiers
from repro.logic.sorts import INT
from repro.typecheck import MusFixSolver


def make_solver() -> MusFixSolver:
    space = build_space("P", default_qualifiers(), [ops.var("x", INT)], value_sort=INT)
    return MusFixSolver({"P": space})


class TestMusFixInterfaceShape:
    def test_constructor_takes_a_space_map(self):
        parameters = list(inspect.signature(MusFixSolver.__init__).parameters)
        assert parameters == ["self", "spaces"]
        solver = make_solver()
        assert set(solver.spaces) == {"P"}

    def test_enumerate_muses_signature(self):
        parameters = list(inspect.signature(MusFixSolver.enumerate_muses).parameters)
        assert parameters == ["self", "constraint", "valuation"]

    def test_prune_candidates_signature(self):
        parameters = list(inspect.signature(MusFixSolver.prune_candidates).parameters)
        assert parameters == ["self", "candidates", "constraint"]

    def test_methods_raise_with_roadmap_pointer(self):
        solver = make_solver()
        constraint = HornConstraint((Unknown("P"),), ops.ge(ops.var("x", INT), ops.int_lit(0)))
        with pytest.raises(NotImplementedError) as enumerate_error:
            list(solver.enumerate_muses(constraint, [ops.bool_lit(True)]))
        with pytest.raises(NotImplementedError) as prune_error:
            solver.prune_candidates([], constraint)
        for excinfo in (enumerate_error, prune_error):
            message = str(excinfo.value)
            assert message, "NotImplementedError must carry a message, not be bare"
            assert "ROADMAP" in message
            assert "Multiple candidates / MUSFix" in message
