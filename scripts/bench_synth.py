#!/usr/bin/env python
"""Perf smoke benchmark: the paper's synthesis benchmarks end to end.

Times the full round-trip synthesis pipeline — program parsing, E-term
enumeration with early liquid pruning, condition abduction, and the final
independent re-check — on the ``examples/*.sq`` goals::

    PYTHONPATH=src python scripts/bench_synth.py --output BENCH_synth.json

As with the other bench scripts, deterministic enumeration counters
(candidates generated, pruned early, abductions, SMT queries) are recorded
next to the wall-clock numbers so a perf regression can be triaged on any
machine; CI compares the timings against the committed baseline with
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import benchlib  # noqa: E402

from repro.syntax import parse_program  # noqa: E402
from repro.synth import SynthesisGoal, Synthesizer  # noqa: E402

#: (benchmark name, example file, goal, enumeration depth)
WORKLOADS = [
    ("synth.max", "max.sq", "max", 3),
    ("synth.replicate", "replicate.sq", "replicate", 4),
    ("synth.stutter", "stutter.sq", "stutter", 4),
    ("synth.length", "list.sq", "length", 3),
    ("synth.append", "list.sq", "append", 4),
    ("synth.sign", "sign.sq", "sign", 3),
]


def run_workload(source: str, goal_name: str, depth: int):
    start = time.perf_counter()
    program = parse_program(source)
    synthesizer = Synthesizer(SynthesisGoal.from_program(program, goal_name), max_depth=depth)
    result = synthesizer.synthesize()
    elapsed = time.perf_counter() - start
    assert result.solved and result.verified, f"benchmark goal {goal_name} changed verdict"
    counters = result.statistics.as_dict()
    backend = synthesizer.session.backend.statistics
    counters["sat_queries"] = backend.sat_queries
    counters["theory_propagations"] = backend.theory_propagations
    counters["tableau_pivots"] = backend.tableau_pivots
    counters["lemmas_generalized"] = backend.lemmas_generalized
    counters["minimized_literals"] = backend.minimized_literals
    return elapsed, counters


def _runner(filename: str, goal_name: str, depth: int):
    source = (ROOT / "examples" / filename).read_text()
    return lambda: run_workload(source, goal_name, depth)


BENCHMARKS = {
    name: _runner(filename, goal_name, depth)
    for name, filename, goal_name, depth in WORKLOADS
}


def main() -> int:
    return benchlib.run_suite("synth-perf-smoke", BENCHMARKS, "BENCH_synth.json", 3, __doc__)


if __name__ == "__main__":
    raise SystemExit(main())
