"""A small surface parser for refinement formulas and types.

Tests and the future CLI write signatures the way the paper does::

    x:Int -> y:Int -> {Int | nu >= x && nu >= y}
    {Int | nu != 0} -> Bool
    xs:List Int -> {Int | nu >= len(xs)}

The parser is scope-aware: variable occurrences inside refinements must be
either arrow binders to their left or names in the caller-provided
``scope`` mapping, and each occurrence is built at its binding sort, so a
parsed formula is sort-correct by construction (it is additionally run
through :func:`repro.logic.sortcheck.check_sort` to reject ill-sorted
operator applications).  Measures (``len(xs)``) resolve through a
``measures`` signature map.

Only monotypes are parsed; schemas (type/predicate quantifiers) are built
through :mod:`repro.syntax.types` directly — the quantifier prefix is
trivial to assemble in code and keeping it out of the grammar keeps the
parser small.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, NamedTuple, Optional

from ..logic import ops
from ..logic.formulas import Formula, value_var
from ..logic.sortcheck import MeasureSignatures, check_sort
from ..logic.sorts import BOOL, Sort
from .types import (
    BOOL_BASE,
    INT_BASE,
    BaseType,
    DataBase,
    FunctionType,
    RType,
    ScalarType,
    TypeVarBase,
    base_sort,
)


class ParseError(ValueError):
    """A syntax or scoping error in surface text."""

    def __init__(self, message: str, text: str, position: int) -> None:
        super().__init__(f"{message} at position {position} in {text!r}")
        self.position = position


class _Token(NamedTuple):
    kind: str
    value: str
    position: int


_TOKEN_RE = re.compile(
    r"""
    (?P<space>\s+)
  | (?P<int>\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_']*)
  | (?P<symbol><==>|==>|->|&&|\|\||==|!=|<=|>=|<|>|[{}()\[\]|:,.+\-*!\\])
    """,
    re.VERBOSE,
)

_COMPARISONS = {
    "==": ops.eq,
    "!=": ops.neq,
    "<=": ops.le,
    "<": ops.lt,
    ">=": ops.ge,
    ">": ops.gt,
}


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"unexpected character {text[position]!r}", text, position)
        position = match.end()
        kind = match.lastgroup or ""
        if kind == "space":
            continue
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(
        self,
        text: str,
        scope: Mapping[str, Sort],
        measures: Optional[MeasureSignatures],
    ) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.scope: Dict[str, Sort] = dict(scope)
        self.measures = measures or {}
        self.value_sort: Optional[Sort] = None
        self._anonymous = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, value: str) -> bool:
        if self.peek().value == value and self.peek().kind != "eof":
            self.advance()
            return True
        return False

    def expect(self, value: str) -> _Token:
        token = self.peek()
        if token.value != value or token.kind == "eof":
            raise ParseError(
                f"expected {value!r}, found {token.value or 'end of input'!r}",
                self.text,
                token.position,
            )
        return self.advance()

    def fail(self, message: str) -> ParseError:
        return ParseError(message, self.text, self.peek().position)

    # -- types ---------------------------------------------------------------

    def type_(self) -> RType:
        """``arrowType ::= [ident ':'] atomType '->' arrowType | atomType``"""
        binder: Optional[str] = None
        checkpoint = self.index
        if (self.peek().kind == "ident" and self.tokens[self.index + 1].value == ":"):
            binder = self.advance().value
            self.advance()  # ':'
        argument = self.atom_type()
        if not self.accept("->"):
            if binder is not None:
                self.index = checkpoint
                raise self.fail("binder without an arrow")
            return argument
        if binder is None:
            binder = f"_arg{self._anonymous}"
            self._anonymous += 1
        outer = self.scope.get(binder)
        if isinstance(argument, ScalarType):
            self.scope[binder] = argument.sort
        result = self.type_()
        if outer is None:
            self.scope.pop(binder, None)
        else:
            self.scope[binder] = outer
        return FunctionType(binder, argument, result)

    def atom_type(self) -> RType:
        """``atomType ::= '{' base '|' formula '}' | '(' type ')' | base``"""
        if self.accept("("):
            inner = self.type_()
            self.expect(")")
            return inner
        if self.accept("{"):
            base = self.base_type()
            self.expect("|")
            saved = self.value_sort
            self.value_sort = base_sort(base)
            refinement = self.formula()
            self.value_sort = saved
            self.expect("}")
            scalar = ScalarType(base, refinement)
            self._check_refinement(scalar)
            return scalar
        return ScalarType(self.base_type())

    def base_type(self) -> BaseType:
        token = self.peek()
        if token.kind != "ident":
            raise self.fail("expected a base type")
        name = self.advance().value
        if name == "Int":
            return INT_BASE
        if name == "Bool":
            return BOOL_BASE
        if name[0].isupper():
            # Haskell-style application: bare idents are nullary arguments
            # (Int, Bool, nullary datatypes, type variables); an applied
            # argument needs parentheses, e.g. ``Pair (List Int) Bool``.
            args: List[RType] = []
            while True:
                token = self.peek()
                if token.kind == "ident" and self.tokens[self.index + 1].value != ":":
                    value = self.advance().value
                    if value == "Int":
                        args.append(ScalarType(INT_BASE))
                    elif value == "Bool":
                        args.append(ScalarType(BOOL_BASE))
                    elif value[0].isupper():
                        args.append(ScalarType(DataBase(value)))
                    else:
                        args.append(ScalarType(TypeVarBase(value)))
                elif token.value == "(" and token.kind == "symbol":
                    self.advance()
                    args.append(self.type_())
                    self.expect(")")
                else:
                    break
            return DataBase(name, tuple(args))
        return TypeVarBase(name)

    def _check_refinement(self, scalar: ScalarType) -> None:
        scope = dict(self.scope)
        scope[value_var(scalar.sort).name] = scalar.sort
        sort = check_sort(scalar.refinement, scope, self.measures)
        if sort != BOOL:
            raise self.fail(f"refinement must have sort Bool, got {sort}")

    # -- formulas (precedence climbing) --------------------------------------

    def formula(self) -> Formula:
        return self.iff_level()

    def iff_level(self) -> Formula:
        lhs = self.implies_level()
        while self.accept("<==>"):
            lhs = ops.iff(lhs, self.implies_level())
        return lhs

    def implies_level(self) -> Formula:
        lhs = self.or_level()
        if self.accept("==>"):
            return ops.implies(lhs, self.implies_level())
        return lhs

    def or_level(self) -> Formula:
        lhs = self.and_level()
        while self.accept("||"):
            lhs = ops.or_(lhs, self.and_level())
        return lhs

    def and_level(self) -> Formula:
        lhs = self.compare_level()
        while self.accept("&&"):
            lhs = ops.and_(lhs, self.compare_level())
        return lhs

    def compare_level(self) -> Formula:
        lhs = self.additive_level()
        token = self.peek()
        if token.value in _COMPARISONS and token.kind == "symbol":
            self.advance()
            return _COMPARISONS[token.value](lhs, self.additive_level())
        if token.kind == "ident" and token.value == "in":
            self.advance()
            return ops.member(lhs, self.additive_level())
        return lhs

    def additive_level(self) -> Formula:
        lhs = self.multiplicative_level()
        while True:
            if self.accept("+"):
                lhs = ops.plus(lhs, self.multiplicative_level())
            elif self.accept("-"):
                lhs = ops.minus(lhs, self.multiplicative_level())
            else:
                return lhs

    def multiplicative_level(self) -> Formula:
        lhs = self.unary_level()
        while self.accept("*"):
            lhs = ops.times(lhs, self.unary_level())
        return lhs

    def unary_level(self) -> Formula:
        if self.accept("!"):
            return ops.not_(self.unary_level())
        if self.accept("-"):
            return ops.neg(self.unary_level())
        return self.atom()

    def atom(self) -> Formula:
        token = self.peek()
        if token.kind == "int":
            self.advance()
            return ops.int_lit(int(token.value))
        if token.value == "(":
            self.advance()
            inner = self.formula()
            self.expect(")")
            return inner
        if token.value == "[":
            return self.set_literal()
        if token.kind == "ident":
            return self.identifier()
        raise self.fail(f"expected a formula atom, found {token.value or 'end of input'!r}")

    def set_literal(self) -> Formula:
        self.expect("[")
        if self.accept("]"):
            raise self.fail("empty set literals need an element sort; use ops.empty_set")
        elements = [self.formula()]
        while self.accept(","):
            elements.append(self.formula())
        self.expect("]")
        return ops.set_lit(elements[0].sort, elements)

    def identifier(self) -> Formula:
        token = self.advance()
        name = token.value
        if name == "True":
            return ops.bool_lit(True)
        if name == "False":
            return ops.bool_lit(False)
        if name in ("nu", "_v"):
            if self.value_sort is None:
                raise ParseError(
                    "the value variable is only available inside a refinement",
                    self.text,
                    token.position,
                )
            return value_var(self.value_sort)
        if self.peek().value == "(" and self.peek().kind == "symbol":
            return self.measure_app(name, token)
        sort = self.scope.get(name)
        if sort is None:
            raise ParseError(f"unbound variable `{name}`", self.text, token.position)
        return ops.var(name, sort)

    def measure_app(self, name: str, token: _Token) -> Formula:
        signature = self.measures.get(name)
        if signature is None:
            raise ParseError(f"unknown measure `{name}`", self.text, token.position)
        arg_sorts, result_sort = signature
        self.expect("(")
        args = [self.formula()]
        while self.accept(","):
            args.append(self.formula())
        self.expect(")")
        if len(args) != len(arg_sorts):
            raise ParseError(
                f"measure `{name}` expects {len(arg_sorts)} arguments, got {len(args)}",
                self.text,
                token.position,
            )
        return ops.app(name, args, result_sort)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def parse_type(
    text: str,
    scope: Optional[Mapping[str, Sort]] = None,
    measures: Optional[MeasureSignatures] = None,
) -> RType:
    """Parse a refinement type; arrow binders scope over refinements to
    their right, ``scope`` supplies any other free variables."""
    parser = _Parser(text, scope or {}, measures)
    result = parser.type_()
    _expect_eof(parser)
    return result


def parse_formula(
    text: str,
    scope: Optional[Mapping[str, Sort]] = None,
    value_sort: Optional[Sort] = None,
    measures: Optional[MeasureSignatures] = None,
) -> Formula:
    """Parse a refinement formula; pass ``value_sort`` to make ``nu``
    available.  The result is sort-checked before it is returned."""
    parser = _Parser(text, scope or {}, measures)
    parser.value_sort = value_sort
    result = parser.formula()
    _expect_eof(parser)
    check_scope: Dict[str, Sort] = dict(scope or {})
    if value_sort is not None:
        check_scope[value_var(value_sort).name] = value_sort
    check_sort(result, check_scope, measures)
    return result


def _expect_eof(parser: _Parser) -> None:
    token = parser.peek()
    if token.kind != "eof":
        raise ParseError(f"trailing input {token.value!r}", parser.text, token.position)
