"""Measure definitions: catamorphisms over inductive datatypes (Sec. 3.2).

A *measure* such as ``len`` maps a datatype value into the refinement
logic; in formulas it appears as an uninterpreted :class:`~repro.logic.
formulas.App`, which the SMT substrate already handles with congruence
closure (EUF) plus EUF->LIA equality propagation.  What makes a measure
more than an opaque function are its *axioms*, and this module is their
home:

* the **catamorphism cases** — one per constructor, e.g.
  ``len(Nil) == 0`` and ``len(Cons x xs) == 1 + len(xs)``.  Quantified
  axioms are outside the decidable fragment, so they are never asserted
  globally; instead the type checker *instantiates* the matching case at
  every ``match`` branch, where the constructor is known
  (:meth:`MeasureDef.unfold`), keeping every SMT query ground.

* the **postcondition** — a fact true of every application, e.g.
  ``len(xs) >= 0``.  :func:`instantiate_postconditions` scans the formulas
  of an obligation for measure applications and instantiates the
  postcondition once per occurrence; the typecheck session conjoins the
  results into the premises of every Horn constraint it emits.

Both instantiation schemes are the standard trigger-style treatment of
catamorphism axioms restricted to ground occurrences, which is exactly
what the paper's benchmarks need (the decreasing-length obligations of
``length``/``append``/``replicate``/``stutter`` all discharge from one
unfolding per match case plus non-negativity of ``len``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from . import ops
from .formulas import TRUE, App, Formula, Var, is_true, value_var
from .sorts import BOOL, Sort
from .substitution import instantiate_value_var, substitute
from .transform import free_vars, measure_apps


@dataclass(frozen=True)
class MeasureCase:
    """One catamorphism case ``C x1 ... xk -> body``.

    ``binders`` are the constructor-argument variables the body may
    mention (at the sorts the datatype declaration gives them); ``body``
    is a refinement term over those binders, possibly applying the
    measure itself recursively (``1 + len(xs)``).
    """

    constructor: str
    binders: Tuple[Var, ...]
    body: Formula


@dataclass(frozen=True)
class MeasureDef:
    """A measure ``m :: D -> {S | post}`` with one case per constructor.

    ``arg_sort`` is the sort of the datatype being measured and
    ``result_sort`` the sort of the measured value; ``postcondition`` is
    a formula over the value variable at ``result_sort`` that holds of
    every application (``True`` when the measure promises nothing).
    """

    name: str
    datatype: str
    arg_sort: Sort
    result_sort: Sort
    cases: Tuple[MeasureCase, ...] = ()
    postcondition: Formula = TRUE

    def signature(self) -> Tuple[Tuple[Sort, ...], Sort]:
        """The sort signature in the shape :data:`~repro.logic.sortcheck.
        MeasureSignatures` expects."""
        return ((self.arg_sort,), self.result_sort)

    def case_for(self, constructor: str) -> Optional[MeasureCase]:
        """The catamorphism case of ``constructor``, if one is declared."""
        for case in self.cases:
            if case.constructor == constructor:
                return case
        return None

    def apply(self, subject: Formula) -> App:
        """The application ``m(subject)`` as a refinement term."""
        return App(self.name, (subject,), self.result_sort)

    def unfold(
        self, subject: Formula, constructor: str, args: Sequence[Optional[Formula]]
    ) -> Formula:
        """The catamorphism axiom instance for ``subject = constructor(args)``:
        ``m(subject) == body[args/binders]`` (``<==>`` for boolean measures).

        ``args`` are positional replacements for the case binders; a
        ``None`` entry marks a constructor argument with no refinement-term
        translation (e.g. function-typed) — if the case body mentions its
        binder the axiom cannot be instantiated and ``True`` is returned.
        """
        case = self.case_for(constructor)
        if case is None:
            return TRUE
        if len(args) != len(case.binders):
            raise ValueError(
                f"measure `{self.name}` case `{constructor}` has "
                f"{len(case.binders)} binders, got {len(args)} arguments"
            )
        mapping: Dict[str, Formula] = {}
        missing = set()
        for binder, arg in zip(case.binders, args):
            if arg is None:
                missing.add(binder.name)
            else:
                mapping[binder.name] = arg
        body = case.body
        if missing and missing & free_vars(body):
            return TRUE
        body = substitute(body, mapping)
        lhs = self.apply(subject)
        if self.result_sort == BOOL:
            return ops.iff(lhs, body)
        return ops.eq(lhs, body)

    def postcondition_for(self, application: Formula) -> Formula:
        """The postcondition instantiated at one application occurrence."""
        if is_true(self.postcondition):
            return TRUE
        return instantiate_value_var(self.postcondition, application)

    @property
    def value_var(self) -> Var:
        """The value variable the postcondition is written over."""
        return value_var(self.result_sort)


def measure_signatures(defs: Iterable[MeasureDef]) -> Dict[str, Tuple[Tuple[Sort, ...], Sort]]:
    """Signature map of several measures, for sort checking and parsing."""
    return {mdef.name: mdef.signature() for mdef in defs}


def instantiate_postconditions(
    formulas: Iterable[Formula], defs: Mapping[str, MeasureDef]
) -> List[Formula]:
    """Postcondition instances for every measure application in ``formulas``.

    Occurrences are collected across all the formulas of one obligation
    (premises and conclusion alike — an axiom about a subterm of the goal
    is still a fact) and deduplicated; the result is deterministic so the
    emitted Horn constraints are stable across runs.
    """
    if not defs:
        return []
    seen = set()
    ordered: List[App] = []
    for formula in formulas:
        for application in sorted(measure_apps(formula), key=repr):
            if application in seen:
                continue
            seen.add(application)
            mdef = defs.get(application.func)
            if mdef is not None and not is_true(mdef.postcondition):
                ordered.append(application)
    instances: List[Formula] = []
    for application in ordered:
        instance = defs[application.func].postcondition_for(application)
        if not is_true(instance):
            instances.append(instance)
    return instances
