"""Horn-constraint solving over predicate unknowns (Sec. 5 of the paper).

The third layer of the reproduction: constraints (``premises ==>
conclusion`` with :class:`~repro.logic.formulas.Unknown` nodes on either
side), qualifier spaces per unknown, the :class:`HornSolver` — greatest
fixpoint for ordinary unknowns, candidate-set search with MUSFix pruning
for abducible ones — and the process portfolio that fans candidate
branches across workers.  All validity queries go through the incremental
SMT backend.
"""

from .constraints import HornConstraint, constraint, substitute_unknowns
from .musfix import MusFixSolver
from .portfolio import solve_portfolio
from .solver import (
    Assignment,
    CandidateSearchResult,
    HornSolution,
    HornSolver,
    HornStatistics,
    SolveOptions,
)
from .spaces import QualifierSpace, as_space_map, build_space, build_spaces

__all__ = [
    "Assignment",
    "CandidateSearchResult",
    "HornConstraint",
    "HornSolution",
    "HornSolver",
    "HornStatistics",
    "MusFixSolver",
    "QualifierSpace",
    "SolveOptions",
    "as_space_map",
    "build_space",
    "build_spaces",
    "constraint",
    "solve_portfolio",
    "substitute_unknowns",
]
