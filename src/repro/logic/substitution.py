"""Substitution over refinement formulas.

Two flavours are needed by the type checker:

* :func:`substitute` replaces *variables* by formulas, e.g. ``[y/x]psi`` or
  ``[e/nu]psi`` when a value variable is instantiated.

* :func:`apply_assignment` replaces *predicate unknowns* ``P_i`` by the
  conjunction of their current liquid valuation, written ``[[psi]]_L`` in the
  paper (Sec. 3.5).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

from . import ops
from .formulas import Formula, Unknown, Var
from .transform import transform


def substitute(formula: Formula, mapping: Mapping[str, Formula]) -> Formula:
    """Capture-free substitution of variables by formulas.

    The refinement logic has no binders, so capture cannot occur.  Pending
    substitutions on predicate unknowns are composed rather than applied
    (their bodies are not known until the Horn solver assigns them).
    """
    if not mapping:
        return formula

    def replace(node: Formula) -> Formula:
        if isinstance(node, Var) and node.name in mapping:
            return mapping[node.name]
        if isinstance(node, Unknown):
            pending = dict(node.substitution)
            composed: Dict[str, Formula] = {
                name: substitute(value, mapping) for name, value in pending.items()
            }
            for name, value in mapping.items():
                if name not in composed:
                    composed[name] = value
            return Unknown(node.name, tuple(sorted(composed.items(), key=lambda kv: kv[0])))
        return node

    return transform(formula, replace)


def rename(formula: Formula, mapping: Mapping[str, str]) -> Formula:
    """Rename variables; each new name keeps the old variable's sort."""

    def replace(node: Formula) -> Formula:
        if isinstance(node, Var) and node.name in mapping:
            return Var(mapping[node.name], node.var_sort)
        return node

    return transform(formula, replace)


def apply_assignment(formula: Formula, assignment: Mapping[str, Iterable[Formula]]) -> Formula:
    """Replace each predicate unknown by the conjunction of its valuation.

    Unknowns missing from ``assignment`` are replaced by ``True`` (the empty
    conjunction), matching the paper's initialisation ``L[P] = {}``.
    Pending substitutions recorded on the unknown are applied to the
    valuation after the replacement.
    """

    def replace(node: Formula) -> Formula:
        if isinstance(node, Unknown):
            valuation = list(assignment.get(node.name, ()))
            body = ops.conj(valuation)
            if node.substitution:
                body = substitute(body, dict(node.substitution))
            return body
        return node

    return transform(formula, replace)


def instantiate_value_var(formula: Formula, value: Formula) -> Formula:
    """Substitute the value variable ``nu`` by ``value`` — ``[value/nu]psi``."""
    from .formulas import VALUE_VAR

    return substitute(formula, {VALUE_VAR: value})
