"""The HTTP service: routes, cache behaviour, and error shapes.

One threaded :class:`ReproServer` per test (port 0 — the OS picks), a
plain ``http.client`` as the client, so what is exercised is exactly
what ``curl`` sees: status codes, JSON bodies, and the warm-cache
``cached`` flag flipping on the second identical request.
"""

import json
import threading
from http.client import HTTPConnection

import pytest

from repro.service.cache import open_cache
from repro.service.server import ReproServer

MAX_SQ = """\
leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}

max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}
max = ??
"""

CHECK_SQ = """\
inc :: a:Int -> {Int | nu == a + 1}

plus2 :: a:Int -> {Int | nu == a + 2}
plus2 = \\a . inc (inc a)
"""


@pytest.fixture
def server(tmp_path):
    cache, store = open_cache(str(tmp_path / "cache"))
    srv = ReproServer("127.0.0.1", 0, cache, store)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    try:
        yield srv
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def call(server, method, path, body=None, raw=None):
    conn = HTTPConnection("127.0.0.1", server.server_port)
    data = raw if raw is not None else (json.dumps(body).encode() if body is not None else None)
    headers = {"Content-Type": "application/json"} if data else {}
    conn.request(method, path, data, headers)
    response = conn.getresponse()
    answer = json.loads(response.read())
    conn.close()
    return response.status, answer


class TestRoutes:
    def test_healthz(self, server):
        status, body = call(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok" and body["version"]

    def test_unknown_route_is_404_json(self, server):
        for method in ("GET", "POST"):
            status, body = call(server, method, "/nope", body={"x": 1})
            assert status == 404
            assert "no such route" in body["error"]

    def test_stats_reports_cache_and_worker(self, server):
        status, body = call(server, "GET", "/stats")
        assert status == 200
        assert body["cache"]["hits"] == 0
        assert body["worker"]["queries"] == 0


class TestCheckRoute:
    def test_check_accepts_and_caches(self, server):
        status, first = call(server, "POST", "/check", {"program": CHECK_SQ})
        assert status == 200
        assert not first["cached"]
        assert first["result"]["items"] == [{"name": "plus2", "status": "ok"}]
        status, second = call(server, "POST", "/check", {"program": CHECK_SQ})
        assert status == 200
        assert second["cached"]
        assert second["result"] == first["result"]
        assert second["digest"] == first["digest"]
        _, stats = call(server, "GET", "/stats")
        assert stats["cache"]["hits"] == 1
        assert stats["worker"]["queries"] == 2

    def test_rejection_is_a_200_with_failures(self, server):
        bad = CHECK_SQ.replace("inc (inc a)", "inc a")
        status, body = call(server, "POST", "/check", {"program": bad})
        assert status == 200, "a refuted program is an answer, not an HTTP error"
        assert body["result"]["failures"] == 1
        assert body["result"]["items"][0]["status"] == "rejected"


class TestSynthRoute:
    def test_synth_round_trip(self, server):
        status, body = call(server, "POST", "/synth", {"program": MAX_SQ})
        assert status == 200
        item = body["result"]["items"][0]
        assert item["solved"] and item["verified"]
        assert item["program"].startswith("max = ")
        status, again = call(server, "POST", "/synth", {"program": MAX_SQ})
        assert again["cached"]
        assert again["result"] == body["result"]

    def test_recheck_serves_verified_hit(self, server):
        call(server, "POST", "/synth", {"program": MAX_SQ})
        status, body = call(server, "POST", "/synth", {"program": MAX_SQ, "recheck": True})
        assert status == 200
        assert body["cached"], "a re-checked valid entry is still a hit"

    def test_unknown_goal_is_400(self, server):
        status, body = call(server, "POST", "/synth", {"program": MAX_SQ, "only": "nonesuch"})
        assert status == 400
        assert "no signature" in body["error"]


class TestBadRequests:
    def test_malformed_json_is_400(self, server):
        status, body = call(server, "POST", "/check", raw=b"{not json")
        assert status == 400
        assert "malformed JSON" in body["error"]

    def test_missing_program_is_400(self, server):
        status, body = call(server, "POST", "/check", {"nope": 1})
        assert status == 400
        assert "missing `program`" in body["error"]

    def test_parse_error_is_400(self, server):
        status, body = call(server, "POST", "/check", {"program": "max :: Int ->"})
        assert status == 400
        assert "parse error" in body["error"]

    def test_non_integer_option_is_400(self, server):
        status, body = call(server, "POST", "/synth", {"program": MAX_SQ, "depth": "four"})
        assert status == 400
        assert "`depth` must be an integer" in body["error"]

    def test_empty_body_is_400(self, server):
        status, body = call(server, "POST", "/check")
        assert status == 400
        assert "expected a JSON body" in body["error"]
