#!/usr/bin/env python
"""Perf regression gate: compare a fresh bench report against a baseline.

CI runs the perf smoke scripts (``bench_horn.py``, ``bench_typecheck.py``,
``bench_synth.py``, ``bench_smt.py``, ``bench_service.py``) into fresh
reports, then gates them against the committed baselines::

    python scripts/check_bench_regression.py \\
        --baseline BENCH_horn.json --candidate BENCH_horn.new.json

The gate fails (exit 1) when any case's mean wall-clock exceeds
``--threshold`` (default 2.5x) times its baseline mean.  A case is
noise-exempt only when *both* means sit below ``--min-seconds`` (default
2ms) — at that scale the ratio measures timer jitter, not the solver,
while a genuine blowup from a tiny baseline still trips the gate because
the candidate side clears the floor.  Cases present on only one side are
reported but never fail the gate (new benchmarks need a first run to
become a baseline).

The solver-behaviour counters in :data:`TRACKED_COUNTERS` (theory
propagations, tableau pivots, generalized lemmas, minimized literals) are
diffed report-only: a drift means the search behaved differently, which
is exactly what triages a wall-clock change, but it is never a failure by
itself.  Exactly one summary line is printed per invocation so the job
log stays scannable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Tuple


#: Counters whose drift between baseline and candidate is reported (but
#: never gated): they fingerprint solver search behaviour, so an unchanged
#: set means a wall-clock delta is machine noise, not a solver change.
TRACKED_COUNTERS = (
    "theory_propagations",
    "tableau_pivots",
    "lemmas_generalized",
    "minimized_literals",
    "muses_enumerated",
    "candidates_pruned",
    "lemmas_shared",
    "cache_hits",
    "cache_misses",
)


def load_means(path: Path) -> Dict[str, float]:
    """name -> mean seconds for every benchmark entry of a report."""
    report = json.loads(path.read_text())
    return {entry["name"]: float(entry["mean_s"]) for entry in report.get("benchmarks", [])}


def load_counters(path: Path) -> Dict[str, Dict[str, int]]:
    """name -> counters dict for every benchmark entry of a report."""
    report = json.loads(path.read_text())
    return {entry["name"]: entry.get("counters", {}) for entry in report.get("benchmarks", [])}


def counter_drift(
    baseline: Dict[str, Dict[str, int]], candidate: Dict[str, Dict[str, int]]
) -> List[str]:
    """Report-only notes for tracked counters that changed on shared cases."""
    notes: List[str] = []
    for name in sorted(set(baseline) & set(candidate)):
        base, fresh = baseline[name], candidate[name]
        for key in TRACKED_COUNTERS:
            if key not in base and key not in fresh:
                continue
            if base.get(key) != fresh.get(key):
                notes.append(f"{name}.{key} {base.get(key)}->{fresh.get(key)}")
    return notes


def compare(
    baseline: Dict[str, float],
    candidate: Dict[str, float],
    threshold: float,
    min_seconds: float,
) -> Tuple[List[str], List[Tuple[str, float]], List[str]]:
    """Classify every case: (failures, measured ratios, skipped notes)."""
    failures: List[str] = []
    ratios: List[Tuple[str, float]] = []
    skipped: List[str] = []
    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline:
            skipped.append(f"{name} (no baseline)")
            continue
        if name not in candidate:
            skipped.append(f"{name} (not measured)")
            continue
        base, fresh = baseline[name], candidate[name]
        if base < min_seconds and fresh < min_seconds:
            skipped.append(f"{name} (sub-noise: {fresh * 1000:.2f}ms)")
            continue
        ratio = fresh / base if base > 0 else float("inf")
        ratios.append((name, ratio))
        if ratio > threshold:
            failures.append(f"{name} {ratio:.2f}x > {threshold:.2f}x")
    return failures, ratios, skipped


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True, type=Path, help="committed report")
    parser.add_argument("--candidate", required=True, type=Path, help="fresh report")
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.5,
        help="maximum allowed candidate/baseline mean wall-clock ratio",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.002,
        help="cases where both means are below this are noise-exempt",
    )
    args = parser.parse_args()

    baseline = load_means(args.baseline)
    candidate = load_means(args.candidate)
    failures, ratios, skipped = compare(baseline, candidate, args.threshold, args.min_seconds)
    drift = counter_drift(load_counters(args.baseline), load_counters(args.candidate))

    suite = args.baseline.name
    notes = f"; skipped: {', '.join(skipped)}" if skipped else ""
    if drift:
        notes += f"; counter drift (report-only): {', '.join(drift)}"
    if failures:
        print(f"perf gate [{suite}]: FAIL — {'; '.join(failures)}{notes}")
        return 1
    if ratios:
        worst_name, worst_ratio = max(ratios, key=lambda pair: pair[1])
        print(
            f"perf gate [{suite}]: OK — {len(ratios)} cases within "
            f"{args.threshold:.2f}x of baseline (worst: {worst_name} "
            f"{worst_ratio:.2f}x){notes}"
        )
    else:
        print(f"perf gate [{suite}]: OK — no comparable cases{notes}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
