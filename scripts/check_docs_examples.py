#!/usr/bin/env python
"""Docs example gate: extract CLI commands from markdown and execute them.

Every fenced ``console`` code block in the given markdown files is
scanned for lines starting with ``$ ``; each such command that references
the ``python -m repro`` CLI is executed from the repository root (with
``PYTHONPATH=src``) and must exit 0.  Anything else — prose, output
lines, non-CLI commands like ``pip install`` — is ignored, so docs stay
free-form while their CLI examples can never rot::

    python scripts/check_docs_examples.py docs/*.md README.md

A block whose info string contains ``skip`` (e.g. ```` ```console skip ````)
is excluded, for examples that deliberately show failing invocations.
Exactly one summary line is printed per file plus one for the run.
"""

from __future__ import annotations

import argparse
import re
import shlex
import subprocess
import sys
from os import environ
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# Fences may be indented (e.g. inside a bullet list); the body's own
# indentation is stripped before looking for `$ ` command lines.
_FENCE_RE = re.compile(
    r"^(?P<indent>[ \t]*)```(?P<info>[^\n]*)\n(?P<body>.*?)^[ \t]*```[ \t]*$", re.M | re.S
)


def extract_commands(markdown: str):
    """The ``$ ``-prefixed CLI commands of every non-skipped console block."""
    commands = []
    for match in _FENCE_RE.finditer(markdown):
        info = match.group("info").strip().lower()
        if not info.startswith("console") or "skip" in info:
            continue
        for line in match.group("body").splitlines():
            line = line.strip()
            if line.startswith("$ ") and "python -m repro" in line:
                commands.append(line[2:].strip())
    return commands


def run_command(command: str):
    """Execute one documented command; returns (exit code, combined output).

    Leading VAR=value words (e.g. ``PYTHONPATH=src python -m repro ...``)
    are folded into the environment instead of being exec'd, and a
    non-executable command is reported as a failure rather than a crash.
    """
    env = dict(environ)
    env["PYTHONPATH"] = f"{ROOT / 'src'}" + (
        f":{env['PYTHONPATH']}" if env.get("PYTHONPATH") else ""
    )
    words = shlex.split(command)
    while words and "=" in words[0] and not words[0].startswith("="):
        key, _, value = words.pop(0).partition("=")
        env[key] = value
    try:
        done = subprocess.run(words, cwd=ROOT, env=env, capture_output=True, text=True)
    except OSError as error:
        return 127, str(error)
    return done.returncode, done.stdout + done.stderr


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "files",
        nargs="*",
        default=[
            "docs/architecture.md",
            "docs/synthesis-tutorial.md",
            "docs/service.md",
            "docs/cli.md",
            "README.md",
        ],
        help="markdown files to scan (default: docs/ pages and the README)",
    )
    args = parser.parse_args()

    failures = 0
    total = 0
    for name in args.files:
        path = ROOT / name
        commands = extract_commands(path.read_text())
        broken = []
        for command in commands:
            total += 1
            code, output = run_command(command)
            if code != 0:
                failures += 1
                broken.append(f"`{command}` exited {code}")
                # Ship the command's own output to the log: it is the only
                # way to triage a regressed example from CI.
                for line in output.strip().splitlines():
                    print(f"    {line}", file=sys.stderr)
        status = "ok" if not broken else "; ".join(broken)
        print(f"{name}: {len(commands)} CLI example(s), {status}")
    print(
        f"docs-examples: {total - failures}/{total} commands ran clean"
        + ("" if not failures else f", {failures} FAILED")
    )
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
