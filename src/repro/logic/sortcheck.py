"""Sort checking of refinement terms (well-formedness, Sec. 3 of the paper).

A refinement is *well-formed* in a scope when every variable it mentions is
bound at the sort the scope assigns it and every interpreted symbol is
applied at the sorts of its signature.  The type checker runs this on every
refinement before it ever reaches the Horn solver, so ill-sorted formulas
are reported as type errors at the program location that wrote them instead
of surfacing as garbage SMT queries.

:func:`check_sort` returns the sort of the term and raises :class:`SortError`
with a human-readable path on any violation; :func:`check_refinement` is the
common wrapper demanding sort ``Bool``.
"""

from __future__ import annotations

from typing import Mapping, Optional

from .formulas import (
    ARITH_OPS,
    BOOLEAN_OPS,
    COMPARISON_OPS,
    EQUALITY_OPS,
    SET_OPS,
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    IntLit,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Unknown,
    Var,
)
from .qualifiers import sorts_compatible
from .sorts import BOOL, INT, SetSort, Sort


class SortError(TypeError):
    """An ill-sorted refinement term.

    ``formula`` is the offending subterm; the message spells out the
    expected and actual sorts.
    """

    def __init__(self, message: str, formula: Formula) -> None:
        super().__init__(f"{message} (in `{formula!r}`)")
        self.formula = formula


#: Optional signatures for uninterpreted functions: name -> (arg sorts, result).
MeasureSignatures = Mapping[str, "tuple[tuple[Sort, ...], Sort]"]


def check_sort(
    formula: Formula,
    scope: Mapping[str, Sort],
    measures: Optional[MeasureSignatures] = None,
) -> Sort:
    """Sort-check ``formula`` against ``scope`` and return its sort.

    ``scope`` maps every variable allowed to occur free to its sort; a
    variable outside the scope, or inside it at a different sort, is an
    error.  ``measures`` optionally constrains uninterpreted applications;
    measures not listed are checked only for internal consistency.
    """
    if isinstance(formula, (BoolLit, IntLit)):
        return formula.sort
    if isinstance(formula, Var):
        return _check_var(formula, scope)
    if isinstance(formula, Unknown):
        for _, value in formula.substitution:
            check_sort(value, scope, measures)
        return BOOL
    if isinstance(formula, Unary):
        return _check_unary(formula, scope, measures)
    if isinstance(formula, Binary):
        return _check_binary(formula, scope, measures)
    if isinstance(formula, Ite):
        return _check_ite(formula, scope, measures)
    if isinstance(formula, App):
        return _check_app(formula, scope, measures)
    if isinstance(formula, SetLit):
        return _check_set_lit(formula, scope, measures)
    raise SortError(f"unknown formula node {type(formula).__name__}", formula)


def check_refinement(
    formula: Formula,
    scope: Mapping[str, Sort],
    measures: Optional[MeasureSignatures] = None,
) -> None:
    """Demand that ``formula`` is a well-formed boolean refinement."""
    sort = check_sort(formula, scope, measures)
    if sort != BOOL:
        raise SortError(f"refinement must have sort Bool, got {sort}", formula)


# ---------------------------------------------------------------------------
# per-node rules
# ---------------------------------------------------------------------------

def _check_var(formula: Var, scope: Mapping[str, Sort]) -> Sort:
    bound = scope.get(formula.name)
    if bound is None:
        raise SortError(f"unbound variable `{formula.name}`", formula)
    if not sorts_compatible(formula.var_sort, bound):
        raise SortError(
            f"variable `{formula.name}` used at sort {formula.var_sort}, "
            f"bound at sort {bound}",
            formula,
        )
    return bound


def _check_unary(
    formula: Unary, scope: Mapping[str, Sort], measures: Optional[MeasureSignatures]
) -> Sort:
    arg_sort = check_sort(formula.arg, scope, measures)
    wanted = BOOL if formula.op is UnaryOp.NOT else INT
    if not sorts_compatible(arg_sort, wanted):
        raise SortError(
            f"operand of `{formula.op.value}` must have sort {wanted}, got {arg_sort}",
            formula,
        )
    return wanted


def _check_binary(
    formula: Binary, scope: Mapping[str, Sort], measures: Optional[MeasureSignatures]
) -> Sort:
    op = formula.op
    lhs = check_sort(formula.lhs, scope, measures)
    rhs = check_sort(formula.rhs, scope, measures)
    if op in ARITH_OPS or op in COMPARISON_OPS:
        _demand(formula, lhs, INT, "left operand", op)
        _demand(formula, rhs, INT, "right operand", op)
        return INT if op in ARITH_OPS else BOOL
    if op in BOOLEAN_OPS:
        _demand(formula, lhs, BOOL, "left operand", op)
        _demand(formula, rhs, BOOL, "right operand", op)
        return BOOL
    if op in EQUALITY_OPS:
        if not sorts_compatible(lhs, rhs):
            raise SortError(f"`{op.value}` compares incompatible sorts {lhs} and {rhs}", formula)
        return BOOL
    if op in SET_OPS:
        _demand_set(formula, lhs, "left operand", op)
        _demand_set(formula, rhs, "right operand", op)
        if not sorts_compatible(lhs, rhs):
            raise SortError(
                f"`{op.value}` combines incompatible set sorts {lhs} and {rhs}",
                formula,
            )
        return lhs
    if op is BinaryOp.MEMBER:
        _demand_set(formula, rhs, "right operand", op)
        # A sort-variable set operand (polymorphic membership) passes the
        # set demand without exposing an element sort to compare against.
        if isinstance(rhs, SetSort) and not sorts_compatible(lhs, rhs.element):
            raise SortError(f"`in` tests a {lhs} against a set of {rhs.element}", formula)
        return BOOL
    if op is BinaryOp.SUBSET:
        _demand_set(formula, lhs, "left operand", op)
        _demand_set(formula, rhs, "right operand", op)
        if not sorts_compatible(lhs, rhs):
            raise SortError(
                f"`{op.value}` compares incompatible set sorts {lhs} and {rhs}",
                formula,
            )
        return BOOL
    raise SortError(f"unknown binary operator {op}", formula)


def _check_ite(
    formula: Ite, scope: Mapping[str, Sort], measures: Optional[MeasureSignatures]
) -> Sort:
    cond = check_sort(formula.cond, scope, measures)
    if not sorts_compatible(cond, BOOL):
        raise SortError(f"ite condition must have sort Bool, got {cond}", formula)
    then_ = check_sort(formula.then_, scope, measures)
    else_ = check_sort(formula.else_, scope, measures)
    if not sorts_compatible(then_, else_):
        raise SortError(f"ite branches have incompatible sorts {then_} and {else_}", formula)
    return then_


def _check_app(
    formula: App, scope: Mapping[str, Sort], measures: Optional[MeasureSignatures]
) -> Sort:
    arg_sorts = [check_sort(arg, scope, measures) for arg in formula.args]
    if measures is not None and formula.func in measures:
        wanted_args, result = measures[formula.func]
        if len(wanted_args) != len(arg_sorts):
            raise SortError(
                f"measure `{formula.func}` expects {len(wanted_args)} arguments, "
                f"got {len(arg_sorts)}",
                formula,
            )
        for index, (got, wanted) in enumerate(zip(arg_sorts, wanted_args)):
            if not sorts_compatible(got, wanted):
                raise SortError(
                    f"argument {index} of measure `{formula.func}` must have "
                    f"sort {wanted}, got {got}",
                    formula,
                )
        if not sorts_compatible(formula.result_sort, result):
            raise SortError(
                f"measure `{formula.func}` returns {result}, "
                f"used at {formula.result_sort}",
                formula,
            )
    return formula.result_sort


def _check_set_lit(
    formula: SetLit, scope: Mapping[str, Sort], measures: Optional[MeasureSignatures]
) -> Sort:
    for element in formula.elements:
        got = check_sort(element, scope, measures)
        if not sorts_compatible(got, formula.element_sort):
            raise SortError(f"set literal of {formula.element_sort} contains a {got}", formula)
    return formula.sort


def _demand(formula: Formula, got: Sort, wanted: Sort, which: str, op: BinaryOp) -> None:
    if not sorts_compatible(got, wanted):
        raise SortError(f"{which} of `{op.value}` must have sort {wanted}, got {got}", formula)


def _demand_set(formula: Formula, got: Sort, which: str, op: BinaryOp) -> None:
    if not isinstance(got, SetSort) and not _is_sort_var(got):
        raise SortError(f"{which} of `{op.value}` must have a set sort, got {got}", formula)


def _is_sort_var(sort: Sort) -> bool:
    from .sorts import VarSort

    return isinstance(sort, VarSort)
