"""The round-trip synthesis driver (Secs. 4–5 of the paper).

A :class:`SynthesisGoal` packages what the paper calls a *synthesis
problem*: a name, a refinement-type signature to inhabit, and the
component library (other signatures, constructors, measures) the program
may use.  :class:`Synthesizer` runs the round-trip loop over it:

* **I-term generation** is goal-directed.  Arrow goals peel into lambdas
  whose binders join the environment; the goal's own name is bound at the
  termination-strengthened recursive signature
  (:func:`repro.typecheck.checker.recursion_signature`), so recursive
  calls are enumerated like any component but pruned unless their
  arguments decrease.  Scalar goals fall to the E-term enumerator; when no
  E-term fits, the loop tries ``match`` over each datatype-typed variable
  in scope (per-case subgoals via
  :func:`repro.typecheck.checker.elaborate_match_case`) and conditionals
  whose guards are *abduced* from a failing branch candidate
  (:mod:`repro.synth.conditions`).

* **E-term enumeration** with early local liquid checking lives in
  :mod:`repro.synth.enumerator`; every candidate obligation runs on one
  shared incremental SMT backend through
  :meth:`~repro.typecheck.session.TypecheckSession.trial` scopes.

* **Verification**: a found program is independently re-checked against
  the goal in a *fresh* session of the ordinary type checker before it is
  reported, so the synthesizer can never return a program the checker
  would reject.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Sequence, Tuple

from .. import limits
from ..logic import ops
from ..logic.formulas import FALSE, TRUE, Var
from ..logic.measures import MeasureDef
from ..logic.simplify import simplify
from ..logic.substitution import instantiate_value_var
from ..syntax.datatypes import Datatype
from ..syntax.parser import Program
from ..syntax.terms import (
    BoolConst,
    FixTerm,
    IfTerm,
    IntConst,
    LambdaTerm,
    MatchCase,
    MatchTerm,
    Term,
    VarTerm,
    pretty_term,
    term_free_names,
)
from ..syntax.types import (
    BOOL_BASE,
    ContextualType,
    DataBase,
    FunctionType,
    RType,
    ScalarType,
    TypeLike,
    free_type_variables,
    generalize,
    pretty_type,
    shape,
    substitute_in_type,
)
from ..typecheck.checker import elaborate_match_case, recursion_signature
from ..typecheck.environment import EMPTY, Environment
from ..typecheck.errors import TerminationError, TypecheckError
from ..horn.solver import HornStatistics, SolveOptions
from ..typecheck.session import TypecheckSession
from .conditions import abduce_condition
from .enumerator import EnumerationStatistics, ETermEnumerator


@dataclass(frozen=True)
class SynthesisGoal:
    """A synthesis problem: inhabit ``goal`` using ``components``."""

    name: str
    goal: RType
    #: Component signatures available to the program, in binding order.
    components: Tuple[Tuple[str, TypeLike], ...] = ()
    datatypes: Tuple[Datatype, ...] = ()
    measures: Tuple[MeasureDef, ...] = ()

    @classmethod
    def from_program(cls, program: Program, name: str) -> "SynthesisGoal":
        """The goal ``name`` of a parsed ``.sq`` program: every *other*
        signature in the file becomes a component (free type variables
        implicitly generalized)."""
        if name not in program.signatures:
            raise KeyError(f"`{name}` has no signature in the program")
        components = tuple(
            (other, generalize(rtype))
            for other, rtype in program.signatures.items()
            if other != name
        )
        return cls(
            name=name,
            goal=program.signatures[name],
            components=components,
            datatypes=tuple(program.datatypes.values()),
            measures=tuple(program.measures.values()),
        )

    def session_environment(
        self, literals: Optional[Sequence[object]] = None, backend: Optional[object] = None
    ) -> Tuple[TypecheckSession, Environment]:
        """A fresh session and the component environment, constructors
        included.  ``literals`` are the formulas joining every qualifier
        space (default: the literal ``0``); the synthesizer passes the
        logical form of its own term-literal pool so that abduced
        conditions can mention exactly the constants enumeration can.
        ``backend`` substitutes a shared incremental SMT backend for the
        session's own — the service's warm workers pass one so repeated
        queries reuse encodings and theory lemmas across requests."""
        session = TypecheckSession(
            literals=[ops.int_lit(0)] if literals is None else literals,
            datatypes=self.datatypes,
            measure_defs=self.measures,
            backend=backend,
        )
        env = session.bind_constructors(EMPTY)
        for name, rtype in self.components:
            env = env.bind(name, rtype)
        return session, env


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run."""

    goal: SynthesisGoal
    program: Optional[Term]
    statistics: EnumerationStatistics = field(default_factory=EnumerationStatistics)
    #: True when the program was independently re-checked in a fresh
    #: session of the ordinary type checker.
    verified: bool = False
    reason: str = ""
    #: True when the run was cut off by a :class:`repro.limits.Budget`
    #: rather than finishing its search; ``limit`` names what tripped.
    timeout: bool = False
    limit: Optional[str] = None

    @property
    def solved(self) -> bool:
        return self.program is not None

    def pretty(self) -> str:
        """The synthesized definition in surface syntax."""
        if self.program is None:
            return f"-- no program found for {self.goal.name}"
        return f"{self.goal.name} = {pretty_term(self.program)}"


class Synthesizer:
    """Runs the round-trip loop for one :class:`SynthesisGoal`."""

    def __init__(
        self,
        goal: SynthesisGoal,
        max_depth: int = 4,
        max_conditionals: int = 2,
        max_matches: int = 1,
        literals: Sequence[Term] = (IntConst(0),),
        backend: Optional[object] = None,
        workers: int = 1,
    ) -> None:
        self.goal = goal
        self.max_depth = max_depth
        self.max_conditionals = max_conditionals
        self.max_matches = max_matches
        self.workers = max(1, workers)
        self.literals: Tuple[Term, ...] = tuple(literals)
        self.statistics = EnumerationStatistics()
        #: The logical form of the term-literal pool: these join every
        #: qualifier space, so abduction and the enumerator agree on which
        #: constants exist.
        self._formula_literals = tuple(
            ops.int_lit(term.value) if isinstance(term, IntConst) else ops.bool_lit(term.value)
            for term in self.literals
            if isinstance(term, (IntConst, BoolConst))
        )
        # The search runs on `backend` when given (a warm worker's shared
        # solver); verification below always builds a fresh session, so a
        # warm backend can never vouch for its own search's result.
        self.session, self.base_env = goal.session_environment(self._formula_literals, backend)
        # `synth --workers N` reaches abduction through the session's
        # default solve options: every condition search fans its candidate
        # branches across the portfolio.
        self.session.solve_options = SolveOptions(max_workers=self.workers)
        #: The goal's free type variables are parametric: enumeration never
        #: instantiates them with concrete types (see rigid_shape_match).
        self.rigid = frozenset(free_type_variables(goal.goal))

    # -- top level -----------------------------------------------------------

    def synthesize(self) -> SynthesisResult:
        """Search for a program inhabiting the goal, verify it, report.

        A :class:`~repro.limits.BudgetExhausted` escaping the search is
        degradation, not failure: the result reports ``timeout`` with the
        best depth reached and the partial statistics, and the synthesizer
        returns normally — no caller above this ever sees the exception.
        """
        try:
            program = self._top()
        except TypecheckError as error:
            return SynthesisResult(
                self.goal, None, self.statistics, reason=f"ill-formed goal: {error}"
            )
        except limits.BudgetExhausted as exhausted:
            return self._timeout_result(exhausted)
        if program is None:
            return SynthesisResult(
                self.goal,
                None,
                self.statistics,
                reason=(
                    f"no program found within depth {self.max_depth} "
                    f"({self.statistics.generated} candidates generated, "
                    f"{self.statistics.pruned_early} pruned early)"
                ),
            )
        try:
            verified = self._verify(program)
        except limits.BudgetExhausted as exhausted:
            # Found but not re-checked in time: surface the program, but
            # as a timeout (and unverified, so it still counts failed).
            return self._timeout_result(exhausted, program)
        return SynthesisResult(self.goal, program, self.statistics, verified=verified)

    def _timeout_result(self, exhausted: limits.BudgetExhausted, program=None) -> SynthesisResult:
        """The structured ``timeout`` outcome every surface renders."""
        return SynthesisResult(
            self.goal,
            program,
            self.statistics,
            verified=False,
            reason=(
                f"timeout: {exhausted.limit} budget exhausted at depth "
                f"{self.statistics.depth_reached}/{self.max_depth} "
                f"({self.statistics.generated} candidates generated, "
                f"{self.statistics.goal_checks} goal checks)"
            ),
            timeout=True,
            limit=exhausted.limit,
        )

    def _top(self) -> Optional[Term]:
        """Peel the goal's arrows into lambda binders, bind the recursive
        occurrence when a termination metric exists, and synthesize the
        scalar body."""
        env = self.base_env
        self.session.well_formed(env, self.goal.goal)
        spine: List[Tuple[str, RType]] = []
        node: RType = self.goal.goal
        while isinstance(node, FunctionType):
            binder = node.arg_name
            result = node.result_type
            if binder in env:
                fresh = binder
                while fresh in env:
                    fresh += "'"
                if isinstance(node.arg_type, ScalarType):
                    result = substitute_in_type(result, {binder: Var(fresh, node.arg_type.sort)})
                binder = fresh
            env = env.bind(binder, node.arg_type)
            spine.append((binder, node.arg_type))
            node = result
        recursive = False
        if spine and self.goal.name not in {binder for binder, _ in spine}:
            try:
                signature = recursion_signature(self.session, spine, node, (self.goal.name,))
            except TerminationError:
                signature = None
            if signature is not None:
                env = env.bind(self.goal.name, signature)
                recursive = True
        body = self._scalar(env, node, self.max_conditionals, self.max_matches, frozenset())
        if body is None:
            return None
        term: Term = body
        for binder, _ in reversed(spine):
            term = LambdaTerm(binder, term)
        if recursive and self.goal.name in term_free_names(body):
            term = FixTerm(self.goal.name, term)
        return term

    # -- scalar goals ---------------------------------------------------------

    def _scalar(
        self,
        env: Environment,
        goal: RType,
        cond_budget: int,
        match_budget: int,
        matched: FrozenSet[str],
    ) -> Optional[Term]:
        """A term for a scalar goal: E-terms first (cheapest depth first),
        then match, then an abduced conditional."""
        enumerator = ETermEnumerator(
            self.session, env, self.statistics, self.literals, rigid=self.rigid
        )
        goal_shape = shape(goal)
        failures: List[Term] = []
        for depth in range(1, self.max_depth + 1):
            if depth > self.statistics.depth_reached:
                self.statistics.depth_reached = depth
            for candidate in enumerator.candidates(goal_shape, depth):
                self.statistics.goal_checks += 1
                if self.session.try_check(env, candidate, goal).solved:
                    return candidate
                failures.append(candidate)
        if match_budget > 0:
            term = self._matches(env, goal, cond_budget, match_budget, matched)
            if term is not None:
                return term
        if cond_budget > 0:
            term = self._conditional(
                env, goal, enumerator, failures, cond_budget, match_budget, matched
            )
            if term is not None:
                return term
        return None

    # -- match generation (goal-directed I-terms) -----------------------------

    def _matches(
        self,
        env: Environment,
        goal: RType,
        cond_budget: int,
        match_budget: int,
        matched: FrozenSet[str],
    ) -> Optional[Term]:
        for name, scalar in env.scalar_bindings():
            if name in matched or not isinstance(scalar.base, DataBase):
                continue
            datatype = self.session.datatypes.get(scalar.base.name)
            if datatype is None:
                continue
            term = self._match_on(
                env, name, scalar, datatype, goal, cond_budget, match_budget, matched
            )
            if term is not None:
                return term
        return None

    def _match_on(
        self,
        env: Environment,
        name: str,
        scalar: ScalarType,
        datatype: Datatype,
        goal: RType,
        cond_budget: int,
        match_budget: int,
        matched: FrozenSet[str],
    ) -> Optional[Term]:
        """``match name with ...`` — every constructor case must have a
        body, each synthesized against its elaborated subgoal."""
        subject = Var(name, scalar.sort)
        assert isinstance(scalar.base, DataBase)
        type_args = dict(zip(datatype.type_params, scalar.base.args))
        cases: List[MatchCase] = []
        for ctor in datatype.constructors:
            binders = self._case_binders(env, ctor.schema.body)
            case_env, case_goal = elaborate_match_case(
                self.session,
                env,
                ctor.name,
                binders,
                datatype,
                type_args,
                subject,
                goal,
                (f"match {name}", f"case {ctor.name}"),
            )
            body = self._scalar(
                case_env, case_goal, cond_budget, match_budget - 1, matched | {name}
            )
            if body is None:
                return None
            cases.append(MatchCase(ctor.name, binders, body))
        return MatchTerm(VarTerm(name), tuple(cases))

    @staticmethod
    def _case_binders(env: Environment, signature: RType) -> Tuple[str, ...]:
        """Case binder names from the constructor signature's own binders,
        uniquified against the scope so elaboration never has to rename."""
        binders: List[str] = []
        node = signature
        while isinstance(node, FunctionType):
            fresh = node.arg_name
            while fresh in env or fresh in binders:
                fresh += "'"
            binders.append(fresh)
            node = node.result_type
        return tuple(binders)

    # -- conditionals via abduction (Sec. 5.2) --------------------------------

    def _conditional(
        self,
        env: Environment,
        goal: RType,
        enumerator: ETermEnumerator,
        failures: Sequence[Term],
        cond_budget: int,
        match_budget: int,
        matched: FrozenSet[str],
    ) -> Optional[Term]:
        """An abduced conditional around a failing branch candidate.

        Abduction returns the weakest-guard *antichain*: several
        incomparable conditions when the candidate's validity region is
        disjunctive.  Every realizable member (within the conditional
        budget) guards the *same* then-branch, nested ``if g1 .. else if
        g2 ..`` — the executable form of the disjunction ``g1 || g2`` —
        and the final else is synthesized under every guard's refutation.
        The assembled term is re-checked whole against the goal (the
        ``coverage`` obligation: each branch under its own path condition,
        through the ordinary Horn pipeline) before it is returned.
        """
        for candidate in failures:
            self.statistics.abductions += 1
            sink = HornStatistics()
            abduced = abduce_condition(self.session, env, candidate, goal, stats=sink)
            self.statistics.merge_horn(sink)
            if abduced is None or abduced.is_trivial():
                continue
            members = abduced.candidates or (abduced.qualifiers,)
            realized: List[Tuple[Term, object]] = []
            guarded_env = env
            for member in members:
                if len(realized) >= cond_budget:
                    break
                got = self._realize_guard(guarded_env, enumerator, ops.conj(member))
                if got is None:
                    continue
                realized.append(got)
                guarded_env = guarded_env.assume(got[1])
            # Weakest-first: try all realized guards, then fall back to
            # fewer (a shorter chain leaves the else more budget).
            for keep in range(len(realized), 0, -1):
                else_env = env
                for _, refuted in realized[:keep]:
                    else_env = else_env.assume(refuted)
                else_term = self._scalar(
                    else_env, goal, cond_budget - keep, match_budget, matched
                )
                if else_term is None:
                    continue
                term: Term = else_term
                for guard, _ in reversed(realized[:keep]):
                    term = IfTerm(guard, candidate, term)
                if self.session.try_check(env, term, goal, "coverage").solved:
                    return term
        return None

    def _realize_guard(
        self, env: Environment, enumerator: ETermEnumerator, condition
    ) -> Optional[Tuple[Term, object]]:
        """A Bool E-term whose truth entails the abduced ``condition``.

        Returns the guard term and the *refuted* form of its refinement
        (the else-branch's path assumption).  Guards whose inferred type
        needs contextual bindings (arguments with no refinement-term
        translation) are skipped: their refinements mention internal
        ``_ctx*`` names, which must not leak into the else-branch's
        enumeration scope — a program would be synthesized over variables
        that do not exist in the emitted term.
        """
        bool_shape = ScalarType(BOOL_BASE)
        for depth in range(1, self.max_depth + 1):
            for guard in enumerator.candidates(bool_shape, depth):
                inferred = self.session.try_infer(env, guard)
                if inferred is None or isinstance(inferred, ContextualType):
                    continue
                if not (isinstance(inferred, ScalarType) and inferred.base == BOOL_BASE):
                    continue
                truth = simplify(instantiate_value_var(inferred.refinement, TRUE))
                refuted = simplify(instantiate_value_var(inferred.refinement, FALSE))
                premises = env.embedding() + [truth]
                if self.session.backend.is_valid_implication(premises, ops.bool_lit(False)):
                    # A guard that can never be true here (e.g. `lt x x`)
                    # entails any condition vacuously but guards only a
                    # dead branch.
                    continue
                if self.session.backend.is_valid_implication(premises, condition):
                    return guard, refuted
        return None

    # -- verification ---------------------------------------------------------

    def _verify(self, program: Term) -> bool:
        """Re-check the synthesized program against the goal in a fresh
        session of the ordinary checker (round-trip closed)."""
        session, env = self.goal.session_environment(self._formula_literals)
        try:
            session.check_program(program, self.goal.goal, env, where=self.goal.name)
        except TypecheckError:
            return False
        return session.solve().solved


def synthesize(goal: SynthesisGoal, **limits) -> SynthesisResult:
    """One-shot convenience: run a :class:`Synthesizer` over ``goal``."""
    return Synthesizer(goal, **limits).synthesize()


def describe_goal(goal: SynthesisGoal) -> str:
    """``name :: type`` for progress output."""
    return f"{goal.name} :: {pretty_type(goal.goal)}"
