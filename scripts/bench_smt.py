#!/usr/bin/env python
"""Perf smoke benchmark: SAT-level stress cases for the CDCL core.

Exercises the solver layers the other suites only touch incidentally::

    PYTHONPATH=src python scripts/bench_smt.py --output BENCH_smt.json

* ``smt.pigeonhole-6`` — PHP(7,6), an unsatisfiable instance whose
  resolution proofs are exponential: it forces real conflict analysis,
  non-chronological backjumping, Luby restarts, and (with a tightened
  ``max_learnts``) learned-clause garbage collection.
* ``smt.horn-chain`` — a 12-unknown chained-implication Horn system where
  every fixpoint round re-asserts the previous round's valuations; the
  persistent incremental backend must serve every probe from the same
  SAT core without re-encoding.
* ``smt.assumption-churn`` — hundreds of push/assert_/check/pop cycles
  over a fixed formula pool: after the first pass every assertion must be
  answered from the selector table (``reused_assertions``), with zero
  re-encoding.
* ``smt.lia-chain`` — an arithmetic chain ``v0+1 <= v1 <= ... <= v9``
  probed by hundreds of push/pop-bracketed endpoint-bound assertions that
  alternate between feasible and infeasible windows: the incremental
  simplex must retract the bounds on pop and resume each check from its
  previous feasible basis (``tableau_pivots`` stays far below what
  from-scratch tableaus would cost).
* ``smt.stutter-deep`` — the paper's ``stutter`` synthesis goal at an
  enumeration depth one above the regular suite, the end-to-end pressure
  test for persistent incrementality across trial scopes.

The report records the CDCL counters (conflicts, propagations, learned
and GC'd clauses, restarts) next to the wall-clock numbers so regressions
reproduce deterministically; CI gates the timings against the committed
``BENCH_smt.json`` via ``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import benchlib  # noqa: E402

from repro.horn import HornSolver, build_space, constraint  # noqa: E402
from repro.logic import ops  # noqa: E402
from repro.logic.formulas import IntLit, Unknown, value_var  # noqa: E402
from repro.logic.qualifiers import default_qualifiers  # noqa: E402
from repro.logic.sorts import INT  # noqa: E402
from repro.smt import IncrementalSolver  # noqa: E402
from repro.smt.sat import SatSolver  # noqa: E402
from repro.syntax import parse_program  # noqa: E402
from repro.synth import SynthesisGoal, Synthesizer  # noqa: E402

x = ops.var("x", INT)
nu = value_var(INT)


def pigeonhole_clauses(holes: int):
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


def run_pigeonhole(holes: int = 6):
    solver = SatSolver(max_learnts=400)  # tight bound: exercise clause GC
    solver.add_clauses(pigeonhole_clauses(holes))
    start = time.perf_counter()
    result = solver.solve()
    elapsed = time.perf_counter() - start
    assert not result.satisfiable, "pigeonhole must be UNSAT"
    stats = solver.statistics
    assert stats.conflicts > 0 and stats.learned_clauses > 0
    return elapsed, {
        "decisions": stats.decisions,
        "propagations": stats.propagations,
        "conflicts": stats.conflicts,
        "restarts": stats.restarts,
        "learned_clauses": stats.learned_clauses,
        "gced_clauses": stats.gced_clauses,
    }


def run_horn_chain(length: int = 12):
    spaces = [
        build_space(f"P{i}", default_qualifiers(), [x, IntLit(0)], value_sort=INT)
        for i in range(length)
    ]
    constraints = [constraint([ops.ge(x, IntLit(0))], Unknown("P0", (("_v", x),)), "source")]
    for i in range(1, length):
        constraints.append(
            constraint([Unknown(f"P{i - 1}")], Unknown(f"P{i}", (("_v", nu),)), f"link{i}")
        )
    constraints.append(constraint([Unknown(f"P{length - 1}")], ops.ge(nu, IntLit(0)), "sink"))
    solver = HornSolver()
    start = time.perf_counter()
    solution = solver.solve(constraints, spaces)
    elapsed = time.perf_counter() - start
    assert solution.solved, "chain system must be solvable"
    backend = solver.backend.statistics
    return elapsed, {
        "validity_checks": solver.statistics.validity_checks,
        "model_pruned_qualifiers": solver.statistics.model_pruned_qualifiers,
        "sat_queries": backend.sat_queries,
        "theory_checks": backend.theory_checks,
        "shrink_theory_checks": backend.shrink_theory_checks,
        "propagations": backend.propagations,
        "theory_propagations": backend.theory_propagations,
        "conflicts": backend.conflicts,
    }


def run_assumption_churn(cycles: int = 200, pool: int = 40):
    variables = [ops.var(f"v{i}", INT) for i in range(8)]
    formulas = [
        ops.le(variables[i % 8], ops.plus(variables[(i * 3 + 1) % 8], IntLit(i % 5)))
        for i in range(pool)
    ]
    solver = IncrementalSolver()
    start = time.perf_counter()
    for cycle in range(cycles):
        solver.push()
        solver.assert_(formulas[cycle % pool])
        solver.assert_(formulas[(cycle * 7 + 3) % pool])
        solver.check()
        solver.pop()
    elapsed = time.perf_counter() - start
    stats = solver.statistics
    assert stats.encoded_assertions <= pool, "re-assertion must not re-encode"
    assert stats.reused_assertions >= 2 * cycles - pool
    return elapsed, {
        "sat_queries": stats.sat_queries,
        "encoded_assertions": stats.encoded_assertions,
        "reused_assertions": stats.reused_assertions,
        "theory_checks": stats.theory_checks,
        "learned_clauses": stats.learned_clauses,
        "propagations": stats.propagations,
    }


def run_lia_chain(cycles: int = 150, length: int = 10):
    variables = [ops.var(f"c{i}", INT) for i in range(length)]
    solver = IncrementalSolver()
    for below, above in zip(variables, variables[1:]):
        solver.assert_(ops.le(ops.plus(below, IntLit(1)), above))
    start = time.perf_counter()
    for cycle in range(cycles):
        low = cycle % 7
        solver.push()
        solver.assert_(ops.ge(variables[0], IntLit(low)))
        # A disjunction whose first disjunct contradicts the asserted lower
        # bound on the same variable: theory propagation must refute it from
        # the bound (one reason literal) instead of branching on it.
        solver.assert_(
            ops.or_(
                ops.le(variables[0], IntLit(low - 1)),
                ops.ge(variables[-1], IntLit(low)),
            )
        )
        if cycle % 3 == 0:
            # The chain forces v9 >= v0 + 9; a window of 8 is infeasible.
            solver.assert_(ops.le(variables[-1], IntLit(low + length - 2)))
            expected = False
        else:
            solver.assert_(ops.le(variables[-1], IntLit(low + length)))
            expected = True
        assert solver.check() == expected, "lia-chain verdict changed"
        solver.pop()
    elapsed = time.perf_counter() - start
    stats = solver.statistics
    assert stats.tableau_pivots > 0, "chain repair must pivot"
    assert stats.theory_propagations > 0, "bound propagation must fire"
    return elapsed, {
        "sat_queries": stats.sat_queries,
        "theory_checks": stats.theory_checks,
        "theory_propagations": stats.theory_propagations,
        "tableau_pivots": stats.tableau_pivots,
        "conflicts": stats.conflicts,
        "minimized_literals": stats.minimized_literals,
        "reused_assertions": stats.reused_assertions,
    }


def run_stutter_deep(depth: int = 5):
    source = (ROOT / "examples" / "stutter.sq").read_text()
    start = time.perf_counter()
    program = parse_program(source)
    synthesizer = Synthesizer(SynthesisGoal.from_program(program, "stutter"), max_depth=depth)
    result = synthesizer.synthesize()
    elapsed = time.perf_counter() - start
    assert result.solved and result.verified, "stutter-deep changed verdict"
    backend = synthesizer.session.backend.statistics
    counters = result.statistics.as_dict()
    counters.update(
        sat_queries=backend.sat_queries,
        theory_checks=backend.theory_checks,
        shrink_theory_checks=backend.shrink_theory_checks,
        conflicts=backend.conflicts,
        learned_clauses=backend.learned_clauses,
        theory_propagations=backend.theory_propagations,
        tableau_pivots=backend.tableau_pivots,
        lemmas_generalized=backend.lemmas_generalized,
        minimized_literals=backend.minimized_literals,
    )
    return elapsed, counters


BENCHMARKS = {
    "smt.pigeonhole-6": run_pigeonhole,
    "smt.horn-chain": run_horn_chain,
    "smt.assumption-churn": run_assumption_churn,
    "smt.lia-chain": run_lia_chain,
    "smt.stutter-deep": run_stutter_deep,
}


def main() -> int:
    return benchlib.run_suite("smt-perf-smoke", BENCHMARKS, "BENCH_smt.json", 3, __doc__)


if __name__ == "__main__":
    raise SystemExit(main())
