"""Warm solver stacks: one persistent incremental backend per worker.

A cold ``python -m repro`` invocation pays the full stack setup on every
query: a fresh SAT core, a fresh theory, every formula re-encoded, every
theory lemma re-learned.  A :class:`WarmStack` keeps **one**
:class:`repro.smt.solver.IncrementalSolver` alive across queries — the
same reuse a single synthesis run already gets from its shared session
backend, extended to *many* programs: encodings are keyed by interned
formulas, theory lemmas are valid sentences, so nothing a previous
program asserted can contaminate the next one's answers (sessions only
ever assert inside ``scoped()`` frames, which unwind even on error).

Each query runs inside :meth:`WarmStack.query`, which guards the backend
with an extra scope and — should a query die mid-flight — discards the
whole backend rather than trust a half-unwound one (``resets`` counts
how often that paranoia fired).  When a :class:`~repro.service.cache.
LemmaStore` is attached, the stack imports the persisted lemma pool into
every fresh backend and merges newly learned lemmas back on
:meth:`flush_lemmas` — the cross-run half of the warm start.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator, Optional

from .. import limits
from ..smt.solver import IncrementalSolver
from ..testing import faults
from .cache import LemmaStore


class WarmStack:
    """A reusable backend plus the bookkeeping ``/stats`` reports."""

    def __init__(self, lemma_store: Optional[LemmaStore] = None) -> None:
        self.lemma_store = lemma_store
        self.queries = 0
        self.resets = 0
        self.timeout_resets = 0
        self.lemmas_imported = 0
        self.lemmas_flushed = 0
        self._lock = threading.Lock()
        self.backend = self._fresh_backend()

    def _fresh_backend(self) -> IncrementalSolver:
        backend = IncrementalSolver()
        if self.lemma_store is not None:
            self.lemmas_imported += backend.import_theory_lemmas(self.lemma_store.load())
        return backend

    def reset(self, timeout: bool = False) -> None:
        """Replace the backend (after a failed query left it suspect).

        ``timeout=True`` marks a budget-triggered reset — counted
        separately so ``/stats`` and the batch summary can distinguish a
        query that *died* from one that was *cancelled*.
        """
        self.resets += 1
        if timeout:
            self.timeout_resets += 1
        self.backend = self._fresh_backend()

    @contextmanager
    def query(self) -> Iterator[IncrementalSolver]:
        """One query's exclusive use of the warm backend.

        Serializes queries (the SAT core is single-threaded state), opens
        a guard scope so any assertion the query leaks is popped, and
        resets the backend if the query raises — a budget exhaustion
        (:class:`~repro.limits.BudgetExhausted`) counts as a *timeout*
        reset, any other exception as a plain one.
        """
        with self._lock:
            self.queries += 1
            backend = self.backend
            backend.push()
            try:
                if faults.maybe_fire("stack.stall"):
                    _stall_past_deadline()
                yield backend
            except limits.BudgetExhausted:
                self.reset(timeout=True)
                raise
            except Exception:
                self.reset()
                raise
            else:
                backend.pop()

    def flush_lemmas(self) -> int:
        """Merge this backend's learned lemmas into the persistent pool."""
        if self.lemma_store is None:
            return 0
        with self._lock:
            exported = self.backend.export_theory_lemmas()
        self.lemmas_flushed = len(exported)
        return self.lemma_store.merge(exported)

    def stats(self) -> dict:
        return {
            "queries": self.queries,
            "resets": self.resets,
            "timeout_resets": self.timeout_resets,
            "lemmas_imported": self.lemmas_imported,
            "lemmas_flushed": self.lemmas_flushed,
        }


def _stall_past_deadline() -> None:
    """Chaos effect: sleep until the active deadline has passed (bounded
    at two seconds for scopes without one), then hit a checkpoint — the
    injected form of a query that outlives its budget."""
    left = limits.remaining_ms()
    time.sleep(min((left or 2000.0) / 1000.0 + 0.01, 2.0))
    limits.checkpoint()
