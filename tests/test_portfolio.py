"""Differential tests for the Horn search portfolio.

The portfolio must be an implementation detail of *how fast* an answer
arrives, never of *which* answer: serial search, the serial fallback
(``max_workers=1``), and the process portfolio (``max_workers=2``) must
agree on solvedness, the chosen assignment, and the surviving candidate
set — on disjunctive systems and on the whole examples corpus.
"""

import pickle
from pathlib import Path

import pytest

from repro.horn import (
    HornSolver,
    QualifierSpace,
    SolveOptions,
    constraint,
    solve_portfolio,
)
from repro.logic import ops
from repro.logic.formulas import IntLit, Unknown, value_var
from repro.logic.sorts import INT
from repro.syntax.parser import parse_program
from repro.syntax.types import generalize
from repro.typecheck.environment import EMPTY
from repro.typecheck.session import TypecheckSession
from test_horn import disjunctive_system

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

x = ops.var("x", INT)
y = ops.var("y", INT)
nu = value_var(INT)


def two_guard_system():
    """Two abducible guards constrained jointly — more branching than the
    single-guard demo, so the portfolio actually distributes work."""
    zero, one = IntLit(0), IntLit(1)
    spaces = {
        "C": QualifierSpace(
            "C", (ops.ge(x, zero), ops.ge(x, one), ops.le(x, IntLit(-1))), abducible=True
        ),
        "D": QualifierSpace(
            "D", (ops.ge(y, zero), ops.le(y, zero), ops.le(y, IntLit(-1))), abducible=True
        ),
    }
    constraints = [
        constraint([Unknown("C")], ops.ge(x, one), "need-x-pos"),
        constraint([Unknown("D")], ops.le(y, IntLit(-1)), "need-y-neg"),
        constraint([Unknown("C"), Unknown("D")], ops.gt(x, y), "joint"),
    ]
    return constraints, spaces


def guards_of(solution, names):
    return [
        {name: frozenset(candidate.get(name, ())) for name in names}
        for candidate in solution.candidates
    ]


class TestPortfolioAgreesWithSerial:
    @pytest.mark.parametrize("system", [disjunctive_system, two_guard_system])
    def test_workers_do_not_change_the_answer(self, system):
        constraints, spaces = system()
        names = sorted(spaces)
        serial = HornSolver().solve(constraints, spaces)
        fallback = HornSolver().solve(constraints, spaces, SolveOptions(max_workers=1))
        parallel = HornSolver().solve(constraints, spaces, SolveOptions(max_workers=2))
        assert serial.solved == fallback.solved == parallel.solved
        assert serial.assignment == fallback.assignment == parallel.assignment
        assert (
            guards_of(serial, names)
            == guards_of(fallback, names)
            == guards_of(parallel, names)
        )

    def test_portfolio_entry_point_matches_solver_dispatch(self):
        constraints, spaces = disjunctive_system()
        via_solve = HornSolver().solve(constraints, spaces, SolveOptions(max_workers=2))
        via_portfolio = solve_portfolio(constraints, spaces, SolveOptions(max_workers=2))
        assert via_solve.solved and via_portfolio.solved
        assert via_solve.assignment == via_portfolio.assignment

    def test_unsolvable_system_stays_unsolvable(self):
        zero = IntLit(0)
        spaces = {
            "C": QualifierSpace("C", (ops.ge(x, zero), ops.le(x, zero)), abducible=True)
        }
        constraints = [
            constraint([Unknown("C")], ops.ge(x, IntLit(1)), "up"),
            constraint([Unknown("C")], ops.le(x, IntLit(-1)), "down"),
        ]
        serial = HornSolver().solve(constraints, spaces)
        parallel = HornSolver().solve(constraints, spaces, SolveOptions(max_workers=2))
        assert not serial.solved and not parallel.solved


class TestLemmaBus:
    def test_branches_share_mus_lemmas(self):
        constraints, spaces = disjunctive_system()
        coordinator = HornSolver()
        solution = coordinator.solve(constraints, spaces, SolveOptions(max_workers=2))
        assert solution.solved
        # branch searches imported MUSes learned elsewhere (at minimum the
        # root's) instead of rediscovering every one from scratch
        assert coordinator.statistics.lemmas_shared > 0
        assert coordinator.statistics.muses_enumerated > 0


class TestWorkerPayloadsPickle:
    """The portfolio ships constraints/spaces to worker processes; the
    precomputed formula hashes must be rebuilt on arrival (enum members
    hash by identity), which is what Formula.__reduce__ guarantees."""

    def test_formula_round_trip_preserves_equality_and_hash(self):
        formulas = [ops.ge(x, IntLit(0)), ops.and_(ops.le(x, nu), Unknown("P", (("_v", x),)))]
        for formula in formulas:
            clone = pickle.loads(pickle.dumps(formula))
            assert clone == formula
            assert hash(clone) == hash(formula)

    def test_constraint_and_space_round_trip(self):
        constraints, spaces = disjunctive_system()
        cloned_constraints = pickle.loads(pickle.dumps(tuple(constraints)))
        assert list(cloned_constraints) == constraints
        clone = pickle.loads(pickle.dumps(spaces["C"]))
        assert clone.unknown == "C" and clone.abducible
        assert clone.qualifiers == spaces["C"].qualifiers


class TestExamplesCorpusDifferential:
    """Portfolio results are pinned to serial results for every definition
    in the committed examples corpus."""

    @pytest.mark.parametrize(
        "example", sorted(p.name for p in EXAMPLES.glob("*.sq"))
    )
    def test_check_agrees_with_serial(self, example):
        program = parse_program((EXAMPLES / example).read_text())
        for name, term in program.definitions.items():
            outcomes = []
            for options in (None, SolveOptions(max_workers=2)):
                session = TypecheckSession(
                    datatypes=program.datatypes.values(),
                    measure_defs=program.measures.values(),
                )
                env = session.bind_constructors(EMPTY)
                for signame, rtype in program.signatures.items():
                    if signame == name:
                        break
                    env = env.bind(signame, generalize(rtype))
                session.check_program(term, program.signatures[name], env, where=name)
                outcomes.append(session.solve(options))
            serial, parallel = outcomes
            assert serial.solved == parallel.solved, name
            assert serial.assignment == parallel.assignment, name
            assert serial.candidates == parallel.candidates, name
