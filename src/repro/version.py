"""The package version, resolved once.

The single source of truth is ``pyproject.toml``.  When the package is
installed, its metadata carries that value and :mod:`importlib.metadata`
answers; when running from a source checkout (``PYTHONPATH=src``), the
``pyproject.toml`` two directories up is read directly, so ``python -m
repro --version`` and the service's ``/healthz`` endpoint report the same
string either way.  The version also salts the service cache keys (see
:mod:`repro.service.cache`), so bumping it invalidates every persisted
result.
"""

from __future__ import annotations

import re
from pathlib import Path

PACKAGE_NAME = "repro-synquid"

_VERSION_RE = re.compile(r'^version\s*=\s*"(?P<version>[^"]+)"\s*$', re.M)


def _version_from_pyproject() -> str:
    pyproject = Path(__file__).resolve().parent.parent.parent / "pyproject.toml"
    try:
        match = _VERSION_RE.search(pyproject.read_text())
    except OSError:
        return "0+unknown"
    return match.group("version") if match else "0+unknown"


def package_version() -> str:
    """The version string, from installed metadata or ``pyproject.toml``."""
    try:
        from importlib.metadata import PackageNotFoundError, version
    except ImportError:  # pragma: no cover - Python < 3.8 has no importlib.metadata
        return _version_from_pyproject()
    try:
        return version(PACKAGE_NAME)
    except PackageNotFoundError:
        return _version_from_pyproject()


__version__ = package_version()
