"""Per-solver fresh-name generation.

Every auxiliary symbol a solver invents (definitional variables for lifted
``ite`` terms, witness elements for negative set atoms) must be unique
*within* that solver instance, and name generation must not leak state
between instances: two solvers given the same queries in the same order
produce the same names, which keeps runs reproducible and instances
independent.
"""

from __future__ import annotations

from typing import Dict

from ..logic.formulas import Var
from ..logic.sorts import Sort


class FreshNames:
    """A counter-per-kind fresh-name source owned by a single solver."""

    def __init__(self, prefix: str = "__") -> None:
        self._prefix = prefix
        self._counts: Dict[str, int] = {}

    def fresh(self, kind: str) -> str:
        """The next unused name of the given kind, e.g. ``__ite3``."""
        count = self._counts.get(kind, 0)
        self._counts[kind] = count + 1
        return f"{self._prefix}{kind}{count}"

    def fresh_var(self, kind: str, sort: Sort) -> Var:
        """A fresh variable of the given kind and sort."""
        return Var(self.fresh(kind), sort)
