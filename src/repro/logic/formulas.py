"""Refinement terms (formulas) of the specification logic.

This is the language of refinement predicates ``psi`` from Fig. 2 of the
paper: boolean connectives, linear integer arithmetic, finite sets, and
uninterpreted (measure) applications.  The distinguished *value variable*
``nu`` is an ordinary :class:`Var` named ``_v``.

Formulas are immutable; structural equality and hashing are used pervasively
(assignments, caches, qualifier sets), so ``==`` is structural — use
:func:`repro.logic.ops.eq` to build an equality *formula*.

Every node precomputes its structural hash at construction time
(:meth:`Formula._seal`), so hashing is O(1) and formulas can serve directly
as dictionary keys in the hot caches of the SMT substrate and the Horn
solver.  :func:`intern_formula` additionally canonicalizes structurally
equal formulas to a single shared instance, which makes the identity fast
path of ``==`` fire on cache hits.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Dict, Tuple

from .sorts import BOOL, INT, SetSort, Sort

#: Conventional name of the value variable nu.
VALUE_VAR = "_v"


class UnaryOp(enum.Enum):
    """Unary connectives and arithmetic."""

    NOT = "!"
    NEG = "-"


class BinaryOp(enum.Enum):
    """Binary interpreted symbols of the refinement logic."""

    # arithmetic (Int, Int) -> Int
    PLUS = "+"
    MINUS = "-"
    TIMES = "*"
    # comparisons (Int, Int) -> Bool
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    # polymorphic equality (a, a) -> Bool
    EQ = "=="
    NEQ = "!="
    # boolean connectives
    AND = "&&"
    OR = "||"
    IMPLIES = "==>"
    IFF = "<==>"
    # set operations (Set a, Set a) -> Set a
    UNION = "+s"
    INTERSECT = "*s"
    DIFF = "-s"
    # set predicates
    MEMBER = "in"        # (a, Set a) -> Bool
    SUBSET = "<=s"       # (Set a, Set a) -> Bool


ARITH_OPS = {BinaryOp.PLUS, BinaryOp.MINUS, BinaryOp.TIMES}
COMPARISON_OPS = {BinaryOp.LT, BinaryOp.LE, BinaryOp.GT, BinaryOp.GE}
EQUALITY_OPS = {BinaryOp.EQ, BinaryOp.NEQ}
BOOLEAN_OPS = {BinaryOp.AND, BinaryOp.OR, BinaryOp.IMPLIES, BinaryOp.IFF}
SET_OPS = {BinaryOp.UNION, BinaryOp.INTERSECT, BinaryOp.DIFF}
SET_PREDICATES = {BinaryOp.MEMBER, BinaryOp.SUBSET}


class Formula:
    """Base class of refinement terms.

    Subclasses are frozen dataclasses with ``eq=False``: equality and
    hashing are provided here, backed by a structural key precomputed once
    in ``__post_init__`` (child hashes are already cached, so sealing a node
    is O(arity), and ``hash`` is O(1) afterwards).
    """

    _key: Tuple
    _hash: int

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    def _seal(self, *key) -> None:
        """Record the structural key and its hash (called from __post_init__)."""
        object.__setattr__(self, "_key", key)
        object.__setattr__(self, "_hash", hash(key))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if self.__class__ is not other.__class__:
            return False
        if self._hash != other._hash:
            return False
        return self._key == other._key  # type: ignore[attr-defined]

    def __reduce__(self) -> Tuple:
        # Rebuild through the constructor rather than copying __dict__: the
        # precomputed _key/_hash embed enum identities and child hashes that
        # are only valid within one process, and the portfolio ships
        # formulas to worker processes.  __post_init__ reseals on arrival.
        return (
            self.__class__,
            tuple(getattr(self, f.name) for f in dataclasses.fields(self)),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .pretty import pretty_formula

        return pretty_formula(self)


@dataclass(frozen=True, eq=False, repr=False)
class BoolLit(Formula):
    """``True`` or ``False``."""

    value: bool

    def __post_init__(self) -> None:
        self._seal("bool", self.value)

    @property
    def sort(self) -> Sort:
        return BOOL


@dataclass(frozen=True, eq=False, repr=False)
class IntLit(Formula):
    """An integer constant."""

    value: int

    def __post_init__(self) -> None:
        self._seal("int", self.value)

    @property
    def sort(self) -> Sort:
        return INT


@dataclass(frozen=True, eq=False, repr=False)
class Var(Formula):
    """A logical variable (a program variable or the value variable)."""

    name: str
    var_sort: Sort

    def __post_init__(self) -> None:
        self._seal("var", self.name, self.var_sort)

    @property
    def sort(self) -> Sort:
        return self.var_sort


@dataclass(frozen=True, eq=False, repr=False)
class Unknown(Formula):
    """A predicate unknown ``P_i`` whose valuation is a liquid formula,
    discovered by the Horn solver.  ``substitution`` is a pending renaming
    applied when the unknown is instantiated (kept as a tuple of pairs so the
    node stays hashable)."""

    name: str
    substitution: Tuple[Tuple[str, "Formula"], ...] = ()

    def __post_init__(self) -> None:
        self._seal("unknown", self.name, self.substitution)

    @property
    def sort(self) -> Sort:
        return BOOL


@dataclass(frozen=True, eq=False, repr=False)
class Unary(Formula):
    """Application of a unary interpreted symbol."""

    op: UnaryOp
    arg: Formula

    def __post_init__(self) -> None:
        self._seal("unary", self.op, self.arg)

    @property
    def sort(self) -> Sort:
        return BOOL if self.op is UnaryOp.NOT else INT


@dataclass(frozen=True, eq=False, repr=False)
class Binary(Formula):
    """Application of a binary interpreted symbol."""

    op: BinaryOp
    lhs: Formula
    rhs: Formula

    def __post_init__(self) -> None:
        self._seal("binary", self.op, self.lhs, self.rhs)

    @property
    def sort(self) -> Sort:
        if self.op in ARITH_OPS:
            return INT
        if self.op in SET_OPS:
            return self.lhs.sort
        return BOOL


@dataclass(frozen=True, eq=False, repr=False)
class Ite(Formula):
    """``if cond then then_ else else_`` at the level of refinement terms."""

    cond: Formula
    then_: Formula
    else_: Formula

    def __post_init__(self) -> None:
        self._seal("ite", self.cond, self.then_, self.else_)

    @property
    def sort(self) -> Sort:
        return self.then_.sort


@dataclass(frozen=True, eq=False, repr=False)
class App(Formula):
    """Application of an uninterpreted function (a *measure* such as ``len``
    or ``elems``) to argument terms."""

    func: str
    args: Tuple[Formula, ...]
    result_sort: Sort

    def __post_init__(self) -> None:
        self._seal("app", self.func, self.args, self.result_sort)

    @property
    def sort(self) -> Sort:
        return self.result_sort


@dataclass(frozen=True, eq=False, repr=False)
class SetLit(Formula):
    """A finite set literal ``[e1, ..., ek]``; the empty set is ``SetLit(s, ())``."""

    element_sort: Sort
    elements: Tuple[Formula, ...] = ()

    def __post_init__(self) -> None:
        self._seal("setlit", self.element_sort, self.elements)

    @property
    def sort(self) -> Sort:
        return SetSort(self.element_sort)


TRUE = BoolLit(True)
FALSE = BoolLit(False)


def is_true(formula: Formula) -> bool:
    """Is ``formula`` the literal ``True``?"""
    return isinstance(formula, BoolLit) and formula.value


def is_false(formula: Formula) -> bool:
    """Is ``formula`` the literal ``False``?"""
    return isinstance(formula, BoolLit) and not formula.value


def value_var(sort: Sort) -> Var:
    """The value variable ``nu`` at the given sort."""
    return Var(VALUE_VAR, sort)


# ---------------------------------------------------------------------------
# interning
# ---------------------------------------------------------------------------

_INTERN_TABLE: Dict[Formula, Formula] = {TRUE: TRUE, FALSE: FALSE}


def intern_formula(formula: Formula) -> Formula:
    """The canonical shared instance of a formula.

    Structurally equal formulas intern to the same object, so the identity
    fast path of ``==`` fires on repeated cache lookups and dictionaries
    keyed by formulas behave like pointer maps.  Children are interned
    recursively; the table lives for the process (formulas are tiny and the
    synthesis workload revisits the same predicates constantly).
    """
    cached = _INTERN_TABLE.get(formula)
    if cached is not None:
        return cached
    if isinstance(formula, Unary):
        canonical: Formula = Unary(formula.op, intern_formula(formula.arg))
    elif isinstance(formula, Binary):
        canonical = Binary(formula.op, intern_formula(formula.lhs), intern_formula(formula.rhs))
    elif isinstance(formula, Ite):
        canonical = Ite(
            intern_formula(formula.cond),
            intern_formula(formula.then_),
            intern_formula(formula.else_),
        )
    elif isinstance(formula, App):
        canonical = App(
            formula.func,
            tuple(intern_formula(arg) for arg in formula.args),
            formula.result_sort,
        )
    elif isinstance(formula, SetLit):
        canonical = SetLit(
            formula.element_sort,
            tuple(intern_formula(el) for el in formula.elements),
        )
    elif isinstance(formula, Unknown) and formula.substitution:
        canonical = Unknown(
            formula.name,
            tuple((name, intern_formula(value)) for name, value in formula.substitution),
        )
    else:
        canonical = formula
    _INTERN_TABLE[canonical] = canonical
    return canonical


def intern_table_size() -> int:
    """Number of canonical formulas currently interned (for diagnostics)."""
    return len(_INTERN_TABLE)
