"""Module-level convenience interface to the SMT substrate.

The type checker and the Horn solver issue a very large number of small
validity / satisfiability queries; routing them through a shared default
solver lets results be memoized across the whole synthesis run.
"""

from __future__ import annotations

from typing import Optional

from ..logic.formulas import Formula
from .solver import SmtSolver, SolverStatistics

_default_solver: Optional[SmtSolver] = None


def default_solver() -> SmtSolver:
    """The process-wide shared solver instance."""
    global _default_solver
    if _default_solver is None:
        _default_solver = SmtSolver()
    return _default_solver


def reset_default_solver() -> None:
    """Replace the shared solver (drops caches and statistics)."""
    global _default_solver
    _default_solver = SmtSolver()


def valid(formula: Formula) -> bool:
    """Is the formula valid (true in all models)?"""
    return default_solver().is_valid(formula)


def satisfiable(formula: Formula) -> bool:
    """Is the formula satisfiable (true in some model)?"""
    return default_solver().is_satisfiable(formula)


def statistics() -> SolverStatistics:
    """Counters of the shared solver."""
    return default_solver().statistics
