"""Fault injection: named failure points the chaos suite can arm.

Production code hosts *injection points* — one :func:`maybe_fire` call at
each place the robustness layer claims to survive: a portfolio worker
dying mid-solve, a cache entry corrupting mid-read, a theory check
raising, a warm stack stalling past its deadline.  Disarmed (the default,
and the only state outside the chaos tests) a point is a dict lookup
against an empty table plus, on first use per process, one environment
read — nothing fires, nothing allocates.

Arming is either programmatic (:func:`arm`, for same-process tests) or
via the ``REPRO_FAULTS`` environment variable (``point`` or
``point:count``, comma-separated) — the env path exists because the
portfolio's worker *processes* must inherit the arming, and environment
plus forked module state is exactly what they inherit.  Each armed point
fires ``count`` times (default 1) per process, then stays quiet, so a
chaos test can kill exactly one worker and assert the rest of the run
degrades rather than dies.

The effect lives at the call site (the point only answers "should I fail
here, now?"): killing a process, flipping a corrupt bit, raising
:class:`FaultInjected`.  That keeps this module dependency-free and the
injection points one honest line each.
"""

from __future__ import annotations

import os
from typing import Dict

FAULTS_ENV = "REPRO_FAULTS"

#: Remaining fires per armed point (process-local).
_armed: Dict[str, int] = {}
_env_loaded = False


class FaultInjected(RuntimeError):
    """The failure an armed point raises when its effect is "raise"."""


def _load_env() -> None:
    """Fold ``REPRO_FAULTS`` into the armed table once per process."""
    global _env_loaded
    if _env_loaded:
        return
    _env_loaded = True
    spec = os.environ.get(FAULTS_ENV, "")
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        point, _, count = part.partition(":")
        try:
            times = int(count) if count else 1
        except ValueError:
            times = 1
        _armed[point] = _armed.get(point, 0) + times


def arm(point: str, times: int = 1) -> None:
    """Arm ``point`` to fire ``times`` more times in this process."""
    _load_env()
    _armed[point] = _armed.get(point, 0) + times


def reset() -> None:
    """Disarm everything (chaos-test teardown); the environment is
    re-read on next use so ``monkeypatch.setenv`` keeps working."""
    global _env_loaded
    _armed.clear()
    _env_loaded = False


def maybe_fire(point: str) -> bool:
    """Consume one charge of ``point`` if armed; the caller performs the
    actual failure when this returns ``True``."""
    if not _env_loaded:
        _load_env()
    left = _armed.get(point, 0)
    if left <= 0:
        return False
    _armed[point] = left - 1
    return True
