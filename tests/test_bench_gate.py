"""Unit tests for the CI perf regression gate (scripts/check_bench_regression.py)."""

import importlib.util
import json
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def report(path: Path, **means) -> Path:
    payload = {
        "suite": "test",
        "benchmarks": [{"name": name, "mean_s": mean} for name, mean in means.items()],
    }
    path.write_text(json.dumps(payload))
    return path


class TestCompare:
    def test_within_threshold_passes(self):
        failures, ratios, skipped = gate.compare(
            {"a": 0.010, "b": 0.020}, {"a": 0.019, "b": 0.030}, 2.5, 0.002
        )
        assert failures == []
        assert {name for name, _ in ratios} == {"a", "b"}
        assert skipped == []

    def test_regression_fails_per_case(self):
        baseline = {"a": 0.010, "b": 0.010}
        failures, _, _ = gate.compare(baseline, {"a": 0.030, "b": 0.011}, 2.5, 0.002)
        assert len(failures) == 1
        assert failures[0].startswith("a ")
        assert "2.50x" in failures[0]

    def test_threshold_is_strict_greater(self):
        failures, _, _ = gate.compare({"a": 0.010}, {"a": 0.025}, 2.5, 0.002)
        assert failures == []

    def test_sub_noise_cases_are_exempt(self):
        """A 10x blowup between 50us and 500us is machine noise, not a
        solver regression."""
        failures, ratios, skipped = gate.compare({"a": 0.00005}, {"a": 0.0005}, 2.5, 0.002)
        assert failures == []
        assert ratios == []
        assert skipped and "sub-noise" in skipped[0]

    def test_one_sided_cases_are_reported_not_failed(self):
        failures, ratios, skipped = gate.compare({"old": 0.01}, {"new": 0.01}, 2.5, 0.002)
        assert failures == []
        assert ratios == []
        assert any("no baseline" in note for note in skipped)
        assert any("not measured" in note for note in skipped)


class TestCounterDrift:
    def test_tracked_counter_changes_are_reported(self):
        baseline = {"case": {"theory_propagations": 10, "tableau_pivots": 5}}
        candidate = {"case": {"theory_propagations": 12, "tableau_pivots": 5}}
        notes = gate.counter_drift(baseline, candidate)
        assert notes == ["case.theory_propagations 10->12"]

    def test_untracked_counters_are_ignored(self):
        notes = gate.counter_drift(
            {"case": {"sat_queries": 100}}, {"case": {"sat_queries": 999}}
        )
        assert notes == []

    def test_newly_appearing_tracked_counter_is_drift(self):
        """A counter present on only one side (e.g. a schema extension)
        reads as None on the other — visible, but still report-only."""
        notes = gate.counter_drift({"case": {}}, {"case": {"lemmas_generalized": 3}})
        assert notes == ["case.lemmas_generalized None->3"]

    def test_one_sided_cases_produce_no_drift(self):
        notes = gate.counter_drift(
            {"old": {"tableau_pivots": 1}}, {"new": {"tableau_pivots": 2}}
        )
        assert notes == []

    def test_drift_never_fails_the_gate(self, tmp_path, capsys, monkeypatch):
        payload = lambda pivots: {  # noqa: E731
            "suite": "test",
            "benchmarks": [
                {"name": "case", "mean_s": 0.010, "counters": {"tableau_pivots": pivots}}
            ],
        }
        baseline = tmp_path / "base.json"
        baseline.write_text(json.dumps(payload(5)))
        candidate = tmp_path / "cand.json"
        candidate.write_text(json.dumps(payload(9)))
        monkeypatch.setattr(
            "sys.argv",
            ["gate", "--baseline", str(baseline), "--candidate", str(candidate)],
        )
        assert gate.main() == 0
        summary = capsys.readouterr().out.strip()
        assert summary.count("\n") == 0, "gate must print exactly one line"
        assert "OK" in summary
        assert "counter drift (report-only): case.tableau_pivots 5->9" in summary


class TestEndToEnd:
    def test_main_exit_codes_and_summary(self, tmp_path, capsys, monkeypatch):
        baseline = report(tmp_path / "base.json", case=0.010)
        good = report(tmp_path / "good.json", case=0.012)
        bad = report(tmp_path / "bad.json", case=0.100)

        monkeypatch.setattr(
            "sys.argv",
            ["gate", "--baseline", str(baseline), "--candidate", str(good)],
        )
        assert gate.main() == 0
        summary = capsys.readouterr().out.strip()
        assert summary.count("\n") == 0, "gate must print exactly one line"
        assert "OK" in summary and "worst: case" in summary

        monkeypatch.setattr(
            "sys.argv",
            ["gate", "--baseline", str(baseline), "--candidate", str(bad)],
        )
        assert gate.main() == 1
        summary = capsys.readouterr().out.strip()
        assert "FAIL" in summary and "case 10.00x > 2.50x" in summary

    def test_committed_baselines_are_loadable(self):
        root = SCRIPT.parent.parent
        horn = gate.load_means(root / "BENCH_horn.json")
        typecheck = gate.load_means(root / "BENCH_typecheck.json")
        smt = gate.load_means(root / "BENCH_smt.json")
        assert {"horn.max", "horn.abs"} <= set(horn)
        assert {
            "typecheck.length",
            "typecheck.append",
            "typecheck.replicate",
            "typecheck.stutter",
            "typecheck.stutter-reject",
        } == set(typecheck)
        assert {
            "smt.pigeonhole-6",
            "smt.horn-chain",
            "smt.assumption-churn",
            "smt.lia-chain",
            "smt.stutter-deep",
        } == set(smt)
        service = gate.load_means(root / "BENCH_service.json")
        assert {
            "service.batch-cold",
            "service.batch-warm",
            "service.server-check",
        } == set(service)

    def test_committed_service_baseline_witnesses_cache_hits(self):
        """The warm-sweep case must record full cache reuse — hit counters
        are what make its wall-clock number meaningful."""
        root = SCRIPT.parent.parent
        counters = gate.load_counters(root / "BENCH_service.json")
        warm = counters["service.batch-warm"]
        assert warm["cache_hits"] == warm["queries"] > 0
        assert warm["cache_misses"] == 0
        assert counters["service.batch-cold"]["cache_hits"] == 0

    def test_committed_synth_baseline_witnesses_candidate_search(self):
        """The synthesis suite must keep at least one benchmark that
        actually walks the candidate-set Horn search — several guard
        candidates explored and MUS pruning firing — so a perf regression
        in disjunctive abduction cannot hide behind guard-free goals."""
        root = SCRIPT.parent.parent
        synth = gate.load_counters(root / "BENCH_synth.json")
        assert "synth.sign" in synth, "the disjunctive benchmark must stay committed"
        searched = [c for c in synth.values() if c.get("candidates_explored", 0) > 1]
        assert searched, "no committed benchmark explores multiple guard candidates"
        assert any(c.get("muses_enumerated", 0) > 0 for c in searched)

    def test_committed_baselines_complete_well_inside_budgets(self):
        """Every committed benchmark mean must sit comfortably inside the
        per-query budgets the robustness layer advertises (a goal that
        needs seconds would make documented timeouts like
        ``--timeout-ms 500`` meaningless on reference hardware).  The
        bound is the slowest committed case (the cold service sweep at
        ~1.6s) plus headroom — genuine runaway growth, not noise, trips
        it."""
        root = SCRIPT.parent.parent
        budget_s = 2.5
        for suite in ("horn", "typecheck", "synth", "smt", "service"):
            means = gate.load_means(root / f"BENCH_{suite}.json")
            assert means, f"BENCH_{suite}.json must stay committed"
            for name, mean_s in means.items():
                assert mean_s < budget_s, (
                    f"{name} mean {mean_s:.3f}s exceeds the {budget_s}s "
                    "budget envelope"
                )

    def test_committed_smt_baseline_exercises_new_counters(self):
        """At least one committed benchmark must witness theory propagation
        and lemma generalization actually firing."""
        root = SCRIPT.parent.parent
        smt = gate.load_counters(root / "BENCH_smt.json")
        synth = gate.load_counters(root / "BENCH_synth.json")
        cases = {**smt, **synth}.values()
        assert any(c.get("theory_propagations", 0) > 0 for c in cases)
        assert any(c.get("lemmas_generalized", 0) > 0 for c in cases)
