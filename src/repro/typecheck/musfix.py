"""Deprecated location of :class:`repro.horn.musfix.MusFixSolver`.

The MUS enumerator always belonged to the Horn layer (its imports said as
much); it now lives in :mod:`repro.horn.musfix`.  Importing it from here
still works for one release but warns.
"""

from __future__ import annotations

import warnings
from typing import Any

_MOVED = ("MusFixSolver", "MusFixStatistics", "MusLemma", "CandidateLike")


def __getattr__(name: str) -> Any:
    if name in _MOVED:
        warnings.warn(
            f"repro.typecheck.musfix.{name} has moved to repro.horn.musfix; "
            "this alias will be removed in the next release",
            DeprecationWarning,
            stacklevel=2,
        )
        from ..horn import musfix

        return getattr(musfix, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list:
    return sorted(_MOVED)
