"""Horn constraints over predicate unknowns (Sec. 5 of the paper).

A Horn constraint is an implication ``p1 && ... && pk ==> c`` whose premises
may mention predicate unknowns anywhere and whose conclusion is either a
single predicate unknown (a *weakening* constraint — solving it may shrink
the unknown's valuation) or an unknown-free formula (a *definite*
constraint — it can only be checked, never repaired by weakening, because
weakening the premises proves less).

The type checker emits such constraints while walking the program (liquid
type inference reduces subtyping between refinement types to exactly this
shape); the Horn solver finds valuations for the unknowns that make every
constraint valid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from ..logic.formulas import Formula, Unknown
from ..logic.transform import unknowns as formula_unknowns


@dataclass(frozen=True)
class HornConstraint:
    """``premises ==> conclusion`` with unknowns on either side.

    ``label`` is free-form provenance (e.g. the program location that
    produced the constraint) surfaced in diagnostics.  ``provenance`` is
    the structured form the type checker emits: the trail of judgments
    (program location, branch, subtyping obligation) that produced the
    constraint, outermost first, so an unsolvable system can name the
    failing obligation precisely (see :meth:`origin`).
    """

    premises: Tuple[Formula, ...]
    conclusion: Formula
    label: str = ""
    provenance: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.conclusion, Unknown) and formula_unknowns(self.conclusion):
            raise ValueError(
                "conclusion must be a single predicate unknown or unknown-free, "
                f"got: {self.conclusion!r}"
            )

    # -- structure -----------------------------------------------------------

    def conclusion_unknown(self) -> Optional[Unknown]:
        """The conclusion's predicate unknown, if this is a weakening
        constraint."""
        return self.conclusion if isinstance(self.conclusion, Unknown) else None

    def is_definite(self) -> bool:
        """Is the conclusion unknown-free?"""
        return not isinstance(self.conclusion, Unknown)

    def premise_unknowns(self) -> FrozenSet[str]:
        """Names of unknowns occurring in the premises."""
        names = set()
        for premise in self.premises:
            names |= formula_unknowns(premise)
        return frozenset(names)

    def unknowns(self) -> FrozenSet[str]:
        """Names of all unknowns occurring in the constraint."""
        names = set(self.premise_unknowns())
        names |= formula_unknowns(self.conclusion)
        return frozenset(names)

    # -- diagnostics ---------------------------------------------------------

    def origin(self) -> str:
        """Where this constraint came from, for error messages: the
        provenance trail when present, else the label, else a placeholder."""
        if self.provenance:
            return " / ".join(self.provenance)
        return self.label or "<unlabeled constraint>"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lhs = " && ".join(repr(p) for p in self.premises) or "True"
        tag = f"  [{self.label}]" if self.label else ""
        return f"{lhs} ==> {self.conclusion!r}{tag}"


def constraint(
    premises: Iterable[Formula],
    conclusion: Formula,
    label: str = "",
    provenance: Tuple[str, ...] = (),
) -> HornConstraint:
    """Convenience constructor accepting any iterable of premises."""
    return HornConstraint(tuple(premises), conclusion, label, provenance)
