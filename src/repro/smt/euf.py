"""Congruence closure for equality with uninterpreted functions (EUF).

Measures (``len``, ``elems``, ``keys``, ...) are uninterpreted functions in
the refinement logic, so the theory solver needs congruence reasoning:
``t1 = t2`` must entail ``len t1 = len t2``.  This module implements a
union-find based congruence closure over first-order terms.

Terms are plain tuples: ``("app", fname, child_id, ...)`` for applications
and ``("const", name)`` for constants, interned to integer ids by
:class:`TermBank`.

The closure is *backtrackable*: every union is recorded on an undo trail,
so :meth:`CongruenceClosure.mark` / :meth:`CongruenceClosure.undo_to`
un-merge classes in reverse assertion order.  That is what lets
:class:`repro.smt.theory.IncrementalTheory` keep one persistent closure
across thousands of ``push``/``pop``-bracketed theory checks.  To keep
undo exact, ``_find`` does **not** path-compress (union-by-size bounds the
depth instead): undoing a union only has to detach the one root the union
attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple


@dataclass
class TermBank:
    """Interns first-order terms as integer ids."""

    _terms: List[Tuple] = field(default_factory=list)
    _ids: Dict[Tuple, int] = field(default_factory=dict)

    def constant(self, name: str) -> int:
        """Intern a constant symbol."""
        return self._intern(("const", name))

    def apply(self, function: str, args: Sequence[int]) -> int:
        """Intern an application of ``function`` to already-interned args."""
        return self._intern(("app", function) + tuple(args))

    def _intern(self, term: Tuple) -> int:
        if term in self._ids:
            return self._ids[term]
        term_id = len(self._terms)
        self._terms.append(term)
        self._ids[term] = term_id
        return term_id

    def term(self, term_id: int) -> Tuple:
        """The structure of an interned term."""
        return self._terms[term_id]

    def __len__(self) -> int:
        return len(self._terms)

    def all_ids(self) -> range:
        """Ids of all interned terms."""
        return range(len(self._terms))


#: A saved closure state: (union trail length, disequality count).
ClosureMark = Tuple[int, int]


class CongruenceClosure:
    """Union-find based congruence closure with an undo trail.

    Usage: intern terms through :attr:`bank`, assert equalities and
    disequalities, then ask :meth:`is_consistent`, :meth:`are_equal`, or
    enumerate entailed equalities over a set of terms.  Incremental users
    bracket assertions between :meth:`mark` and :meth:`undo_to`.
    """

    def __init__(self, bank: Optional[TermBank] = None) -> None:
        self.bank = bank if bank is not None else TermBank()
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        #: roots attached to a new parent, in union order (the undo trail).
        self._union_trail: List[int] = []
        self._disequalities: List[Tuple[int, int]] = []
        self._dirty = False
        self._rebuilt_size = -1
        #: bumped on every union, disequality, and state-changing undo, so
        #: incremental users can cheaply detect "nothing changed".
        self.version = 0

    # -- union-find --------------------------------------------------------

    def _find(self, term_id: int) -> int:
        parent = self._parent
        while True:
            up = parent.get(term_id, term_id)
            if up == term_id:
                return term_id
            term_id = up

    def _union(self, a: int, b: int) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a == root_b:
            return
        size = self._size
        if size.get(root_a, 1) > size.get(root_b, 1):
            root_a, root_b = root_b, root_a
        self._parent[root_a] = root_b
        size[root_b] = size.get(root_b, 1) + size.get(root_a, 1)
        self._union_trail.append(root_a)
        self._dirty = True
        self.version += 1

    # -- backtracking --------------------------------------------------------

    def mark(self) -> ClosureMark:
        """Snapshot the assertion state for a later :meth:`undo_to`."""
        return (len(self._union_trail), len(self._disequalities))

    def undo_to(self, mark: ClosureMark) -> None:
        """Un-merge every union and drop every disequality after ``mark``.

        A no-op undo (nothing asserted since the mark) leaves the closed
        fixpoint — and :attr:`version` — untouched, so back-to-back checks
        over unchanged prefixes skip the congruence rebuild entirely.
        """
        unions, disequalities = mark
        trail = self._union_trail
        if len(trail) > unions:
            parent = self._parent
            size = self._size
            while len(trail) > unions:
                root = trail.pop()
                attached_to = parent.pop(root)
                size[attached_to] -= size.get(root, 1)
            # Congruence merges after the mark were popped with everything
            # else; a later query must re-close the prefix.
            self._dirty = True
            self._rebuilt_size = -1
            self.version += 1
        if len(self._disequalities) > disequalities:
            del self._disequalities[disequalities:]
            self.version += 1

    # -- assertions ----------------------------------------------------------

    def assert_equal(self, a: int, b: int) -> None:
        """Assert that the two terms are equal."""
        self._union(a, b)

    def assert_distinct(self, a: int, b: int) -> None:
        """Assert that the two terms are distinct."""
        self._disequalities.append((a, b))
        self.version += 1

    # -- queries -------------------------------------------------------------

    def are_equal(self, a: int, b: int) -> bool:
        """Are the two terms known to be equal?"""
        self._rebuild_congruence()
        return self._find(a) == self._find(b)

    def is_consistent(self) -> bool:
        """Do the asserted disequalities hold under the closure?

        Terms may have been interned (e.g. while asserting a disequality)
        after the last equality assertion, so congruence is re-established
        before checking — the result must not depend on assertion order.
        """
        self._rebuild_congruence()
        find = self._find
        return all(find(a) != find(b) for a, b in self._disequalities)

    def inconsistent_disequality(self) -> Optional[Tuple[int, int]]:
        """A violated disequality, if any (after re-closing congruence)."""
        self._rebuild_congruence()
        find = self._find
        for a, b in self._disequalities:
            if find(a) == find(b):
                return (a, b)
        return None

    def entailed_equalities(self, term_ids: Sequence[int]) -> List[Tuple[int, int]]:
        """All pairs among ``term_ids`` that the closure proves equal."""
        self._rebuild_congruence()
        pairs: List[Tuple[int, int]] = []
        for index, a in enumerate(term_ids):
            for b in term_ids[index + 1:]:
                if a != b and self.are_equal(a, b):
                    pairs.append((a, b))
        return pairs

    def classes(self) -> Dict[int, Set[int]]:
        """The current partition of all interned terms into classes."""
        self._rebuild_congruence()
        result: Dict[int, Set[int]] = {}
        for term_id in self.bank.all_ids():
            result.setdefault(self._find(term_id), set()).add(term_id)
        return result

    # -- congruence ----------------------------------------------------------

    def close_over(self, app_ids: Iterable[int]) -> None:
        """Re-establish congruence over exactly the given application terms.

        Incremental users call this with the *live* applications (those
        referenced by currently asserted literals) so the fixpoint loop
        never scans the persistent bank's dead terms.  Queries made before
        the next assertion or undo then see the closed state.
        """
        self._close(list(app_ids))
        self._dirty = False
        self._rebuilt_size = len(self.bank)

    def _rebuild_congruence(self) -> None:
        """Merge classes until congruence is a fixpoint over the whole bank.

        The term banks in one-shot refinement queries hold at most a few
        hundred terms, so the quadratic fixpoint loop is plenty fast.  The
        loop is skipped entirely when no union happened and no term was
        interned since the last rebuild.
        """
        if not self._dirty and self._rebuilt_size == len(self.bank):
            return
        apps = [t for t in self.bank.all_ids() if self.bank.term(t)[0] == "app"]
        self._close(apps)
        self._dirty = False
        self._rebuilt_size = len(self.bank)

    def _close(self, apps: List[int]) -> None:
        find = self._find
        bank_term = self.bank.term
        changed = True
        while changed:
            changed = False
            signature: Dict[Tuple, int] = {}
            for term_id in apps:
                term = bank_term(term_id)
                key = (term[1],) + tuple(find(arg) for arg in term[2:])
                other = signature.get(key)
                if other is None:
                    signature[key] = term_id
                elif find(other) != find(term_id):
                    self._union(other, term_id)
                    changed = True
