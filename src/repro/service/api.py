"""The query layer shared by the CLI, the HTTP server, and batch mode.

``check`` and ``synth`` are computed here as plain JSON-able *payloads*:
ordered per-item results carrying everything any surface renders (status
lines, pretty-printed programs, enumeration statistics, inferred Horn
valuations).  The CLI prints a payload, the server returns it as JSON,
and the batch pipeline aggregates it — and because the cache stores the
payload itself, a cached query renders byte-for-byte identically to a
fresh one.  That is the whole differential guarantee: the cache can only
change *when* a payload was computed, never what it contains.

Payload shapes::

    check: {"items": [{"name", "status": "ok"|"rejected"|"goal"|"unknown",
                       "message"?, "valuations"?, "limit"?, "progress"?},
                      ...],
            "failures": int, "unknowns"?: int, "timeout"?: true,
            "note": "no-definitions"?}
    synth: {"items": [{"name", "goal", "solved", "program", "verified",
                       "statistics", "reason", "timeout"?, "limit"?}, ...],
            "failures": int, "timeout"?: true, "note": "no-goals"?}

Both verbs accept ``timeout_ms``: a wall-clock budget installed around
the whole query (see :mod:`repro.limits`).  Exhaustion degrades, it does
not fail: the item the budget tripped in reports ``unknown`` (check) or
``timeout`` (synth) with the limit that fired and the progress counters
at that point, remaining items trip instantly at their first checkpoint,
and the payload carries a top-level ``timeout`` flag.  Timeout payloads
are **never cached** — they record how far *this* machine got under
*this* load, not an answer — so the cache continues to hold only
complete results and the digest is independent of the budget.

Caching is content-addressed (:func:`repro.service.cache.query_digest`);
pass ``cache=None`` (the ``--no-cache`` path) to always compute.  A
``backend`` (a :class:`~repro.service.worker.WarmStack`'s solver) makes
repeated computation cheap; ``recheck=True`` re-verifies a cached synth
program through a fresh checker before serving it — the paranoid mode
for caches on shared disks — falling back to recomputation if the
stored program no longer checks.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .. import limits
from ..horn.solver import SolveOptions
from ..syntax.parser import ParseError, Program, parse_term
from ..syntax.types import generalize
from ..synth.synthesizer import SynthesisGoal, Synthesizer, describe_goal
from ..typecheck.environment import EMPTY
from ..typecheck.errors import TypecheckError
from ..typecheck.session import TypecheckSession
from .cache import ResultCache, query_digest


class UnknownGoal(Exception):
    """``only=`` names a goal with no signature in the program."""


def _component_environment(program: Program, upto: str, backend=None):
    """A fresh session and environment for checking the item named
    ``upto``: constructors plus every signature declared *before* it in
    the file (so later components cannot be assumed — recursion goes
    through ``fix`` and its termination metric instead)."""
    session = TypecheckSession(
        datatypes=program.datatypes.values(),
        measure_defs=program.measures.values(),
        backend=backend,
    )
    env = session.bind_constructors(EMPTY)
    for name, rtype in program.signatures.items():
        if name == upto:
            break
        env = env.bind(name, generalize(rtype))
    return session, env


# -- check -------------------------------------------------------------------


def compute_check(
    program: Program,
    workers: int = 1,
    backend=None,
    timeout_ms: Optional[float] = None,
) -> dict:
    """Type-check every definition; the payload the ``check`` verb renders.

    With a ``timeout_ms`` budget (or inside an enclosing budget scope —
    the server installs one per request), exhaustion turns the current
    and all remaining definitions into structured ``unknown`` items
    instead of aborting the query: each records which limit tripped and
    the progress counters at that point.  Unknowns are counted apart
    from ``failures`` — an unanswered query is not a refuted one.
    """
    options = SolveOptions(max_workers=workers)
    budget = limits.Budget.from_timeout_ms(timeout_ms) if timeout_ms else None
    items = []
    failures = 0
    unknowns = 0
    with limits.budget_scope(budget):
        for name, term in program.definitions.items():
            try:
                session, env = _component_environment(program, name, backend)
                goal = program.signatures[name]
                session.check_program(term, goal, env, where=name)
                outcome = session.solve(options)
            except TypecheckError as error:
                items.append({"name": name, "status": "rejected", "message": str(error)})
                failures += 1
                continue
            except limits.BudgetExhausted as exhausted:
                # Degrade, don't die: this item (and, since the scope
                # stays exhausted, each later one at its first
                # checkpoint) reports a structured unknown.
                items.append(_unknown_item(name, exhausted))
                unknowns += 1
                continue
            if outcome.solved:
                item = {"name": name, "status": "ok"}
                valuations = {
                    unknown: [repr(q) for q in quals]
                    for unknown, quals in sorted(outcome.assignment.items())
                    if quals
                }
                if valuations:
                    item["valuations"] = valuations
                items.append(item)
            else:
                items.append(
                    {"name": name, "status": "rejected", "message": outcome.error_message}
                )
                failures += 1
    for name in program.goals:
        items.append({"name": name, "status": "goal"})
    payload = {"items": items, "failures": failures}
    if unknowns:
        payload["unknowns"] = unknowns
        payload["timeout"] = True
    if not program.definitions:
        payload["note"] = "no-definitions"
    return payload


def _unknown_item(name: str, exhausted: limits.BudgetExhausted) -> dict:
    return {
        "name": name,
        "status": "unknown",
        "message": str(exhausted),
        "limit": exhausted.limit,
        "progress": dict(exhausted.progress),
    }


def check_query(
    program: Program,
    workers: int = 1,
    cache: Optional[ResultCache] = None,
    backend=None,
    timeout_ms: Optional[float] = None,
) -> Tuple[dict, bool, str]:
    """``check`` through the cache: ``(payload, was_cached, digest)``.

    The digest does not include ``timeout_ms`` — a cached (complete)
    answer is valid for any budget — and a payload flagged ``timeout``
    is never stored: partial progress is machine- and load-dependent.
    """
    digest = query_digest("check", program, {"workers": workers})
    if cache is not None:
        payload = cache.get(digest)
        if payload is not None:
            return payload, True, digest
    payload = compute_check(program, workers, backend, timeout_ms)
    if cache is not None and not payload.get("timeout"):
        cache.put(digest, payload)
    return payload, False, digest


# -- synth -------------------------------------------------------------------


def compute_synth(
    program: Program,
    only: Optional[str] = None,
    depth: int = 4,
    max_conditionals: int = 2,
    max_matches: int = 1,
    backend=None,
    workers: int = 1,
    timeout_ms: Optional[float] = None,
) -> dict:
    """Synthesize every goal (or just ``only``); the ``synth`` payload.

    Under a ``timeout_ms`` budget each goal that runs out reports a
    ``timeout`` item: unsolved, with the tripped limit and the partial
    statistics (including ``depth_reached``) the synthesizer gathered
    before the budget fired.
    """
    goals = list(program.goals)
    if only is not None:
        goals = [only]
    if not goals:
        return {"items": [], "failures": 1, "note": "no-goals"}
    budget = limits.Budget.from_timeout_ms(timeout_ms) if timeout_ms else None
    items = []
    failures = 0
    timed_out = False
    with limits.budget_scope(budget):
        for name in goals:
            try:
                goal = SynthesisGoal.from_program(program, name)
                synthesizer = Synthesizer(
                    goal,
                    max_depth=depth,
                    max_conditionals=max_conditionals,
                    max_matches=max_matches,
                    backend=backend,
                    workers=workers,
                )
                result = synthesizer.synthesize()
            except limits.BudgetExhausted as exhausted:
                # Exhaustion outside the synthesizer's own loop (goal
                # setup, or a later goal after the budget tripped).
                items.append(
                    {
                        "name": name,
                        "goal": name,
                        "solved": False,
                        "program": None,
                        "verified": False,
                        "statistics": {},
                        "reason": str(exhausted),
                        "timeout": True,
                        "limit": exhausted.limit,
                    }
                )
                failures += 1
                timed_out = True
                continue
            item = {
                "name": name,
                "goal": describe_goal(goal),
                "solved": result.solved,
                "program": result.pretty() if result.solved else None,
                "verified": result.verified,
                "statistics": result.statistics.as_dict(),
                "reason": result.reason,
            }
            if result.timeout:
                item["timeout"] = True
                item["limit"] = result.limit
                timed_out = True
            items.append(item)
            if not result.solved or not result.verified:
                failures += 1
    payload = {"items": items, "failures": failures}
    if timed_out:
        payload["timeout"] = True
    return payload


def synth_query(
    program: Program,
    only: Optional[str] = None,
    depth: int = 4,
    max_conditionals: int = 2,
    max_matches: int = 1,
    cache: Optional[ResultCache] = None,
    backend=None,
    recheck: bool = False,
    workers: int = 1,
    timeout_ms: Optional[float] = None,
) -> Tuple[dict, bool, str]:
    """``synth`` through the cache: ``(payload, was_cached, digest)``.

    As with :func:`check_query`, ``timeout_ms`` is not part of the
    digest and timed-out payloads are never persisted.
    """
    if only is not None and only not in program.signatures:
        raise UnknownGoal(only)
    options: Dict[str, object] = {
        "only": only,
        "depth": depth,
        "max_conditionals": max_conditionals,
        "max_matches": max_matches,
        "workers": workers,
    }
    digest = query_digest("synth", program, options)
    if cache is not None:
        payload = cache.get(digest)
        if payload is not None:
            if not recheck or recheck_synth_payload(program, payload):
                return payload, True, digest
    payload = compute_synth(
        program, only, depth, max_conditionals, max_matches, backend, workers, timeout_ms
    )
    if cache is not None and not payload.get("timeout"):
        cache.put(digest, payload)
    return payload, False, digest


def recheck_synth_payload(program: Program, payload: dict) -> bool:
    """Does every solved program in a cached payload still check?

    The cache-aware re-check: each stored ``name = term`` line is parsed
    back and run through a fresh session of the ordinary checker against
    its signature, exactly like the synthesizer's own verification pass.
    Any failure rejects the whole payload (the caller recomputes).
    """
    for item in payload.get("items", ()):
        if not item.get("solved") or not item.get("program"):
            continue
        _, _, body = item["program"].partition(" = ")
        goal = SynthesisGoal.from_program(program, item["name"])
        session, env = goal.session_environment()
        try:
            term = parse_term(body, measures=session.measures)
            session.check_program(term, goal.goal, env, where=item["name"])
        except (ParseError, TypecheckError):
            return False
        if not session.solve().solved:
            return False
    return True
