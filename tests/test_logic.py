"""Tests for the refinement logic: formulas, ops, simplify, substitution."""

from repro.logic import ops
from repro.logic.formulas import (
    FALSE,
    TRUE,
    Binary,
    BinaryOp,
    IntLit,
    Unknown,
    Var,
    intern_formula,
    value_var,
)
from repro.logic.simplify import conjuncts, negation_normal_form, simplify
from repro.logic.sorts import BOOL, INT
from repro.logic.substitution import (
    apply_assignment,
    instantiate_value_var,
    rename,
    substitute,
)
from repro.logic.transform import free_vars, has_unknowns, subterms

x = ops.var("x", INT)
y = ops.var("y", INT)
p = ops.var("p", BOOL)


class TestOps:
    def test_boolean_unit_folding(self):
        assert ops.and_(TRUE, p) == p
        assert ops.and_(p, FALSE) == FALSE
        assert ops.or_(FALSE, p) == p
        assert ops.or_(p, TRUE) == TRUE
        assert ops.implies(FALSE, p) == TRUE
        assert ops.implies(p, FALSE) == ops.not_(p)
        assert ops.not_(ops.not_(p)) == p

    def test_arithmetic_folding(self):
        assert ops.plus(IntLit(2), IntLit(3)) == IntLit(5)
        assert ops.minus(IntLit(2), IntLit(3)) == IntLit(-1)
        assert ops.times(IntLit(2), IntLit(3)) == IntLit(6)
        assert ops.lt(IntLit(1), IntLit(2)) == TRUE
        assert ops.ge(IntLit(1), IntLit(2)) == FALSE

    def test_equality_folding(self):
        assert ops.eq(x, x) == TRUE
        assert ops.neq(x, x) == FALSE
        assert ops.eq(IntLit(1), IntLit(2)) == FALSE

    def test_conj_disj(self):
        assert ops.conj([]) == TRUE
        assert ops.disj([]) == FALSE
        assert ops.conj([p]) == p


class TestHashing:
    def test_structural_equality_and_hash(self):
        f1 = ops.le(ops.var("x", INT), ops.var("y", INT))
        f2 = ops.le(ops.var("x", INT), ops.var("y", INT))
        assert f1 is not f2
        assert f1 == f2
        assert hash(f1) == hash(f2)

    def test_distinct_formulas_differ(self):
        assert ops.le(x, y) != ops.lt(x, y)
        assert ops.le(x, y) != ops.le(y, x)
        assert Var("x", INT) != Var("x", BOOL)

    def test_formulas_as_dict_keys(self):
        table = {ops.le(x, y): "le", ops.lt(x, y): "lt"}
        assert table[ops.le(ops.var("x", INT), y)] == "le"

    def test_interning_canonicalizes(self):
        f1 = intern_formula(ops.and_(ops.le(x, y), ops.neq(x, y)))
        f2 = intern_formula(ops.and_(ops.le(x, y), ops.neq(x, y)))
        assert f1 is f2
        # children are canonical too
        assert intern_formula(ops.le(x, y)) is f1.lhs

    def test_unknown_hashable_with_substitution(self):
        u1 = Unknown("P", (("_v", x),))
        u2 = Unknown("P", (("_v", x),))
        assert u1 == u2 and hash(u1) == hash(u2)
        assert u1 != Unknown("P", (("_v", y),))


class TestSimplify:
    def test_constant_folding_fixpoint(self):
        messy = ops.and_(
            Binary(BinaryOp.AND, TRUE, ops.le(x, y)),
            Binary(BinaryOp.OR, FALSE, TRUE),
        )
        assert simplify(messy) == ops.le(x, y)

    def test_nnf_pushes_negation(self):
        formula = ops.not_(ops.and_(p, ops.or_(p, ops.le(x, y))))
        nnf = negation_normal_form(formula)
        # no negation above a connective
        for node in subterms(nnf):
            if isinstance(node, Binary) and node.op in (BinaryOp.AND, BinaryOp.OR):
                continue
        assert negation_normal_form(ops.not_(ops.not_(p))) == p

    def test_nnf_implication(self):
        nnf = negation_normal_form(ops.not_(Binary(BinaryOp.IMPLIES, p, ops.le(x, y))))
        assert nnf == ops.and_(p, ops.not_(ops.le(x, y)))

    def test_conjuncts(self):
        formula = ops.conj([ops.le(x, y), ops.neq(x, y), TRUE])
        assert conjuncts(formula) == [ops.le(x, y), ops.neq(x, y)]


class TestSubstitution:
    def test_substitute_variable(self):
        formula = ops.le(x, y)
        assert substitute(formula, {"x": IntLit(0)}) == ops.le(IntLit(0), y)

    def test_rename_keeps_sort(self):
        renamed = rename(ops.le(x, y), {"x": "z"})
        assert renamed == ops.le(ops.var("z", INT), y)

    def test_substitution_composes_on_unknowns(self):
        u = Unknown("P", (("a", x),))
        result = substitute(u, {"x": y, "b": IntLit(1)})
        assert isinstance(result, Unknown)
        pending = dict(result.substitution)
        assert pending["a"] == y  # applied to the pending value
        assert pending["b"] == IntLit(1)  # added for later
        assert pending["x"] == y

    def test_apply_assignment(self):
        formula = ops.and_(Unknown("P"), ops.le(x, y))
        applied = apply_assignment(formula, {"P": [ops.neq(x, y)]})
        assert applied == ops.and_(ops.neq(x, y), ops.le(x, y))
        # missing unknowns become True
        assert apply_assignment(Unknown("Q"), {}) == TRUE

    def test_apply_assignment_pending_substitution(self):
        u = Unknown("P", (("_v", x),))
        nu = value_var(INT)
        applied = apply_assignment(u, {"P": [ops.le(nu, y)]})
        assert applied == ops.le(x, y)

    def test_instantiate_value_var(self):
        nu = value_var(INT)
        assert instantiate_value_var(ops.ge(nu, x), y) == ops.ge(y, x)

    def test_free_vars_and_unknowns(self):
        formula = ops.and_(Unknown("P"), ops.le(x, y))
        assert free_vars(formula) == {"x", "y"}
        assert has_unknowns(formula)
        assert not has_unknowns(ops.le(x, y))
