"""A process portfolio over candidate branches of the Horn search.

The candidate-set search of :meth:`repro.horn.solver.HornSolver.solve`
explores a frontier of abducible valuations; the branches below the root
are independent — each is a self-contained breadth-first search — which
is exactly the shape that fans out across cores.  This module runs that
fan-out:

1. The **coordinator** evaluates the root candidate in-process (one
   :meth:`~repro.horn.solver.HornSolver.search_candidates` step).  If the
   root already solves, there is nothing to distribute.
2. The root's successor frontier is split round-robin into
   ``max_workers`` branch groups.  With ``max_workers == 1`` the groups
   run sequentially in-process (the serial fallback — same decomposition,
   so serial and parallel runs agree); otherwise each group is dispatched
   to a ``concurrent.futures.ProcessPoolExecutor`` worker, which builds
   its own backend via a picklable module-level factory
   (:func:`repro.smt.interface.new_backend`) and searches its branches to
   exhaustion.
3. The **lemma bus**: MUSes are facts about a constraint and its
   qualifier pool, independent of any candidate, so a MUS learned on one
   branch soundly prunes every other.  The coordinator seeds each
   dispatched group with all lemmas known so far and folds the lemmas
   each group returns back into the pool (sequential groups therefore
   see earlier groups' lemmas; parallel groups share through the root's).
   ``lemmas_shared`` counts every adoption.
4. Results merge deterministically: solutions are deduplicated,
   dominance-filtered to the weakest antichain, and ordered by a
   process-independent key, so the outcome does not depend on worker
   scheduling.

If the executor cannot be created or a worker dies (restricted
environments, pickling regressions), the affected groups transparently
fall back to the in-process path — the portfolio degrades to serial
search rather than failing.  A dead worker (``BrokenProcessPool``) is
counted in ``HornStatistics.worker_deaths`` and its branch group is
re-searched inline under whatever remains of the caller's deadline: the
coordinator ships its active :class:`repro.limits.Budget` to every
worker and keeps the same scope installed for the inline reruns, so
serial and degraded-parallel runs obey one clock.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import limits
from ..smt.interface import SolverBackend, new_backend
from ..testing import faults
from .constraints import HornConstraint
from .musfix import MusLemma
from .solver import (
    Assignment,
    CandidateSearchResult,
    HornSolution,
    HornSolver,
    HornStatistics,
    SolveOptions,
)
from .spaces import QualifierSpace, SpacesLike, as_space_map

#: What a branch run yields: its search result, plus the worker's counters
#: (``None`` when it ran inline on the coordinator, whose counters already
#: include it).
BranchOutcome = Tuple[CandidateSearchResult, Optional[HornStatistics]]

BackendFactory = Callable[[], SolverBackend]


def _search_branch(
    constraints: Tuple[HornConstraint, ...],
    spaces: Dict[str, QualifierSpace],
    options: SolveOptions,
    roots: Tuple[Assignment, ...],
    lemmas: Tuple[MusLemma, ...],
    backend_factory: BackendFactory,
    group_index: int = 0,
    budget: Optional[limits.Budget] = None,
) -> BranchOutcome:
    """Search one branch group to exhaustion (runs inside a worker).

    Module-level so the executor can pickle it by reference; everything it
    receives is plain data (constraints, spaces, options, seeds, lemmas)
    plus the backend factory, and everything it returns is plain data too.
    ``budget`` is the coordinator's active budget, re-installed here so a
    deadline governs worker processes exactly as it governs the
    coordinator (the monotonic deadline is system-wide).
    """
    if faults.maybe_fire(f"portfolio.worker-death.{group_index}"):
        os._exit(13)  # chaos: the worker dies mid-solve, abruptly
    with limits.budget_scope(budget):
        solver = HornSolver(backend_factory())
        result = solver.search_candidates(
            constraints, spaces, options, roots=list(roots), lemmas=lemmas
        )
        return result, solver.statistics


def solve_portfolio(
    constraints: Sequence[HornConstraint],
    spaces: SpacesLike,
    options: Optional[SolveOptions] = None,
    solver: Optional[HornSolver] = None,
    backend_factory: BackendFactory = new_backend,
) -> HornSolution:
    """Candidate-set Horn search with branches fanned across processes.

    ``solver`` is the coordinator (statistics accumulate there; its
    backend evaluates the root candidate).  Returns the same
    :class:`~repro.horn.solver.HornSolution` the serial search would.
    """
    opts = options if options is not None else SolveOptions()
    coordinator = solver if solver is not None else HornSolver()
    space_map = as_space_map(spaces)

    root = coordinator.search_candidates(constraints, space_map, opts, explore_limit=1)
    solutions: List[Assignment] = list(root.solutions)
    failed = root.failed
    lemma_pool: List[MusLemma] = []
    lemma_keys = set()

    def adopt(lemmas: Sequence[MusLemma]) -> int:
        adopted = 0
        for constr, mus in lemmas:
            key = (constr, frozenset(mus))
            if key not in lemma_keys:
                lemma_keys.add(key)
                lemma_pool.append((constr, mus))
                adopted += 1
        return adopted

    adopt(root.lemmas)

    branches = list(root.frontier)
    workers = max(1, opts.max_workers)
    groups = [branches[i::workers] for i in range(workers) if branches[i::workers]]

    if not groups:
        return coordinator.assemble_solution(constraints, solutions, failed, opts, space_map)

    payload = (tuple(constraints), dict(space_map), opts)
    outcomes: List[BranchOutcome] = []
    pending = list(groups)

    if workers > 1 and len(groups) > 1:
        shared = tuple(lemma_pool)
        budget = limits.active_budget()
        try:
            import concurrent.futures
            from concurrent.futures.process import BrokenProcessPool

            if faults.maybe_fire("portfolio.executor-down"):
                raise OSError("injected: process pool unavailable")
            with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(
                        _search_branch,
                        *payload,
                        tuple(group),
                        shared,
                        backend_factory,
                        index,
                        budget,
                    )
                    for index, group in enumerate(groups)
                ]
                still_pending = []
                for group, future in zip(groups, futures):
                    try:
                        outcomes.append(future.result())
                    except limits.BudgetExhausted:
                        # The shared deadline tripped inside a worker; it
                        # governs the whole solve, so stop dispatching and
                        # let the coordinator's owner handle it.
                        raise
                    except BrokenProcessPool:
                        # A dead worker (SIGKILL, OOM, os._exit) breaks the
                        # pool: every unfinished future raises this.  The
                        # group is re-searched inline below, under whatever
                        # remains of the same deadline (the active scope is
                        # still installed on this thread).
                        coordinator.statistics.worker_deaths += 1
                        still_pending.append(group)
                    except Exception:
                        still_pending.append(group)  # worker died: redo inline
                pending = still_pending
        except (ImportError, OSError, PermissionError):
            pending = list(groups)  # no process pool here: serial fallback

    for group in pending:
        # Serial path (and parallel stragglers): run on the coordinator's
        # own backend, threading the lemma pool from group to group.
        result = coordinator.search_candidates(
            constraints, space_map, opts, roots=group, lemmas=tuple(lemma_pool)
        )
        outcomes.append((result, None))

    for result, stats in outcomes:
        solutions.extend(result.solutions)
        if result.failed is not None:
            failed = result.failed
        shared_count = adopt(result.lemmas)
        if stats is not None:
            coordinator.statistics.merge(stats)
            coordinator.statistics.lemmas_shared += shared_count

    return coordinator.assemble_solution(constraints, solutions, failed, opts, space_map)
