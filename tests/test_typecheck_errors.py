"""Error paths of the refinement type checker.

Three families from the issue checklist: ill-sorted refinements rejected by
well-formedness checking, unsolvable subtyping producing a type error that
names the offending constraint, and shadowed-variable substitution in
dependent application.  Plus the deliberately-unsupported term forms and
the MUSFix interface stub.
"""

import pytest

from repro.logic import ops
from repro.logic.formulas import Unknown, value_var
from repro.logic.sortcheck import SortError, check_refinement, check_sort
from repro.logic.sorts import BOOL, INT, set_of
from repro.syntax import (
    FixTerm,
    MatchCase,
    MatchTerm,
    ScalarType,
    app,
    arrow,
    bool_type,
    if_,
    int_type,
    lam,
    lit,
    parse_type,
    v,
)
from repro.syntax.types import INT_BASE
from repro.typecheck import (
    EMPTY,
    ShapeError,
    SubtypingError,
    TypecheckError,
    TypecheckSession,
    WellFormednessError,
)
x = ops.var("x", INT)
y = ops.var("y", INT)
nu = value_var(INT)

INC_SIG = "a:Int -> {Int | nu == a + 1}"


class TestSortChecking:
    def test_arithmetic_over_bool_rejected(self):
        bad = ops.plus(x, ops.bool_lit(True))
        with pytest.raises(SortError, match="must have sort Int"):
            check_sort(bad, {"x": INT})

    def test_unbound_variable_rejected(self):
        with pytest.raises(SortError, match="unbound variable"):
            check_sort(ops.ge(x, ops.int_lit(0)), {})

    def test_sort_mismatch_with_scope(self):
        with pytest.raises(SortError, match="bound at sort"):
            check_sort(ops.var("x", BOOL), {"x": INT})

    def test_incompatible_equality(self):
        with pytest.raises(SortError, match="incompatible sorts"):
            check_sort(ops.eq(x, ops.bool_lit(True)), {"x": INT})

    def test_refinement_must_be_boolean(self):
        with pytest.raises(SortError, match="sort Bool"):
            check_refinement(ops.plus(x, ops.int_lit(1)), {"x": INT})

    def test_set_operations(self):
        s = ops.var("s", set_of(INT))
        assert check_sort(ops.member(x, s), {"x": INT, "s": set_of(INT)}) == BOOL
        with pytest.raises(SortError, match="set"):
            check_sort(ops.member(x, y), {"x": INT, "y": INT})
        with pytest.raises(SortError):
            check_sort(ops.subset(s, x), {"x": INT, "s": set_of(INT)})

    def test_measure_signatures_enforced(self):
        measures = {"len": ((set_of(INT),), INT)}
        s = ops.var("s", set_of(INT))
        good = ops.ge(ops.measure("len", s, INT), ops.int_lit(0))
        assert check_sort(good, {"s": set_of(INT)}, measures) == BOOL
        wrong_arg = ops.measure("len", x, INT)
        with pytest.raises(SortError, match="argument 0"):
            check_sort(wrong_arg, {"x": INT}, measures)
        wrong_result = ops.measure("len", s, BOOL)
        with pytest.raises(SortError, match="returns"):
            check_sort(wrong_result, {"s": set_of(INT)}, measures)

    def test_polymorphic_membership_is_well_sorted(self):
        from repro.logic.sorts import VarSort

        s = ops.var("s", VarSort("a"))
        assert check_sort(ops.member(x, s), {"x": INT, "s": VarSort("a")}) == BOOL

    def test_unknowns_are_boolean_and_check_their_substitutions(self):
        assert check_sort(Unknown("P"), {}) == BOOL
        pending = Unknown("P", (("_v", ops.var("z", INT)),))
        with pytest.raises(SortError, match="unbound variable"):
            check_sort(pending, {})


class TestWellFormedness:
    def test_ill_sorted_refinement_rejected(self):
        session = TypecheckSession()
        bad = int_type(ops.plus(nu, ops.int_lit(1)))  # Int-sorted refinement
        with pytest.raises(WellFormednessError, match="ill-formed refinement"):
            session.well_formed(EMPTY, bad)

    def test_out_of_scope_variable_rejected(self):
        session = TypecheckSession()
        bad = int_type(ops.ge(nu, ops.var("ghost", INT)))
        with pytest.raises(WellFormednessError, match="unbound variable"):
            session.well_formed(EMPTY, bad)

    def test_arrow_binders_are_in_scope_for_results_only(self):
        session = TypecheckSession()
        good = parse_type("x:Int -> {Int | nu >= x}")
        session.well_formed(EMPTY, good)  # must not raise
        bad = arrow("x", int_type(ops.ge(nu, x)), int_type())
        with pytest.raises(WellFormednessError, match="unbound variable"):
            session.well_formed(EMPTY, bad)

    def test_compound_unknown_conclusion_rejected(self):
        session = TypecheckSession()
        sup = ScalarType(INT_BASE, ops.or_(Unknown("U"), ops.lt(nu, ops.int_lit(0))))
        with pytest.raises(WellFormednessError, match="compound conclusion"):
            session.subtype(EMPTY.bind("x", int_type()), int_type(), sup, "bad")


class TestUnsolvableSubtyping:
    def test_error_names_the_offending_constraint(self):
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type())
        sub = int_type(ops.eq(nu, x))
        sup = int_type(ops.lt(nu, x))
        session.subtype(env, sub, sup, "impossible-spec")
        outcome = session.solve()
        assert not outcome.solved
        assert outcome.failed is not None
        assert "impossible-spec" in outcome.failed.origin()
        assert "impossible-spec" in outcome.error_message
        with pytest.raises(SubtypingError, match="impossible-spec") as excinfo:
            session.solve_or_raise()
        assert excinfo.value.constraint is outcome.failed

    def test_wrong_program_is_rejected(self):
        """min checked against the max signature fails, naming a branch."""
        geq = parse_type("a:Int -> b:Int -> {Bool | nu <==> a >= b}")
        env = EMPTY.bind("geq", geq)
        min_term = lam("x", "y", body=if_(app(v("geq"), v("x"), v("y")), v("y"), v("x")))
        sig = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
        session = TypecheckSession()
        session.check_program(min_term, sig, env, where="min-as-max")
        outcome = session.solve()
        assert not outcome.solved
        assert "min-as-max" in outcome.error_message
        assert "branch" in outcome.error_message

    def test_unsatisfiable_inference_variant(self):
        """No qualifier valuation can make the unknown entail nu < x."""
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type())
        result = session.fresh_scalar(env, INT_BASE)
        session.subtype(env, int_type(ops.ge(nu, x)), result, "weaken")
        session.subtype(env, result, int_type(ops.lt(nu, x)), "refute")
        outcome = session.solve()
        assert not outcome.solved
        assert "refute" in outcome.failed.origin()


class TestShadowedSubstitution:
    def test_dependent_application_avoids_capture(self):
        """Applying plus2 : a:Int -> b:Int -> {Int | nu == a + b} to the
        caller's own variable named b must not capture the callee's binder."""
        plus2 = parse_type("a:Int -> b:Int -> {Int | nu == a + b}")
        env = EMPTY.bind("plus2", plus2).bind("b", int_type())
        session = TypecheckSession()
        inferred = session.infer(env, app(v("plus2"), v("b")))
        assert inferred.arg_name == "b'"
        b = ops.var("b", INT)
        renamed = ops.var("b'", INT)
        assert inferred.result_type.refinement == ops.eq(nu, ops.plus(b, renamed))

    def test_renamed_application_still_checks(self):
        plus2 = parse_type("a:Int -> b:Int -> {Int | nu == a + b}")
        env = EMPTY.bind("plus2", plus2).bind("b", int_type())
        goal = int_type(ops.eq(nu, ops.plus(ops.var("b", INT), ops.var("c", INT))))
        session = TypecheckSession()
        env = env.bind("c", int_type())
        session.check(env, app(v("plus2"), v("b"), v("c")), goal, "shadow")
        assert session.solve().solved

    def test_lambda_shadowing_goal_variable_is_renamed_not_captured(self):
        """A lambda binder reusing the name of an outer variable the goal
        mentions must not capture it: the outer x is alpha-renamed, so the
        body (which only sees the inner x) cannot prove `nu >= outer x`."""
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type())
        goal = arrow("n", int_type(), int_type(ops.ge(nu, x)))
        shadowing = lam("x", body=v("x"))
        session.check(env, shadowing, goal, "shadow-lambda")
        assert not session.solve().solved

    def test_branch_guard_is_not_captured_by_shadowing_binder(self):
        """Soundness regression: `\\x . if geq x 0 then (\\x . x) else ...`
        against `x:Int -> x:Int -> {Int | nu >= 0}` must be REJECTED — the
        guard `x >= 0` talks about the outer x, and an inner binder named x
        must not inherit it (f 5 (-7) returns -7 < 0)."""
        geq = parse_type("a:Int -> b:Int -> {Bool | nu <==> a >= b}")
        env = EMPTY.bind("geq", geq)
        term = lam(
            "x",
            body=if_(
                app(v("geq"), v("x"), lit(0)),
                lam("x", body=v("x")),
                lam("y", body=lit(0)),
            ),
        )
        sig = parse_type("x:Int -> x:Int -> {Int | nu >= 0}")
        session = TypecheckSession()
        session.check_program(term, sig, env, where="guard-capture")
        assert not session.solve().solved

    def test_legal_shadowing_still_checks(self):
        """Shadowing that never relies on the outer variable stays typable;
        the outer refinement is carried under the renamed variable."""
        inc = parse_type(INC_SIG)
        env = EMPTY.bind("inc", inc).bind("x", int_type(ops.ge(nu, ops.int_lit(1))))
        goal = parse_type("x:Int -> {Int | nu == x + 1}")
        session = TypecheckSession()
        session.check(env, lam("x", body=app(v("inc"), v("x"))), goal, "reshadow")
        assert session.solve().solved


class TestShapeErrors:
    def test_applying_a_non_function(self):
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type())
        with pytest.raises(ShapeError, match="not a function"):
            session.infer(env, app(v("x"), v("x")))

    def test_lambda_against_scalar(self):
        session = TypecheckSession()
        with pytest.raises(ShapeError, match="non-function"):
            session.check(EMPTY, lam("x", body=v("x")), int_type(), "bad")

    def test_scalar_base_mismatch(self):
        session = TypecheckSession()
        with pytest.raises(ShapeError, match="base types differ"):
            session.subtype(EMPTY, int_type(), bool_type(), "bad")

    def test_non_boolean_condition(self):
        session = TypecheckSession()
        env = EMPTY.bind("x", int_type())
        with pytest.raises(ShapeError, match="expected Bool"):
            session.check(env, if_(v("x"), v("x"), v("x")), int_type(), "bad")

    def test_unbound_variable(self):
        session = TypecheckSession()
        with pytest.raises(TypecheckError, match="unbound variable"):
            session.infer(EMPTY, v("ghost"))

    def test_introduction_term_cannot_be_inferred(self):
        session = TypecheckSession()
        with pytest.raises(TypecheckError, match="cannot infer"):
            session.infer(EMPTY, lam("x", body=v("x")))


class TestIntroductionForms:
    def test_match_cannot_be_inferred(self):
        """match/fix are introduction terms: they check against a goal but
        have no inferred type."""
        session = TypecheckSession()
        term = MatchTerm(v("xs"), (MatchCase("Nil", (), lit(0)),))
        with pytest.raises(TypecheckError, match="cannot infer"):
            session.infer(EMPTY.bind("xs", int_type()), term)

    def test_fix_against_scalar_goal_is_a_shape_error(self):
        session = TypecheckSession()
        with pytest.raises(ShapeError, match="non-function"):
            session.check(EMPTY, FixTerm("f", v("f")), int_type(), "fix")


class TestMusFixMoved:
    def test_typecheck_reexports_the_horn_enumerator(self):
        from repro.horn.musfix import MusFixSolver as horn_musfix
        from repro.typecheck import MusFixSolver as reexported

        assert reexported is horn_musfix

    def test_old_module_path_warns(self):
        from repro.typecheck import musfix as old_location

        with pytest.warns(DeprecationWarning, match="moved to repro.horn.musfix"):
            old_location.MusFixSolver
