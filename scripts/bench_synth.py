#!/usr/bin/env python
"""Perf smoke benchmark: the paper's synthesis benchmarks end to end.

Times the full round-trip synthesis pipeline — program parsing, E-term
enumeration with early liquid pruning, condition abduction, and the final
independent re-check — on the ``examples/*.sq`` goals::

    PYTHONPATH=src python scripts/bench_synth.py --output BENCH_synth.json

As with the other bench scripts, deterministic enumeration counters
(candidates generated, pruned early, abductions, SMT queries) are recorded
next to the wall-clock numbers so a perf regression can be triaged on any
machine; CI compares the timings against the committed baseline with
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.syntax import parse_program  # noqa: E402
from repro.synth import SynthesisGoal, Synthesizer  # noqa: E402

#: (benchmark name, example file, goal, enumeration depth)
WORKLOADS = [
    ("synth.max", "max.sq", "max", 3),
    ("synth.replicate", "replicate.sq", "replicate", 4),
    ("synth.stutter", "stutter.sq", "stutter", 4),
    ("synth.length", "list.sq", "length", 3),
    ("synth.append", "list.sq", "append", 4),
]


def run_workload(source: str, goal_name: str, depth: int):
    start = time.perf_counter()
    program = parse_program(source)
    synthesizer = Synthesizer(SynthesisGoal.from_program(program, goal_name), max_depth=depth)
    result = synthesizer.synthesize()
    elapsed = time.perf_counter() - start
    assert result.solved and result.verified, f"benchmark goal {goal_name} changed verdict"
    counters = result.statistics.as_dict()
    counters["sat_queries"] = synthesizer.session.backend.statistics.sat_queries
    return elapsed, counters


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_synth.json", help="report path")
    parser.add_argument("--repeat", type=int, default=3, help="runs per benchmark")
    args = parser.parse_args()

    report = {
        "suite": "synth-perf-smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeat": args.repeat,
        "benchmarks": [],
    }
    for name, filename, goal_name, depth in WORKLOADS:
        source = (ROOT / "examples" / filename).read_text()
        timings = []
        counters = {}
        for _ in range(args.repeat):
            elapsed, counters = run_workload(source, goal_name, depth)
            timings.append(elapsed)
        entry = {
            "name": name,
            "mean_s": statistics.mean(timings),
            "min_s": min(timings),
            "max_s": max(timings),
            "counters": counters,
        }
        report["benchmarks"].append(entry)
        print(
            f"{name:20s} mean={entry['mean_s'] * 1000:7.2f}ms "
            f"min={entry['min_s'] * 1000:7.2f}ms "
            f"counters={counters}"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
