"""Smart constructors for refinement formulas.

These perform light constant folding (so that, e.g., conjunction with
``True`` disappears) which keeps generated verification conditions small.
All code in the repository builds formulas through this module rather than
instantiating the dataclasses in :mod:`repro.logic.formulas` directly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .formulas import (
    FALSE,
    TRUE,
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    IntLit,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Var,
    is_false,
    is_true,
)
from .sorts import SetSort, Sort


# ---------------------------------------------------------------------------
# atoms
# ---------------------------------------------------------------------------

def var(name: str, sort: Sort) -> Var:
    """A logical variable."""
    return Var(name, sort)


def int_lit(value: int) -> IntLit:
    """An integer literal."""
    return IntLit(value)


def bool_lit(value: bool) -> BoolLit:
    """A boolean literal."""
    return TRUE if value else FALSE


def measure(name: str, arg: Formula, result_sort: Sort) -> App:
    """Application of a unary measure (uninterpreted function)."""
    return App(name, (arg,), result_sort)


def app(name: str, args: Sequence[Formula], result_sort: Sort) -> App:
    """Application of an n-ary uninterpreted function."""
    return App(name, tuple(args), result_sort)


# ---------------------------------------------------------------------------
# boolean connectives
# ---------------------------------------------------------------------------

def not_(formula: Formula) -> Formula:
    """Logical negation with folding of literals and double negation."""
    if is_true(formula):
        return FALSE
    if is_false(formula):
        return TRUE
    if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
        return formula.arg
    return Unary(UnaryOp.NOT, formula)


def and_(lhs: Formula, rhs: Formula) -> Formula:
    """Binary conjunction with unit folding."""
    if is_true(lhs):
        return rhs
    if is_true(rhs):
        return lhs
    if is_false(lhs) or is_false(rhs):
        return FALSE
    if lhs == rhs:
        return lhs
    return Binary(BinaryOp.AND, lhs, rhs)


def or_(lhs: Formula, rhs: Formula) -> Formula:
    """Binary disjunction with unit folding."""
    if is_false(lhs):
        return rhs
    if is_false(rhs):
        return lhs
    if is_true(lhs) or is_true(rhs):
        return TRUE
    if lhs == rhs:
        return lhs
    return Binary(BinaryOp.OR, lhs, rhs)


def conj(formulas: Iterable[Formula]) -> Formula:
    """Conjunction of an iterable of formulas (``True`` if empty)."""
    result: Formula = TRUE
    for formula in formulas:
        result = and_(result, formula)
    return result


def disj(formulas: Iterable[Formula]) -> Formula:
    """Disjunction of an iterable of formulas (``False`` if empty)."""
    result: Formula = FALSE
    for formula in formulas:
        result = or_(result, formula)
    return result


def implies(lhs: Formula, rhs: Formula) -> Formula:
    """Implication with unit folding."""
    if is_true(lhs):
        return rhs
    if is_false(lhs) or is_true(rhs):
        return TRUE
    if is_false(rhs):
        return not_(lhs)
    return Binary(BinaryOp.IMPLIES, lhs, rhs)


def iff(lhs: Formula, rhs: Formula) -> Formula:
    """Bi-implication with unit folding."""
    if is_true(lhs):
        return rhs
    if is_true(rhs):
        return lhs
    if is_false(lhs):
        return not_(rhs)
    if is_false(rhs):
        return not_(lhs)
    if lhs == rhs:
        return TRUE
    return Binary(BinaryOp.IFF, lhs, rhs)


def ite(cond: Formula, then_: Formula, else_: Formula) -> Formula:
    """If-then-else refinement term."""
    if is_true(cond):
        return then_
    if is_false(cond):
        return else_
    if then_ == else_:
        return then_
    return Ite(cond, then_, else_)


# ---------------------------------------------------------------------------
# arithmetic and comparisons
# ---------------------------------------------------------------------------

def neg(arg: Formula) -> Formula:
    """Integer negation."""
    if isinstance(arg, IntLit):
        return IntLit(-arg.value)
    return Unary(UnaryOp.NEG, arg)


def _arith(op: BinaryOp, lhs: Formula, rhs: Formula) -> Formula:
    if isinstance(lhs, IntLit) and isinstance(rhs, IntLit):
        if op is BinaryOp.PLUS:
            return IntLit(lhs.value + rhs.value)
        if op is BinaryOp.MINUS:
            return IntLit(lhs.value - rhs.value)
        if op is BinaryOp.TIMES:
            return IntLit(lhs.value * rhs.value)
    return Binary(op, lhs, rhs)


def plus(lhs: Formula, rhs: Formula) -> Formula:
    """Integer addition."""
    return _arith(BinaryOp.PLUS, lhs, rhs)


def minus(lhs: Formula, rhs: Formula) -> Formula:
    """Integer subtraction."""
    return _arith(BinaryOp.MINUS, lhs, rhs)


def times(lhs: Formula, rhs: Formula) -> Formula:
    """Integer multiplication (only linear uses are decidable)."""
    return _arith(BinaryOp.TIMES, lhs, rhs)


def _compare(op: BinaryOp, lhs: Formula, rhs: Formula) -> Formula:
    if isinstance(lhs, IntLit) and isinstance(rhs, IntLit):
        table = {
            BinaryOp.LT: lhs.value < rhs.value,
            BinaryOp.LE: lhs.value <= rhs.value,
            BinaryOp.GT: lhs.value > rhs.value,
            BinaryOp.GE: lhs.value >= rhs.value,
        }
        return bool_lit(table[op])
    return Binary(op, lhs, rhs)


def lt(lhs: Formula, rhs: Formula) -> Formula:
    """Strictly-less-than comparison."""
    return _compare(BinaryOp.LT, lhs, rhs)


def le(lhs: Formula, rhs: Formula) -> Formula:
    """Less-than-or-equal comparison."""
    return _compare(BinaryOp.LE, lhs, rhs)


def gt(lhs: Formula, rhs: Formula) -> Formula:
    """Strictly-greater-than comparison."""
    return _compare(BinaryOp.GT, lhs, rhs)


def ge(lhs: Formula, rhs: Formula) -> Formula:
    """Greater-than-or-equal comparison."""
    return _compare(BinaryOp.GE, lhs, rhs)


def eq(lhs: Formula, rhs: Formula) -> Formula:
    """Polymorphic equality."""
    if lhs == rhs:
        return TRUE
    if isinstance(lhs, IntLit) and isinstance(rhs, IntLit):
        return bool_lit(lhs.value == rhs.value)
    if isinstance(lhs, BoolLit) and isinstance(rhs, BoolLit):
        return bool_lit(lhs.value == rhs.value)
    return Binary(BinaryOp.EQ, lhs, rhs)


def neq(lhs: Formula, rhs: Formula) -> Formula:
    """Polymorphic disequality."""
    if isinstance(lhs, IntLit) and isinstance(rhs, IntLit):
        return bool_lit(lhs.value != rhs.value)
    if lhs == rhs:
        return FALSE
    return Binary(BinaryOp.NEQ, lhs, rhs)


# ---------------------------------------------------------------------------
# sets
# ---------------------------------------------------------------------------

def empty_set(element_sort: Sort) -> SetLit:
    """The empty set of the given element sort."""
    return SetLit(element_sort, ())


def singleton(element: Formula) -> SetLit:
    """The singleton set ``[element]``."""
    return SetLit(element.sort, (element,))


def set_lit(element_sort: Sort, elements: Sequence[Formula]) -> SetLit:
    """A finite set literal."""
    return SetLit(element_sort, tuple(elements))


def union(lhs: Formula, rhs: Formula) -> Formula:
    """Set union; folds unions of literals."""
    if isinstance(lhs, SetLit) and not lhs.elements:
        return rhs
    if isinstance(rhs, SetLit) and not rhs.elements:
        return lhs
    if isinstance(lhs, SetLit) and isinstance(rhs, SetLit):
        return SetLit(lhs.element_sort, lhs.elements + rhs.elements)
    return Binary(BinaryOp.UNION, lhs, rhs)


def intersect(lhs: Formula, rhs: Formula) -> Formula:
    """Set intersection."""
    return Binary(BinaryOp.INTERSECT, lhs, rhs)


def set_diff(lhs: Formula, rhs: Formula) -> Formula:
    """Set difference."""
    return Binary(BinaryOp.DIFF, lhs, rhs)


def member(element: Formula, the_set: Formula) -> Formula:
    """Set membership predicate."""
    return Binary(BinaryOp.MEMBER, element, the_set)


def subset(lhs: Formula, rhs: Formula) -> Formula:
    """Subset-or-equal predicate."""
    return Binary(BinaryOp.SUBSET, lhs, rhs)


def set_sort_of(formula: Formula) -> SetSort:
    """The set sort of a set-sorted formula (raises if not a set)."""
    sort = formula.sort
    if not isinstance(sort, SetSort):
        raise TypeError(f"expected a set-sorted formula, got {sort}")
    return sort


# Integer zero/one, used all over the component library.
ZERO = IntLit(0)
ONE = IntLit(1)
