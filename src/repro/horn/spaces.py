"""Qualifier spaces: the search space of each predicate unknown.

Following Sec. 2 and Sec. 3.6 of the paper, the space of liquid formulas
for an unknown ``P`` is the power set of ``Q_P`` — the atomic formulas
obtained by instantiating the qualifiers' placeholders with the variables
(and distinguished terms such as literals or the value variable ``nu``)
that were in scope where ``P`` was created.  A valuation of ``P`` is a
subset of ``Q_P``, read as the conjunction of its members; the greatest
valuation ``Q_P`` itself is the *strongest* candidate the fixpoint
iteration starts from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from ..logic.formulas import Formula, value_var
from ..logic.qualifiers import Qualifier, instantiate_all
from ..logic.sorts import Sort


@dataclass(frozen=True)
class QualifierSpace:
    """The instantiated qualifier set ``Q_P`` of one predicate unknown.

    ``abducible`` marks an unknown solved from the *bottom* of the lattice:
    it may only appear in premises (a negative position — an abduced guard
    or inferred precondition), it starts at the weakest valuation ``True``,
    and the candidate-set search strengthens it one qualifier at a time,
    branching when a failing constraint admits several minimal repairs (the
    disjunctive inference of Sec. 5 of the paper).  Ordinary unknowns keep
    the greatest-fixpoint treatment: start strongest, weaken to a unique
    maximal fixpoint.

    ``max_conjuncts`` bounds how many qualifiers a single abducible
    valuation may conjoin — condition abduction caps guards at a small
    size so the search terminates on unabducible goals at the same depth
    the brute-force subset walk did.  ``None`` leaves the valuation size
    unbounded (the whole power set of the space is reachable).
    """

    unknown: str
    qualifiers: Tuple[Formula, ...]
    abducible: bool = False
    max_conjuncts: Optional[int] = None

    def __len__(self) -> int:
        return len(self.qualifiers)

    def index_of(self, qualifier: Formula) -> int:
        """Position of ``qualifier`` in the space's fixed order — the order
        the candidate search and the MUS enumerator canonicalize subsets
        by, so serial and portfolio runs agree on candidate identity."""
        return self.qualifiers.index(qualifier)


def build_space(
    unknown: str,
    qualifiers: Sequence[Qualifier],
    candidates: Sequence[Formula],
    value_sort: Optional[Sort] = None,
    abducible: bool = False,
) -> QualifierSpace:
    """Instantiate ``qualifiers`` over the scope of ``unknown``.

    ``candidates`` are the formulas allowed to fill placeholders — normally
    the program variables in scope, optionally enriched with interesting
    literals such as ``0``.  When ``value_sort`` is given, the value
    variable ``nu`` at that sort joins the candidate pool, which is how
    post-condition unknowns talk about the value being produced.
    ``abducible`` marks the unknown for bottom-up candidate-set search
    (see :class:`QualifierSpace`).
    """
    pool = list(candidates)
    if value_sort is not None:
        pool.append(value_var(value_sort))
    return QualifierSpace(unknown, tuple(instantiate_all(qualifiers, pool)), abducible)


SpacesLike = Union[Mapping[str, QualifierSpace], Iterable[QualifierSpace]]


def as_space_map(spaces: SpacesLike) -> Dict[str, QualifierSpace]:
    """Normalize a mapping or iterable of spaces into a name-keyed dict."""
    if isinstance(spaces, Mapping):
        return dict(spaces)
    return {space.unknown: space for space in spaces}


def build_spaces(
    scopes: Mapping[str, Sequence[Formula]],
    qualifiers: Sequence[Qualifier],
    value_sort: Optional[Sort] = None,
) -> Dict[str, QualifierSpace]:
    """Build one space per unknown from a name -> scope-candidates map."""
    return {
        unknown: build_space(unknown, qualifiers, candidates, value_sort)
        for unknown, candidates in scopes.items()
    }
