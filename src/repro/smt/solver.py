"""The DPLL(T) satisfiability solver.

This is the replacement for Z3 used by the original Synquid: a
propositional CDCL core (:mod:`repro.smt.sat`) explores the boolean
structure of the query while a persistent, backtrackable EUF + LIA theory
solver (:class:`repro.smt.theory.IncrementalTheory`) shadows its trail.
At every propagation fixpoint the newly assigned theory atoms are
asserted into the theory — per decision level, not only on complete
assignments — so inconsistent branches are refuted while they are still
partial; the theory also *propagates*, pushing atom values it can already
entail (LIA bound subsumption, congruence-entailed equalities) back into
the SAT trail as implications with reason clauses.  Theory conflicts are
explained (simplex bound tags) or QuickXplain-minimized, learned as
lemmas, and additionally *generalized*: lemmas are keyed by their
alpha-canonical renaming, so a structurally identical conflict over fresh
type variables is answered by instantiating the stored lemma instead of a
new theory refutation.

Two entry points share that loop:

* :class:`IncrementalSolver` — the workhorse.  One persistent Tseitin
  encoder, **one persistent CDCL SAT solver**, and one theory checker
  serve every query for the solver's whole lifetime; each asserted formula
  is guarded by an *assumption literal* (a selector), its CNF is loaded
  into the SAT core exactly once at selector-creation time, and ``check``
  merely solves under the active selectors.  Clause relevance is free:
  watched-literal propagation never touches clauses whose selectors are
  inactive (their guards are satisfied by the solver's negative default
  phase).  Re-asserting a formula (the Horn fixpoint loop does this
  constantly) reuses its existing CNF, theory lemmas learned in one query
  prune all later ones, and the learned-lemma database is garbage
  collected by clause activity so it stays bounded.

* :class:`SmtSolver` — the one-shot façade kept for back compatibility.
  It owns an :class:`IncrementalSolver`, wraps each query in a
  ``push``/``assert_``/``check``/``pop`` bracket, and memoizes results in a
  bounded LRU cache keyed by interned formulas.

Per-query preprocessing (see :meth:`IncrementalSolver._preprocess`):

1. boolean equalities are rewritten to ``iff``;
2. if-then-else terms are lifted into fresh definitional variables;
3. the formula is put into negation normal form;
4. finite-set atoms are compiled away (``repro.smt.sets``);
5. the result is Tseitin-encoded and handed to the lazy loop.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..logic import ops
from ..logic.formulas import (
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Var,
    intern_formula,
    is_false,
    is_true,
)
from ..logic.simplify import negation_normal_form, simplify
from ..logic.sorts import BoolSort
from ..logic.substitution import rename
from ..logic.transform import transform
from .interface import SolverBackend
from .names import FreshNames
from .sat import SatSolver
from .sets import eliminate_sets, mentions_sets
from .theory import Conflict, IncrementalTheory, Literal, TheoryChecker


@dataclass
class SolverStatistics:
    """Counters exposed for the evaluation harness."""

    sat_queries: int = 0
    validity_queries: int = 0
    theory_checks: int = 0
    cache_hits: int = 0
    cache_evictions: int = 0
    #: Distinct formulas encoded into CNF (selector created).
    encoded_assertions: int = 0
    #: Assertions answered from the selector table without re-encoding.
    reused_assertions: int = 0
    #: Theory checks spent minimizing conflicts (QuickXplain probes).
    shrink_theory_checks: int = 0
    # Mirrors of the persistent SAT core's lifetime counters.
    propagations: int = 0
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    gced_clauses: int = 0
    #: Implications the theory pushed into the SAT trail (DPLL(T)).
    theory_propagations: int = 0
    #: Theory conflicts raised against (partial) assignments.
    theory_conflicts: int = 0
    #: Pivots performed by the persistent simplex tableau.
    tableau_pivots: int = 0
    #: Lemma clauses instantiated from alpha-canonical generalizations.
    lemmas_generalized: int = 0
    #: Literals removed from learned clauses by self-subsumption.
    minimized_literals: int = 0


# ---------------------------------------------------------------------------
# Tseitin encoding
# ---------------------------------------------------------------------------

class TseitinEncoder:
    """Encodes NNF formulas into CNF over fresh propositional variables.

    The encoder is persistent: theory atoms and previously encoded formulas
    are memoized in formula-keyed tables (O(1) lookups thanks to the cached
    structural hashes), so encoding the same subformula twice costs a single
    dictionary probe instead of a CNF rebuild.

    Every emitted gate clause is a full equivalence (``output <-> gate``),
    so under any complete assignment of the clause database the root
    literal of an encoded formula evaluates exactly to the formula's truth
    value — which is what lets consumers read counterexample models back
    through :meth:`IncrementalSolver.check_evaluating`.

    Atom *provenance* is tracked per encoded formula (the atoms it
    references itself plus the formulas it delegated to), so a consumer can
    ask for exactly the theory atoms a given root formula depends on
    (:meth:`atom_closure`).
    """

    def __init__(self) -> None:
        self.clauses: List[List[int]] = []
        self._atom_vars: Dict[Formula, int] = {}
        self._var_atoms: Dict[int, Formula] = {}
        #: append-only log of (atom, variable) in creation order, so
        #: consumers can postprocess newly interned atoms (theory linking).
        self.atom_log: List[Tuple[Formula, int]] = []
        self._roots: Dict[Formula, int] = {}
        #: subformulas whose encodings a formula depends on
        self._formula_deps: Dict[Formula, List[Formula]] = {}
        #: atom variables referenced directly while encoding a formula
        self._formula_atoms: Dict[Formula, List[int]] = {}
        self._atom_closures: Dict[Formula, frozenset] = {}
        self._frames: List[Tuple[List[Formula], List[int]]] = []
        self._next_var = 1

    def fresh_var(self) -> int:
        """Allocate a fresh propositional variable."""
        variable = self._next_var
        self._next_var += 1
        return variable

    def atom_variable(self, atom: Formula) -> int:
        """The propositional variable standing for a theory atom."""
        variable = self._atom_vars.get(atom)
        if variable is None:
            variable = self.fresh_var()
            self._atom_vars[atom] = variable
            self._var_atoms[variable] = atom
            self.atom_log.append((atom, variable))
        if self._frames:
            self._frames[-1][1].append(variable)
        return variable

    def emit_clause(self, clause: List[int]) -> int:
        """Record a clause; returns its index in :attr:`clauses`."""
        index = len(self.clauses)
        self.clauses.append(clause)
        return index

    def encode(self, formula: Formula) -> int:
        """Encode a formula; returns the literal equivalent to the formula."""
        if self._frames:
            self._frames[-1][0].append(formula)
        cached = self._roots.get(formula)
        if cached is not None:
            return cached
        self._frames.append(([], []))
        try:
            literal = self._encode(formula)
        finally:
            deps, atoms = self._frames.pop()
        self._roots[formula] = literal
        self._formula_deps[formula] = deps
        self._formula_atoms[formula] = atoms
        return literal

    def atom_closure(self, formula: Formula) -> frozenset:
        """Variables of every theory atom the formula's encoding contains."""
        cached = self._atom_closures.get(formula)
        if cached is not None:
            return cached
        needed: set = set()
        stack, seen = [formula], set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            needed.update(self._formula_atoms.get(current, ()))
            stack.extend(self._formula_deps.get(current, ()))
        closure = frozenset(needed)
        self._atom_closures[formula] = closure
        return closure

    def _encode(self, formula: Formula) -> int:
        if isinstance(formula, BoolLit):
            variable = self.fresh_var()
            self.emit_clause([variable] if formula.value else [-variable])
            return variable
        if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
            return -self.encode(formula.arg)
        if isinstance(formula, Binary) and formula.op is BinaryOp.AND:
            lhs, rhs = self.encode(formula.lhs), self.encode(formula.rhs)
            output = self.fresh_var()
            self.emit_clause([-output, lhs])
            self.emit_clause([-output, rhs])
            self.emit_clause([output, -lhs, -rhs])
            return output
        if isinstance(formula, Binary) and formula.op is BinaryOp.OR:
            lhs, rhs = self.encode(formula.lhs), self.encode(formula.rhs)
            output = self.fresh_var()
            self.emit_clause([-output, lhs, rhs])
            self.emit_clause([output, -lhs])
            self.emit_clause([output, -rhs])
            return output
        if isinstance(formula, Binary) and formula.op is BinaryOp.IMPLIES:
            return self.encode(ops.or_(ops.not_(formula.lhs), formula.rhs))
        if isinstance(formula, Binary) and formula.op is BinaryOp.IFF:
            both = ops.and_(
                ops.implies(formula.lhs, formula.rhs),
                ops.implies(formula.rhs, formula.lhs),
            )
            return self.encode(both)
        if isinstance(formula, Ite) and isinstance(formula.sort, BoolSort):
            expanded = ops.or_(
                ops.and_(formula.cond, formula.then_),
                ops.and_(ops.not_(formula.cond), formula.else_),
            )
            return self.encode(expanded)
        # A theory atom.
        return self.atom_variable(formula)

    def theory_literals(
        self, model: Dict[int, bool], restrict: Optional[frozenset] = None
    ) -> List[Literal]:
        """The theory literals implied by a propositional model.

        When ``restrict`` is given, only atoms whose variable belongs to it
        are reported — the incremental backend passes the variables of the
        *active* assertions, keeping don't-care atoms out of the theory
        checker.  The restricted path walks ``restrict``, not the
        solver-lifetime atom table, so its cost tracks the live scope.
        """
        literals: List[Literal] = []
        if restrict is not None:
            for variable in sorted(restrict):
                atom = self._var_atoms.get(variable)
                if atom is not None and variable in model:
                    literals.append(Literal(atom, model[variable]))
            return literals
        for atom, variable in self._atom_vars.items():
            if variable in model:
                literals.append(Literal(atom, model[variable]))
        return literals


# ---------------------------------------------------------------------------
# the incremental backend
# ---------------------------------------------------------------------------


class _TheoryBridge:
    """Adapts :class:`IncrementalTheory` to the :class:`SatSolver` DPLL(T)
    listener protocol.

    One theory scope is pushed per ``extend`` batch (the trail literals
    assigned since the last propagation fixpoint), so a batch costs one
    undo frame no matter how many Tseitin auxiliaries it carries.  The
    solver only ever backtracks to propagation fixpoints, which are batch
    starts; a backjump that lands inside a batch (assumption levels share
    one batch) pops the whole batch and the next ``extend`` re-asserts the
    surviving prefix verbatim.  On success, the entailed values of
    watched, still-unassigned atoms are reported as implications.
    """

    def __init__(self, owner: "IncrementalSolver") -> None:
        self._owner = owner
        self.theory = IncrementalTheory()
        #: trail literals absorbed so far (the SatSolver protocol field).
        self.synced = 0
        #: trail position at which each open theory scope began.
        self._marks: List[int] = []
        #: watched atom variables of the current solve's decision cone.
        self._watch_vars: List[int] = []
        #: incremental theory checks performed (one per literal batch).
        self.checks = 0

    def begin(self, cone) -> None:
        """Start a solve over the given decision cone."""
        theory = self.theory
        self._watch_vars = [v for v in cone if theory.is_watched(v)]

    def backtrack(self, count: int) -> None:
        theory = self.theory
        marks = self._marks
        while marks and self.synced > count:
            theory.pop()
            self.synced = marks.pop()

    def extend(self, new_literals: Sequence[int]):
        owner = self._owner
        theory = self.theory
        self._marks.append(self.synced)
        theory.push()
        self.synced += len(new_literals)
        var_atoms = owner._encoder._var_atoms
        touched = False
        for lit in new_literals:
            atom = var_atoms.get(lit if lit > 0 else -lit)
            if atom is None:
                continue
            touched = True
            conflict = theory.assert_literal(Literal(atom, lit > 0))
            if conflict is not None:
                # The remaining batch is left unasserted: a conflict report
                # always backtracks the trail, popping this whole scope.
                return "conflict", owner._theory_conflict_clause(conflict)
        if not touched:
            return "ok", ()
        self.checks += 1
        conflict = theory.check()
        if conflict is not None:
            return "conflict", owner._theory_conflict_clause(conflict)
        return "ok", self._implications()

    def _implications(self) -> Sequence[List[int]]:
        """Reason clauses for entailed values of unassigned watched atoms."""
        assign = self._owner._sat._assign
        top = len(assign)
        unassigned = [v for v in self._watch_vars if v >= top or assign[v] is None]
        if not unassigned:
            return ()
        atom_vars = self._owner._encoder._atom_vars
        implications: List[List[int]] = []
        for payload, polarity, reasons in self.theory.propagate(unassigned):
            lit = payload if polarity else -payload
            clause = [lit]
            seen = {lit}
            for reason in reasons:
                reason_var = atom_vars[reason.atom]
                reason_lit = -reason_var if reason.polarity else reason_var
                if reason_lit not in seen:
                    seen.add(reason_lit)
                    clause.append(reason_lit)
            implications.append(clause)
        return implications


def _ordered_free_vars(formula: Formula, out: List[str], seen: Set[str]) -> None:
    """Collect free variable names in deterministic first-occurrence order
    (structural left-to-right traversal)."""
    if isinstance(formula, Var):
        if formula.name not in seen:
            seen.add(formula.name)
            out.append(formula.name)
    elif isinstance(formula, Unary):
        _ordered_free_vars(formula.arg, out, seen)
    elif isinstance(formula, Binary):
        _ordered_free_vars(formula.lhs, out, seen)
        _ordered_free_vars(formula.rhs, out, seen)
    elif isinstance(formula, Ite):
        _ordered_free_vars(formula.cond, out, seen)
        _ordered_free_vars(formula.then_, out, seen)
        _ordered_free_vars(formula.else_, out, seen)
    elif isinstance(formula, App):
        for arg in formula.args:
            _ordered_free_vars(arg, out, seen)
    elif isinstance(formula, SetLit):
        for element in formula.elements:
            _ordered_free_vars(element, out, seen)


#: Theory lemmas longer than this are not alpha-generalized (wide conflicts
#: rarely recur under renaming, and indexing them is all cost).
_GENERALIZE_LIMIT = 8


class IncrementalSolver(SolverBackend):
    """Assumption-literal based incremental CDCL(T) solver.

    Every distinct asserted formula gets a *selector* literal ``s`` and a
    guard clause ``s -> formula``; a scope is the list of selectors asserted
    since the matching ``push``, and ``check`` solves under the union of the
    live selectors as assumptions.  Popping a scope merely forgets its
    selector list — the CNF, the atom table, and all learned theory lemmas
    stay in the **one persistent SAT solver**, so later scopes that
    re-assert the same formulas (the Horn fixpoint loop, the type checker's
    subtyping queries) reuse everything.  No clauses are ever copied per
    check: watched literals skip clauses whose selectors are inactive, and
    the SAT core's learned-clause GC keeps the lemma database bounded.

    Theory lemmas learned by blocking inconsistent assignments are valid
    sentences of the theory, so keeping them across scopes is sound (and
    dropping them in a garbage collection merely means the theory may have
    to refute the same assignment again).  Each ``check`` restricts the
    theory checker to the atoms of the *active* assertions, maintained
    incrementally as scopes are pushed and popped.

    Note on finite sets: set atoms are compiled away per assertion, so the
    element universe of a positive set equality/inclusion is the assertion's
    own universe rather than the whole scope's.  Splitting one formula into
    several assertions can therefore under-approximate unsatisfiability of
    set constraints; callers deciding *validity* (unsat of the negation)
    stay sound, and :meth:`is_valid_implication` conjoins automatically
    when sets are involved.  Assert a single conjunction when exact set
    reasoning across hand-rolled assertions is required.
    """

    #: Upper bound on lazy refinement iterations per query (safety net).
    MAX_ITERATIONS = 20_000

    def __init__(self, statistics: Optional[SolverStatistics] = None) -> None:
        self._encoder = TseitinEncoder()
        self._sat = SatSolver()
        self._theory = TheoryChecker()
        self._fresh = FreshNames()
        #: clauses of the encoder already loaded into the SAT core.
        self._loaded_clauses = 0
        #: formula -> selector literal (None when the formula is trivially true).
        self._selectors: Dict[Formula, Optional[int]] = {}
        #: selector literal -> variables of the theory atoms it activates.
        self._selector_atoms: Dict[int, frozenset] = {}
        #: multiset over the live selectors' atoms, maintained incrementally
        #: on assert_/pop instead of re-unioned per check.  Doubles as the
        #: SAT core's decision cone: Tseitin auxiliaries follow from atom
        #: assignments by unit propagation, so atoms are the only variables
        #: worth branching on.
        self._active_atom_counts: Dict[int, int] = {}
        #: directed (lhs, rhs) term pair -> [(relation, variable)] for the
        #: comparison/equality atoms over it (theory linking index).
        self._atoms_by_pair: Dict[Tuple[Formula, Formula], List[Tuple[str, int]]] = {}
        #: atoms of the encoder's log already linked.
        self._linked_atoms = 0
        self._frames: List[List[int]] = [[]]
        #: the persistent DPLL(T) theory, shadowing the SAT trail.
        self._bridge = _TheoryBridge(self)
        self._sat.max_theory_restarts = self.MAX_ITERATIONS
        #: atom -> (alpha-canonical form, variable names in canonical order).
        self._canon_cache: Dict[Formula, Tuple[Formula, Tuple[str, ...]]] = {}
        #: canonical atom -> interned atoms sharing that shape.
        self._atoms_by_canon: Dict[Formula, List[Formula]] = {}
        #: (canonical atom, variable order) -> the interned atom, so lemma
        #: instantiation is pure dictionary lookup (no formula renaming).
        self._atom_by_shape: Dict[Tuple[Formula, Tuple[str, ...]], Formula] = {}
        #: canonical atom -> [(anchor var order, lemma literals)] entries.
        self._lemma_index: Dict[Formula, List[Tuple[Tuple[str, ...], Tuple]]] = {}
        #: whole-lemma canonical keys already generalized.
        self._lemma_keys: Set[Tuple] = set()
        #: instantiated lemma clauses already emitted (dedup).
        self._emitted_instances: Set[frozenset] = set()
        self.statistics = statistics if statistics is not None else SolverStatistics()

    # -- SolverBackend -------------------------------------------------------

    def push(self) -> None:
        self._frames.append([])

    def pop(self) -> None:
        if len(self._frames) == 1:
            raise RuntimeError("pop without matching push")
        counts = self._active_atom_counts
        for selector in self._frames.pop():
            for variable in self._selector_atoms[selector]:
                remaining = counts[variable] - 1
                if remaining:
                    counts[variable] = remaining
                else:
                    del counts[variable]

    def has_assertions(self) -> bool:
        """Is any assertion live in any scope (base frame included)?"""
        return any(self._frames)

    def assert_(self, formula: Formula) -> None:
        formula = intern_formula(formula)
        if formula in self._selectors:
            self.statistics.reused_assertions += 1
            selector = self._selectors[formula]
        else:
            selector = self._make_selector(formula)
            self._selectors[formula] = selector
        if selector is not None:
            self._frames[-1].append(selector)
            counts = self._active_atom_counts
            for variable in self._selector_atoms[selector]:
                counts[variable] = counts.get(variable, 0) + 1

    def check(self) -> bool:
        return self._solve_active() is not None

    def check_evaluating(
        self, probes: Sequence[Formula]
    ) -> Optional[List[Optional[bool]]]:
        """Check the live assertions; on SAT, also report each probe's truth
        value under the discovered theory-consistent model.

        Returns ``None`` when the assertions are unsatisfiable.  Otherwise
        the list holds one entry per probe: the probe is evaluated
        three-valued over exactly the atoms the theory checker vouched for
        (the model's prime implicant), so a ``True``/``False`` entry holds
        in a genuine theory model of the live assertions; ``None`` means
        the checked atoms leave the probe undetermined (or the probe is
        unevaluable: set atoms, ite-lifting).
        """
        outcome = self._solve_active()
        if outcome is None:
            return None
        model, checked = outcome
        atom_vars = self._encoder._atom_vars
        return [
            _evaluate_partial(intern_formula(probe), atom_vars, model, checked)
            for probe in probes
        ]

    def check_assuming(self, formulas) -> bool:
        formulas = list(formulas)
        if any(mentions_sets(f) for f in formulas):
            # Per-assertion set elimination scopes element universes too
            # narrowly for cross-assertion reasoning; fall back to one
            # conjoined assertion (the exact, one-shot pipeline).
            self.push()
            try:
                self.assert_(ops.conj(formulas))
                return self.check()
            finally:
                self.pop()
        return super().check_assuming(formulas)

    def is_valid_implication(self, premises, conclusion: Formula) -> bool:
        premises = list(premises)
        if mentions_sets(conclusion) or any(mentions_sets(p) for p in premises):
            return not self.check_assuming([ops.and_(ops.conj(premises), ops.not_(conclusion))])
        return super().is_valid_implication(premises, conclusion)

    # -- internals -----------------------------------------------------------

    def _solve_active(self) -> Optional[Tuple[Dict[int, bool], frozenset]]:
        """One DPLL(T) solve over the persistent SAT core.

        The theory bridge shadows the SAT trail, so a satisfiable verdict
        is already theory-consistent over every asserted atom — the old
        guess-check-block outer loop is gone.  Returns ``(model,
        checked_atoms)``: the model plus the active atom variables the
        theory vouched for, or ``None`` when the active scope is
        unsatisfiable.
        """
        self.statistics.sat_queries += 1
        assumptions = [lit for frame in self._frames for lit in frame]
        active_atoms = frozenset(self._active_atom_counts)
        self._bridge.begin(active_atoms)
        try:
            result = self._sat.solve(assumptions, decide=active_atoms, theory=self._bridge)
        finally:
            self._sync_sat_statistics()
        if not result.satisfiable:
            return None
        # Every assigned atom was asserted into (and accepted by) the
        # theory; the active ones are what probe evaluation may trust.
        checked = frozenset(
            variable for variable in active_atoms if variable in result.model
        )
        return result.model, checked

    def _theory_conflict_clause(self, conflict: Conflict) -> List[int]:
        """Turn a theory conflict into a blocking clause (and generalize it).

        Explained conflicts (simplex bound tags) are near-minimal already;
        unexplained ones (congruence, Nelson–Oppen) are QuickXplain-shrunk
        against the stateless checker before blocking.
        """
        literals, explained = conflict
        if not explained:
            literals = _shrink_conflict(self._theory, literals, self.statistics)
        atom_variable = self._encoder.atom_variable
        clause: List[int] = []
        seen: Set[int] = set()
        for literal in literals:
            lit = (
                -atom_variable(literal.atom)
                if literal.polarity
                else atom_variable(literal.atom)
            )
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self._generalize_lemma(literals)
        return clause

    def _sync_sat_statistics(self) -> None:
        stats, sat_stats = self.statistics, self._sat.statistics
        stats.propagations = sat_stats.propagations
        stats.conflicts = sat_stats.conflicts
        stats.restarts = sat_stats.restarts
        stats.learned_clauses = sat_stats.learned_clauses
        stats.gced_clauses = sat_stats.gced_clauses
        stats.minimized_literals = sat_stats.minimized_literals
        stats.theory_propagations = sat_stats.theory_propagations
        stats.theory_conflicts = sat_stats.theory_conflicts
        stats.theory_checks = self._bridge.checks
        stats.tableau_pivots = self._bridge.theory.simplex.pivots

    # -- lemma generalization ------------------------------------------------

    def _canonical_atom(self, atom: Formula) -> Tuple[Formula, Tuple[str, ...]]:
        """The atom with its free variables alpha-renamed in first-occurrence
        order, plus the original names in that order.  Two atoms have equal
        canonical forms iff one is a variable renaming of the other (with
        matching sorts, since renaming preserves each variable's sort)."""
        cached = self._canon_cache.get(atom)
        if cached is None:
            names: List[str] = []
            _ordered_free_vars(atom, names, set())
            if names:
                mapping = {name: f"?c{i}" for i, name in enumerate(names)}
                canon = intern_formula(rename(atom, mapping))
            else:
                canon = atom
            cached = (canon, tuple(names))
            self._canon_cache[atom] = cached
        return cached

    def _generalize_lemma(self, literals: Sequence[Literal]) -> None:
        """Index a theory conflict by its alpha-canonical form and emit its
        instances over already-interned renamed atoms.

        A conflict is a theory-unsatisfiable conjunction; any uniform
        variable renaming of it is equally unsatisfiable, so its blocking
        clause may be replayed under every renaming whose atoms exist in
        the encoder.  The synthesizer's fresh ``_tvN`` instantiations hit
        exactly this: structurally identical conflicts that previously each
        cost a theory refutation now propagate propositionally.
        """
        if not literals or len(literals) > _GENERALIZE_LIMIT:
            return
        atom_vars = self._encoder._atom_vars
        if any(lit.atom not in atom_vars for lit in literals):
            return
        ordered = sorted(literals, key=lambda lit: atom_vars[lit.atom])
        names: List[str] = []
        seen_names: Set[str] = set()
        for lit in ordered:
            _ordered_free_vars(lit.atom, names, seen_names)
        if not names:
            return
        mapping = {name: f"?g{i}" for i, name in enumerate(names)}
        key = tuple(
            (intern_formula(rename(lit.atom, mapping)), lit.polarity) for lit in ordered
        )
        if key in self._lemma_keys:
            return
        self._lemma_keys.add(key)
        lemma = tuple((lit.atom, lit.polarity) for lit in ordered)
        anchored: Set[Formula] = set()
        for lit in ordered:
            if lit.atom in anchored:
                continue
            anchored.add(lit.atom)
            canon, order = self._canonical_atom(lit.atom)
            entry = (order, lemma)
            self._lemma_index.setdefault(canon, []).append(entry)
            # Replay against renamed atoms interned before this lemma.
            for existing in self._atoms_by_canon.get(canon, ()):
                self._instantiate_entry(entry, self._canonical_atom(existing)[1])

    def _instantiate_entry(
        self, entry: Tuple[Tuple[str, ...], Tuple], new_order: Tuple[str, ...]
    ) -> None:
        """Emit one lemma instance: rename the anchor's variables to the new
        atom's and block the renamed conjunction — provided every renamed
        atom is already interned (no new atoms are invented).

        Renamed atoms are found by (canonical shape, renamed variable
        order) lookup rather than by building the renamed formula, so a
        replay attempt costs dictionary probes only.  Instances whose
        renaming collapses distinct variables change an atom's canonical
        shape and are not found — such degenerate instances are skipped
        (a completeness trade, never a soundness one).
        """
        var_order, lemma = entry
        if len(var_order) != len(new_order):
            return
        substitution = {
            old: new for old, new in zip(var_order, new_order) if old != new
        }
        if not substitution:
            return  # the identity instance is the original blocking clause
        atom_vars = self._encoder._atom_vars
        atom_by_shape = self._atom_by_shape
        clause: List[int] = []
        for lemma_atom, polarity in lemma:
            canon, order = self._canonical_atom(lemma_atom)
            instance_order = tuple(substitution.get(name, name) for name in order)
            if instance_order == order:
                instance = lemma_atom
            else:
                instance = atom_by_shape.get((canon, instance_order))
                if instance is None:
                    return
            variable = atom_vars.get(instance)
            if variable is None:
                return
            clause.append(-variable if polarity else variable)
        dedup = frozenset(clause)
        if dedup in self._emitted_instances:
            return
        self._emitted_instances.add(dedup)
        self._sat.add_lemma(clause)
        self.statistics.lemmas_generalized += 1

    # -- lemma export/import (the service's cross-run cache) -----------------

    def export_theory_lemmas(self) -> List[Tuple[Tuple[Formula, bool], ...]]:
        """The learned theory lemmas in alpha-canonical form.

        Each lemma is the canonical key of one generalized conflict: a
        tuple of ``(atom, polarity)`` pairs over ``?gN``-renamed variables
        whose conjunction is theory-unsatisfiable.  Canonical lemmas are
        valid sentences of the pure theory (EUF + LIA) — independent of
        any particular query — so they can be persisted across runs and
        replayed into a fresh solver (:meth:`import_theory_lemmas`); the
        service cache uses exactly this as its warm-start payload.
        """
        return sorted(self._lemma_keys, key=repr)

    def import_theory_lemmas(
        self, lemmas: Sequence[Tuple[Tuple[Formula, bool], ...]]
    ) -> int:
        """Adopt previously exported alpha-canonical lemmas.

        Each lemma joins the generalization index exactly as if its
        conflict had been learned here: future atoms interned with a
        matching canonical shape trigger propositional replay
        (:meth:`_instantiate_entry`), so a warm-started solver refutes the
        recurring conflicts of earlier runs by unit propagation.  Returns
        how many lemmas were new to this solver.
        """
        imported = 0
        for lemma in lemmas:
            key = tuple(
                (intern_formula(atom), bool(polarity)) for atom, polarity in lemma
            )
            if not key or len(key) > _GENERALIZE_LIMIT or key in self._lemma_keys:
                continue
            self._lemma_keys.add(key)
            anchored: Set[Formula] = set()
            for atom, _ in key:
                if atom in anchored:
                    continue
                anchored.add(atom)
                canon, order = self._canonical_atom(atom)
                entry = (order, key)
                self._lemma_index.setdefault(canon, []).append(entry)
                for existing in self._atoms_by_canon.get(canon, ()):
                    self._instantiate_entry(entry, self._canonical_atom(existing)[1])
            imported += 1
        return imported

    def _make_selector(self, formula: Formula) -> Optional[int]:
        self.statistics.encoded_assertions += 1
        processed = self._preprocess(formula)
        if is_true(processed):
            return None
        selector = self._encoder.fresh_var()
        if is_false(processed):
            # Assuming the selector contradicts this unit guard, making any
            # scope that asserts the formula unsatisfiable.
            self._encoder.emit_clause([-selector])
            self._selector_atoms[selector] = frozenset()
        else:
            root = self._encoder.encode(processed)
            self._encoder.emit_clause([-selector, root])
            self._selector_atoms[selector] = self._encoder.atom_closure(processed)
        self._load_new_clauses()
        self._link_new_atoms()
        return selector

    def _load_new_clauses(self) -> None:
        """Feed clauses emitted since the last load into the SAT core —
        each clause is encoded and loaded exactly once per solver lifetime."""
        clauses = self._encoder.clauses
        for index in range(self._loaded_clauses, len(clauses)):
            self._sat.add_clause(clauses[index])
        self._loaded_clauses = len(clauses)

    #: A relation over a directed term pair (a, b), as the set of outcomes
    #: of comparing a with b it allows — bit 4: a < b, bit 2: a = b,
    #: bit 1: a > b.  (For non-arithmetic sorts only eq/neq atoms arise,
    #: and merging their "<"/">" bits into plain disequality stays exact.)
    _REL_SIGNS = {"lt": 0b100, "eq": 0b010, "gt": 0b001, "le": 0b110, "ge": 0b011, "neq": 0b101}

    #: Flip a relation to the opposite orientation of its term pair.
    _FLIP = {"le": "ge", "ge": "le", "lt": "gt", "gt": "lt", "eq": "eq", "neq": "neq"}

    def _link_new_atoms(self) -> None:
        """Seed theory-valid lemmas relating comparison atoms over the same
        term pair (``a = b  ->  a <= b`` and friends).

        The lazy loop would discover each of these as a one-off theory
        conflict (costing a theory check, a minimization, and a re-solve);
        linking them propositionally at interning time lets unit
        propagation rule the combinations out for free.
        """
        log = self._encoder.atom_log
        while self._linked_atoms < len(log):
            atom, variable = log[self._linked_atoms]
            self._linked_atoms += 1
            # Register for theory propagation and alpha-canonical lemma
            # replay: a generalized conflict stored under this atom's shape
            # is instantiated here, at interning time.
            self._bridge.theory.watch_atom(atom, variable)
            canon, order = self._canonical_atom(atom)
            self._atoms_by_canon.setdefault(canon, []).append(atom)
            self._atom_by_shape[(canon, order)] = atom
            for entry in self._lemma_index.get(canon, ()):
                self._instantiate_entry(entry, order)
            decomposed = _comparison_parts(atom)
            if decomposed is None:
                continue
            relation, lhs, rhs = decomposed
            same = self._atoms_by_pair.setdefault((lhs, rhs), [])
            for other_rel, other_var in same:
                self._emit_link(relation, variable, other_rel, other_var)
            if lhs is not rhs:
                for other_rel, other_var in self._atoms_by_pair.get((rhs, lhs), ()):
                    self._emit_link(relation, variable, self._FLIP[other_rel], other_var)
            same.append((relation, variable))

    def _emit_link(self, relation: str, variable: int, other_rel: str, other_var: int) -> None:
        """Every valid binary clause relating two atoms over one term pair.

        With relations as outcome sets S over {<, =, >}: ``P -> Q`` is valid
        iff S(P) is a subset of S(Q), ``P | Q`` iff the sets cover all
        outcomes, and ``!P | !Q`` iff they are disjoint.
        """
        first = self._REL_SIGNS[relation]
        second = self._REL_SIGNS[other_rel]
        lemma = self._sat.add_lemma
        if first | second == 0b111:
            lemma([variable, other_var])
        if first & second == 0:
            lemma([-variable, -other_var])
        if first & ~second == 0:
            lemma([-variable, other_var])
        if second & ~first == 0:
            lemma([variable, -other_var])

    def _preprocess(self, formula: Formula) -> Formula:
        formula = simplify(formula)
        formula = _booleanize_equalities(formula)
        formula, definitions = _lift_ite(formula, self._fresh)
        if definitions:
            formula = ops.and_(formula, ops.conj(definitions))
        formula = negation_normal_form(formula)
        if mentions_sets(formula):
            formula = eliminate_sets(formula, self._fresh)
            formula = negation_normal_form(formula)
        return simplify(formula)


_COMPARISON_RELS = {
    BinaryOp.LE: "le",
    BinaryOp.LT: "lt",
    BinaryOp.GE: "ge",
    BinaryOp.GT: "gt",
    BinaryOp.EQ: "eq",
    BinaryOp.NEQ: "neq",
}


def _comparison_parts(atom: Formula) -> Optional[Tuple[str, Formula, Formula]]:
    """Decompose a comparison/equality atom into (relation, lhs, rhs)."""
    if isinstance(atom, Binary):
        relation = _COMPARISON_RELS.get(atom.op)
        if relation is not None:
            return relation, atom.lhs, atom.rhs
    return None


def _evaluate_partial(
    formula: Formula,
    atom_vars: Dict[Formula, int],
    model: Dict[int, bool],
    checked: frozenset,
) -> Optional[bool]:
    """Three-valued evaluation of a (raw) probe formula under a model.

    Atoms count as decided only when the theory checker vouched for their
    model value (``checked``); every other leaf — unknown atoms, set
    atoms compiled away during encoding, lifted ``ite`` terms — is unknown,
    and unknowns propagate by three-valued logic.  A definite answer
    therefore holds in a genuine theory model of the live assertions,
    which is what makes counterexample-driven pruning sound.
    """
    if isinstance(formula, BoolLit):
        return formula.value
    if isinstance(formula, Unary) and formula.op is UnaryOp.NOT:
        inner = _evaluate_partial(formula.arg, atom_vars, model, checked)
        return None if inner is None else not inner
    if isinstance(formula, Binary) and formula.op in (
        BinaryOp.AND,
        BinaryOp.OR,
        BinaryOp.IMPLIES,
        BinaryOp.IFF,
    ):
        lhs = _evaluate_partial(formula.lhs, atom_vars, model, checked)
        rhs = _evaluate_partial(formula.rhs, atom_vars, model, checked)
        if formula.op is BinaryOp.AND:
            if lhs is False or rhs is False:
                return False
            return True if lhs is True and rhs is True else None
        if formula.op is BinaryOp.OR:
            if lhs is True or rhs is True:
                return True
            return False if lhs is False and rhs is False else None
        if formula.op is BinaryOp.IMPLIES:
            if lhs is False or rhs is True:
                return True
            return False if lhs is True and rhs is False else None
        if lhs is None or rhs is None:
            return None
        return lhs == rhs
    if isinstance(formula, Ite) and isinstance(formula.sort, BoolSort):
        cond = _evaluate_partial(formula.cond, atom_vars, model, checked)
        if cond is None:
            return None
        branch = formula.then_ if cond else formula.else_
        return _evaluate_partial(branch, atom_vars, model, checked)
    # A theory atom: trusted only when the theory check covered it.
    variable = atom_vars.get(formula)
    if variable is not None and variable in checked:
        return model.get(variable)
    return None


#: Below this size a linear deletion scan needs fewer theory checks than
#: the divide-and-conquer (which pays for re-checking split backgrounds).
_SHRINK_DELETION_LIMIT = 8


def _shrink_conflict(
    theory: TheoryChecker,
    literals: List[Literal],
    statistics: Optional[SolverStatistics] = None,
) -> List[Literal]:
    """QuickXplain-style divide-and-conquer minimization of an inconsistent
    literal set (Junker 2004).

    Replaces the former always-linear deletion loop: whole halves that are
    irrelevant to the conflict are discarded with a single theory check, so
    small cores inside wide assignments cost O(core * log n) checks instead
    of O(n).  Tiny conflicts (where deletion's n checks beat the
    divide-and-conquer's bookkeeping) keep the one-at-a-time scan as the
    base case.
    """

    def consistent(subset: List[Literal]) -> bool:
        if statistics is not None:
            statistics.shrink_theory_checks += 1
        return theory.is_consistent(subset)

    def deletion(background: List[Literal], candidates: List[Literal]) -> List[Literal]:
        """Minimal subset of ``candidates`` inconsistent with ``background``
        by one-at-a-time deletion — never returns a consistent core."""
        current = list(candidates)
        index = 0
        while index < len(current):
            trial = current[:index] + current[index + 1 :]
            if (trial or background) and not consistent(background + trial):
                current = trial
            else:
                index += 1
        return current

    def quickxplain(
        background: List[Literal], candidates: List[Literal], background_grew: bool
    ) -> List[Literal]:
        if background_grew and not consistent(background):
            return []
        if len(candidates) == 1:
            return list(candidates)
        if len(candidates) <= _SHRINK_DELETION_LIMIT:
            return deletion(background, candidates)
        mid = len(candidates) // 2
        left, right = candidates[:mid], candidates[mid:]
        conflict_right = quickxplain(background + left, right, bool(left))
        conflict_left = quickxplain(background + conflict_right, left, bool(conflict_right))
        return conflict_left + conflict_right

    if len(literals) <= 1:
        return list(literals)
    if len(literals) <= _SHRINK_DELETION_LIMIT:
        return deletion([], literals)
    core = quickxplain([], list(literals), False)
    # Safety net: the divide-and-conquer relies on the theory checker being
    # monotone; fall back to blocking the full assignment if minimization
    # ever produced a consistent subset.
    if core and not consistent(core):
        return core
    return list(literals)


# ---------------------------------------------------------------------------
# the one-shot façade
# ---------------------------------------------------------------------------

#: Default bound on the memoized query cache of :class:`SmtSolver`.
DEFAULT_CACHE_SIZE = 4096


class SmtSolver:
    """Satisfiability and validity of quantifier-free refinement formulas.

    A thin memoizing façade over a :class:`SolverBackend` (by default a
    private :class:`IncrementalSolver`): each query runs in its own scope,
    and results are cached in a bounded LRU keyed by the interned formula.
    Cached answers are context-free, so the cache is bypassed whenever the
    backend reports live assertions (the iteration budget also lives on the
    backend: ``solver.backend.MAX_ITERATIONS``).
    """

    def __init__(
        self,
        cache_size: int = DEFAULT_CACHE_SIZE,
        backend: Optional[SolverBackend] = None,
    ) -> None:
        if backend is None:
            self.statistics = SolverStatistics()
            self._backend: SolverBackend = IncrementalSolver(self.statistics)
        else:
            self._backend = backend
            self.statistics = getattr(backend, "statistics", SolverStatistics())
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        self._cache: "OrderedDict[Formula, bool]" = OrderedDict()
        self._cache_size = cache_size

    # -- public API ----------------------------------------------------------

    @property
    def backend(self) -> SolverBackend:
        """The incremental backend answering this solver's queries."""
        return self._backend

    def is_valid(self, formula: Formula) -> bool:
        """Is ``formula`` true in every model?"""
        self.statistics.validity_queries += 1
        return not self.is_satisfiable(ops.not_(formula))

    def is_satisfiable(self, formula: Formula) -> bool:
        """Does ``formula`` have a model?

        Answers are memoized only when the backend carries no live
        assertions — in a non-empty context the answer depends on that
        context and must not be cached as context-free.
        """
        key = intern_formula(formula)
        contextual = self._backend.has_assertions()
        if not contextual:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self.statistics.cache_hits += 1
                return cached
        self._backend.push()
        try:
            self._backend.assert_(key)
            result = self._backend.check()
        finally:
            self._backend.pop()
        if contextual:
            return result
        self._cache[key] = result
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
            self.statistics.cache_evictions += 1
        return result

    def clear_cache(self) -> None:
        """Drop memoized query results (used between benchmark runs)."""
        self._cache.clear()


# ---------------------------------------------------------------------------
# preprocessing helpers
# ---------------------------------------------------------------------------

def _booleanize_equalities(formula: Formula) -> Formula:
    """Rewrite ``a == b`` / ``a != b`` over booleans into (negated) ``iff``."""

    def rewrite(node: Formula) -> Formula:
        if isinstance(node, Binary) and node.op in (BinaryOp.EQ, BinaryOp.NEQ):
            if isinstance(node.lhs.sort, BoolSort):
                equivalence = ops.iff(node.lhs, node.rhs)
                return equivalence if node.op is BinaryOp.EQ else ops.not_(equivalence)
        return node

    return transform(formula, rewrite)


def _lift_ite(formula: Formula, fresh: FreshNames) -> Tuple[Formula, List[Formula]]:
    """Replace non-boolean ``ite`` terms by fresh variables with definitional
    constraints ``cond ==> v == then`` and ``!cond ==> v == else``."""
    definitions: List[Formula] = []

    def rewrite(node: Formula) -> Formula:
        if isinstance(node, Ite) and not isinstance(node.sort, BoolSort):
            fresh_var = fresh.fresh_var("ite", node.sort)
            definitions.append(ops.implies(node.cond, ops.eq(fresh_var, node.then_)))
            definitions.append(ops.implies(ops.not_(node.cond), ops.eq(fresh_var, node.else_)))
            return fresh_var
        return node

    rewritten = transform(formula, rewrite)
    return rewritten, definitions
