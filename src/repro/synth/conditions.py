"""Condition abduction for branching programs (Sec. 5.2 of the paper).

When no single E-term satisfies a goal everywhere, the synthesizer splits
the input space with a conditional.  Rather than enumerating guard and
branches together, the paper *abduces* the guard from a branch candidate:
the candidate is checked under a fresh predicate unknown ``C`` assumed as
a path condition (``Γ; C ⊢ e :: T``), and the Horn system is then solved
for the **weakest** valuation of ``C`` — the weakest formula in the
qualifier space under which the branch checks.  ``C``'s space is
instantiated from the variables in scope exactly like a liquid refinement
(:meth:`~repro.typecheck.session.TypecheckSession.fresh_unknown`, no value
variable), so abduction reuses the same unknowns, spaces, and incremental
backend as ordinary liquid inference.

Because ``C`` occurs only in premises (a *negative* position), the
greatest-fixpoint solver cannot weaken it.  :func:`abduce_condition`
therefore re-marks ``C``'s space ``abducible`` and hands the system to
:meth:`~repro.horn.solver.HornSolver.solve`'s candidate-set search: the
frontier BFS strengthens ``C`` from ``True`` one qualifier at a time
(capped at ``max_conjuncts``), MARCO-style MUS enumeration
(:mod:`repro.horn.musfix`) prunes every candidate guard containing a
known-inconsistent core, vacuous guards (ones contradicting **every**
demanding context — equivalently, unsatisfiable at the abduction point
itself, so no executable branch could ever take them; contradicting only
a deeper context, say one match arm, is what a branch condition is *for*)
are rejected, and with ``SolveOptions(max_workers > 1)``
the branches fan out across the process portfolio, MUS lemmas flowing
between them.  The search is level-stopped, so the surviving candidates
are exactly the minimal-size solutions; :func:`_weakest_guards` then
drops the ones another survivor strictly entails, and the result is the
weakest-guard *antichain* — several genuinely incomparable conditions
when the goal is disjunctive.  The synthesizer realizes them in order,
falling to the next member when no Boolean E-term establishes one.

The pre-candidate-set searcher — a brute-force smallest-first subset walk
over the pool — is kept as :func:`_abduce_brute_force`.  It is the
differential oracle: ``tests/test_conditions_differential.py`` asserts
both paths agree on hundreds of randomized instances.  (Its original
greedy form was order-fragile: minimizing the *strongest* valuation can
return a minimal-but-strong conjunction such as ``x == 0 && y == 0``
where ``y <= x`` suffices.  Both paths now settle ties by logical
entailment, so the answer is the weakest guard regardless of pool order —
``tests/test_synth_disjunctive.py`` pins that with shuffled pools.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from itertools import combinations
from math import comb
from typing import Dict, List, Optional, Sequence, Tuple

from .. import limits
from ..horn.constraints import substitute_unknowns
from ..horn.solver import HornSolver, HornStatistics, SolveOptions
from ..horn.spaces import QualifierSpace
from ..logic import ops
from ..logic.formulas import Binary, BinaryOp, Formula
from ..smt.interface import SolverBackend
from ..syntax.terms import Term
from ..syntax.types import RType
from ..typecheck.environment import Environment
from ..typecheck.errors import TypecheckError
from ..typecheck.session import TypecheckSession


@dataclass(frozen=True)
class AbducedCondition:
    """The weakest path conditions under which a branch candidate checks.

    ``candidates`` is the surviving antichain, weakest first: every member
    is a minimal conjunction of pool qualifiers validating the branch, and
    no member entails another.  ``qualifiers`` stays the chosen (first,
    weakest) member, so existing callers keep working; an empty tuple
    means the candidate checks unconditionally.
    """

    qualifiers: Tuple[Formula, ...]
    candidates: Tuple[Tuple[Formula, ...], ...] = ()

    @property
    def formula(self) -> Formula:
        return ops.conj(self.qualifiers)

    def is_trivial(self) -> bool:
        """Does the candidate check under no assumption at all?"""
        return not self.qualifiers


#: The symmetric comparison operators: ``a OP b`` and ``b OP a`` are the
#: same qualifier, and instantiation generates both orientations.
_SYMMETRIC_OPS = frozenset({BinaryOp.EQ, BinaryOp.NEQ})


def _dedupe_pool(pool: Sequence[Formula]) -> Tuple[Formula, ...]:
    """Drop argument-flipped duplicates of symmetric qualifiers (``y == x``
    after ``x == y``), keeping the first orientation seen.

    Guards built from either orientation are logically identical, so the
    flips only widen the candidate lattice.  Both abduction paths share
    this filter — the differential oracle must walk the same pool.
    """
    kept: List[Formula] = []
    seen = set()
    for qualifier in pool:
        if isinstance(qualifier, Binary) and qualifier.op in _SYMMETRIC_OPS:
            key = (qualifier.op, frozenset((qualifier.lhs, qualifier.rhs)))
            if key in seen:
                continue
            seen.add(key)
        kept.append(qualifier)
    return tuple(kept)


def abduce_condition(
    session: TypecheckSession,
    env: Environment,
    candidate: Term,
    goal: RType,
    where: str = "abduce",
    max_conjuncts: int = 2,
    options: Optional[SolveOptions] = None,
    stats: Optional[HornStatistics] = None,
) -> Optional[AbducedCondition]:
    """The weakest qualifier-space conditions validating ``candidate``
    against ``goal``, or ``None`` when no consistent condition of at most
    ``max_conjuncts`` qualifiers does.

    The candidate's constraints are collected in a trial scope (no
    residue); ``C``'s space is then re-inserted marked ``abducible`` and
    the whole system goes through the candidate-set Horn search on the
    session's shared incremental backend.  ``options`` defaults to the
    session's :attr:`~repro.typecheck.session.TypecheckSession.
    solve_options` (worker count, MUS budget); ``stats`` — when given —
    accumulates the solver's search counters.
    """
    opts = options if options is not None else session.solve_options
    # Cancellation point per abduction attempt: each spawns a whole
    # candidate-set Horn search, so check the budget before committing.
    limits.checkpoint()
    with session.trial():
        unknown = session.fresh_unknown(env, None, kind="C")
        pool = _dedupe_pool(session.spaces[unknown.name].qualifiers)
        try:
            session.check(env.assume(unknown), candidate, goal, where)
        except TypecheckError:
            return None
        constraints = list(session.constraints)
        spaces: Dict[str, QualifierSpace] = {
            name: qspace
            for name, qspace in session.spaces.items()
            if name != unknown.name
        }
    # Sound fail-fast: grounding ``C`` at the conjunction of the *whole*
    # pool is the strongest condition the space can express, and validity
    # is monotone in strengthening a premise-position unknown (stronger
    # premises prove more, and the positives' greatest fixpoint only
    # grows).  If even that leaves the system unsolvable, no guard of any
    # size helps — one fixpoint run settles unabducible candidates that
    # would otherwise walk the whole sublattice.
    if pool:
        strongest = {unknown.name: ops.conj(pool)}
        grounded = [substitute_unknowns(constr, strongest) for constr in constraints]
        prefilter = HornSolver(session.backend, validity_memo=session._validity_memo)
        if not prefilter.solve(grounded, spaces).solved:
            return None

    spaces[unknown.name] = QualifierSpace(
        unknown.name, pool, abducible=True, max_conjuncts=max_conjuncts
    )
    # The frontier must hold the whole <= max_conjuncts sublattice of the
    # pool: a capacity-truncated queue would silently skip guards the
    # brute-force oracle tries, breaking differential agreement.
    lattice = sum(comb(len(pool), size) for size in range(max_conjuncts + 1))
    # MUS discovery during abduction comes almost entirely from vacuity
    # witnesses (shrunk on the spot, a handful of theory probes each); a
    # big MARCO budget would re-derive them by blind enumeration over the
    # whole pool at every constraint failure, so keep it small here.
    opts = replace(
        opts,
        max_candidates=max(opts.max_candidates, lattice),
        minimize=False,
        mus_budget=min(opts.mus_budget, 8),
    )

    solver = HornSolver(session.backend, validity_memo=session._validity_memo)
    solution = solver.solve(constraints, spaces, opts)
    if stats is not None:
        stats.merge(solver.statistics)
    if not solution.solved:
        return None
    guards = [tuple(member.get(unknown.name, ())) for member in solution.candidates]
    antichain = _weakest_guards(session.backend, env.embedding(), guards)
    return AbducedCondition(antichain[0], tuple(antichain))


def _abduce_brute_force(
    session: TypecheckSession,
    env: Environment,
    candidate: Term,
    goal: RType,
    where: str = "abduce",
    max_conjuncts: int = 2,
) -> Optional[AbducedCondition]:
    """The pre-candidate-set searcher, kept as the differential oracle.

    Tries conjunctions of the pool smallest-first (the empty conjunction
    is ``True``; then single qualifiers; then pairs, up to
    ``max_conjuncts``), collecting every consistent subset at the first
    size where any validates all constraints — smaller conjunctions are
    logically weaker, so that size holds the weakest abducible conditions
    up to the space's granularity.  A subset is rejected as *vacuous*
    when it contradicts the concrete premises of **every** live
    constraint context mentioning ``C`` — exactly the candidate-set
    path's rule (refuted even at the abduction point itself, such a
    guard is unestablishable; killing only a deeper context is a
    legitimate branch condition).  Ties inside the size are settled
    exactly like the candidate-set path: :func:`_weakest_guards` by
    entailment.
    """
    with session.trial():
        unknown = session.fresh_unknown(env, None, kind="C")
        pool = _dedupe_pool(session.spaces[unknown.name].qualifiers)
        try:
            session.check(env.assume(unknown), candidate, goal, where)
        except TypecheckError:
            return None
        constraints = list(session.constraints)
        other_spaces: Dict[str, QualifierSpace] = {
            name: qspace
            for name, qspace in session.spaces.items()
            if name != unknown.name
        }

    solver = HornSolver(session.backend, validity_memo=session._validity_memo)
    context = env.embedding()
    contexts = {
        constr.concrete_premises()
        for constr in constraints
        if unknown.name in constr.premise_unknowns()
    }
    # A context whose premises are contradictory on their own is dead
    # regardless of the guard, so it cannot count against one.
    live = [hard for hard in contexts if _consistent(session, hard, ())]
    for size in range(0, max_conjuncts + 1):
        hits: List[Tuple[Formula, ...]] = []
        for subset in combinations(pool, size):
            if subset and live and all(
                not _consistent(session, hard, subset) for hard in live
            ):
                continue
            condition = {unknown.name: ops.conj(subset)}
            grounded = [substitute_unknowns(constr, condition) for constr in constraints]
            if solver.solve(grounded, other_spaces).solved:
                hits.append(subset)
        if hits:
            antichain = _weakest_guards(session.backend, context, hits)
            return AbducedCondition(antichain[0], tuple(antichain))
    return None


def _weakest_guards(
    backend: SolverBackend,
    context: Sequence[Formula],
    guards: Sequence[Tuple[Formula, ...]],
) -> List[Tuple[Formula, ...]]:
    """The entailment-weakest antichain of ``guards``, order preserved.

    A guard is dropped when another guard is *strictly* weaker under the
    environment context (the first entails the second but not vice
    versa), or when an earlier survivor is logically equivalent.  Same-
    size guards need this — e.g. ``y < x``, ``y == x`` and ``y <= x`` can
    all validate a branch, and only ``y <= x`` should survive — and it is
    what makes the abduced answer independent of pool order.
    """
    formulas = [ops.conj(guard) for guard in guards]
    cache: Dict[Tuple[int, int], bool] = {}

    def entails(i: int, j: int) -> bool:
        """Does guard ``i`` entail guard ``j`` under the context?"""
        key = (i, j)
        if key not in cache:
            cache[key] = backend.is_valid_implication(
                list(context) + [formulas[i]], formulas[j]
            )
        return cache[key]

    kept: List[int] = []
    for i in range(len(guards)):
        strictly_dominated = any(
            entails(i, j) and not entails(j, i) for j in range(len(guards)) if j != i
        )
        if strictly_dominated:
            continue
        if any(entails(i, j) and entails(j, i) for j in kept):
            continue  # equivalent to an earlier survivor
        kept.append(i)
    return [tuple(guards[i]) for i in kept]


def _consistent(
    session: TypecheckSession, context: Sequence[Formula], subset: Sequence[Formula]
) -> bool:
    """Is the tentative condition satisfiable together with the context?"""
    premises = list(context) + list(subset)
    return not session.backend.is_valid_implication(premises, ops.bool_lit(False))
