#!/usr/bin/env python
"""Perf smoke benchmark: the service layer's batch and server paths.

Three workloads over the ``examples/`` corpus::

    PYTHONPATH=src python scripts/bench_service.py --output BENCH_service.json

- ``service.batch-cold`` — a full batch sweep into a fresh cache
  directory: every query computed, every result persisted.
- ``service.batch-warm`` — the same sweep against the cache the cold
  runs populated: every query answered content-addressed, no solver.
  The runner asserts the warm sweep hits on every file **and** runs at
  least 5x faster than the slowest cold sweep — the service's headline
  guarantee, enforced on every CI run, not just eyeballed once.
- ``service.server-check`` — one HTTP round-trip of a cached ``check``
  against a live :class:`repro.service.server.ReproServer`: what a
  client pays when the answer is already known.

Cache hit/miss counters ride along as the deterministic fingerprint
(``check_bench_regression.py`` reports drift); CI gates the timings
against the committed ``BENCH_service.json`` baseline like the other
four suites.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import threading
import time
from http.client import HTTPConnection
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import benchlib  # noqa: E402

from repro.service.batch import run_batch  # noqa: E402
from repro.service.cache import open_cache  # noqa: E402
from repro.service.server import ReproServer  # noqa: E402

EXAMPLES = str(ROOT / "examples")

#: Wall-clock of every cold sweep, consumed by the warm runner's speedup
#: assertion (insertion order in BENCHMARKS runs cold before warm).
_cold_timings = []

#: The cache directory the cold runs populate and the warm runs reuse.
_warm_dir = None


def _batch_counters(report: dict) -> dict:
    counters = {
        "files": len(report["files"]),
        "queries": report["queries"],
        "failures": report["failures"],
    }
    if report["cache"] is not None:
        counters["cache_hits"] = report["cache"]["hits"]
        counters["cache_misses"] = report["cache"]["misses"]
    return counters


def run_batch_cold():
    global _warm_dir
    if _warm_dir is None:
        _warm_dir = tempfile.mkdtemp(prefix="bench-service-")
    scratch = tempfile.mkdtemp(prefix="bench-service-cold-")
    try:
        # Populate the shared warm dir on the side (first cold run only);
        # the *timed* sweep always writes a fresh directory.
        if not any(Path(_warm_dir).iterdir()):
            warm_cache, warm_store = open_cache(_warm_dir)
            run_batch(EXAMPLES, cache=warm_cache, lemma_store=warm_store)
        cache, store = open_cache(scratch)
        start = time.perf_counter()
        report = run_batch(EXAMPLES, cache=cache, lemma_store=store)
        elapsed = time.perf_counter() - start
        assert report["failures"] == 0, "examples corpus changed verdict"
        assert report["cache"]["hits"] == 0, "cold sweep hit a fresh cache?"
        _cold_timings.append(elapsed)
        return elapsed, _batch_counters(report)
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def run_batch_warm():
    assert _warm_dir is not None and _cold_timings, "cold runs first"
    cache, store = open_cache(_warm_dir)
    start = time.perf_counter()
    report = run_batch(EXAMPLES, cache=cache, lemma_store=store)
    elapsed = time.perf_counter() - start
    assert report["failures"] == 0, "examples corpus changed verdict"
    assert report["cached"] == report["queries"] > 0, "warm sweep missed the cache"
    # The service's headline guarantee: a warm sweep is at least 5x
    # faster than even the *slowest* cold sweep.
    slowest_cold = max(_cold_timings)
    assert elapsed * 5 <= slowest_cold, (
        f"warm sweep {elapsed:.3f}s not 5x faster than cold {slowest_cold:.3f}s"
    )
    return elapsed, _batch_counters(report)


def run_server_check():
    source = (ROOT / "examples" / "list.sq").read_text()
    body = json.dumps({"program": source}).encode()
    scratch = tempfile.mkdtemp(prefix="bench-service-http-")
    cache, store = open_cache(scratch)
    server = ReproServer("127.0.0.1", 0, cache, store)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:

        def post() -> dict:
            conn = HTTPConnection("127.0.0.1", server.server_port)
            conn.request("POST", "/check", body, {"Content-Type": "application/json"})
            response = conn.getresponse()
            answer = json.loads(response.read())
            conn.close()
            assert response.status == 200, answer
            return answer

        post()  # prewarm: the timed round-trip measures a cache hit
        start = time.perf_counter()
        answer = post()
        elapsed = time.perf_counter() - start
        assert answer["cached"], "second request missed the warm cache"
        return elapsed, {"cached": 1, "failures": answer["result"]["failures"]}
    finally:
        server.shutdown()
        server.server_close()
        shutil.rmtree(scratch, ignore_errors=True)


BENCHMARKS = {
    "service.batch-cold": run_batch_cold,
    "service.batch-warm": run_batch_warm,
    "service.server-check": run_server_check,
}


def main() -> int:
    return benchlib.run_suite("service-perf-smoke", BENCHMARKS, "BENCH_service.json", 3, __doc__)


if __name__ == "__main__":
    raise SystemExit(main())
