"""Refinement terms (formulas) of the specification logic.

This is the language of refinement predicates ``psi`` from Fig. 2 of the
paper: boolean connectives, linear integer arithmetic, finite sets, and
uninterpreted (measure) applications.  The distinguished *value variable*
``nu`` is an ordinary :class:`Var` named ``_v``.

Formulas are immutable; structural equality and hashing are used pervasively
(assignments, caches, qualifier sets), so ``==`` is structural — use
:func:`repro.logic.ops.eq` to build an equality *formula*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from .sorts import BOOL, INT, BoolSort, IntSort, SetSort, Sort, VarSort

#: Conventional name of the value variable nu.
VALUE_VAR = "_v"


class UnaryOp(enum.Enum):
    """Unary connectives and arithmetic."""

    NOT = "!"
    NEG = "-"


class BinaryOp(enum.Enum):
    """Binary interpreted symbols of the refinement logic."""

    # arithmetic (Int, Int) -> Int
    PLUS = "+"
    MINUS = "-"
    TIMES = "*"
    # comparisons (Int, Int) -> Bool
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    # polymorphic equality (a, a) -> Bool
    EQ = "=="
    NEQ = "!="
    # boolean connectives
    AND = "&&"
    OR = "||"
    IMPLIES = "==>"
    IFF = "<==>"
    # set operations (Set a, Set a) -> Set a
    UNION = "+s"
    INTERSECT = "*s"
    DIFF = "-s"
    # set predicates
    MEMBER = "in"        # (a, Set a) -> Bool
    SUBSET = "<=s"       # (Set a, Set a) -> Bool


ARITH_OPS = {BinaryOp.PLUS, BinaryOp.MINUS, BinaryOp.TIMES}
COMPARISON_OPS = {BinaryOp.LT, BinaryOp.LE, BinaryOp.GT, BinaryOp.GE}
EQUALITY_OPS = {BinaryOp.EQ, BinaryOp.NEQ}
BOOLEAN_OPS = {BinaryOp.AND, BinaryOp.OR, BinaryOp.IMPLIES, BinaryOp.IFF}
SET_OPS = {BinaryOp.UNION, BinaryOp.INTERSECT, BinaryOp.DIFF}
SET_PREDICATES = {BinaryOp.MEMBER, BinaryOp.SUBSET}


class Formula:
    """Base class of refinement terms."""

    @property
    def sort(self) -> Sort:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from .pretty import pretty_formula

        return pretty_formula(self)


@dataclass(frozen=True)
class BoolLit(Formula):
    """``True`` or ``False``."""

    value: bool

    @property
    def sort(self) -> Sort:
        return BOOL


@dataclass(frozen=True)
class IntLit(Formula):
    """An integer constant."""

    value: int

    @property
    def sort(self) -> Sort:
        return INT


@dataclass(frozen=True)
class Var(Formula):
    """A logical variable (a program variable or the value variable)."""

    name: str
    var_sort: Sort

    @property
    def sort(self) -> Sort:
        return self.var_sort


@dataclass(frozen=True)
class Unknown(Formula):
    """A predicate unknown ``P_i`` whose valuation is a liquid formula,
    discovered by the Horn solver.  ``substitution`` is a pending renaming
    applied when the unknown is instantiated (kept as a tuple of pairs so the
    node stays hashable)."""

    name: str
    substitution: Tuple[Tuple[str, "Formula"], ...] = ()

    @property
    def sort(self) -> Sort:
        return BOOL


@dataclass(frozen=True)
class Unary(Formula):
    """Application of a unary interpreted symbol."""

    op: UnaryOp
    arg: Formula

    @property
    def sort(self) -> Sort:
        return BOOL if self.op is UnaryOp.NOT else INT


@dataclass(frozen=True)
class Binary(Formula):
    """Application of a binary interpreted symbol."""

    op: BinaryOp
    lhs: Formula
    rhs: Formula

    @property
    def sort(self) -> Sort:
        if self.op in ARITH_OPS:
            return INT
        if self.op in SET_OPS:
            return self.lhs.sort
        return BOOL


@dataclass(frozen=True)
class Ite(Formula):
    """``if cond then then_ else else_`` at the level of refinement terms."""

    cond: Formula
    then_: Formula
    else_: Formula

    @property
    def sort(self) -> Sort:
        return self.then_.sort


@dataclass(frozen=True)
class App(Formula):
    """Application of an uninterpreted function (a *measure* such as ``len``
    or ``elems``) to argument terms."""

    func: str
    args: Tuple[Formula, ...]
    result_sort: Sort

    @property
    def sort(self) -> Sort:
        return self.result_sort


@dataclass(frozen=True)
class SetLit(Formula):
    """A finite set literal ``[e1, ..., ek]``; the empty set is ``SetLit(s, ())``."""

    element_sort: Sort
    elements: Tuple[Formula, ...] = ()

    @property
    def sort(self) -> Sort:
        return SetSort(self.element_sort)


TRUE = BoolLit(True)
FALSE = BoolLit(False)


def is_true(formula: Formula) -> bool:
    """Is ``formula`` the literal ``True``?"""
    return isinstance(formula, BoolLit) and formula.value


def is_false(formula: Formula) -> bool:
    """Is ``formula`` the literal ``False``?"""
    return isinstance(formula, BoolLit) and not formula.value


def value_var(sort: Sort) -> Var:
    """The value variable ``nu`` at the given sort."""
    return Var(VALUE_VAR, sort)
