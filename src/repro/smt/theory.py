"""Theory solving for the combined EUF + LIA theory (the "T" in DPLL(T)).

Two solvers live here, sharing one literal translation (congruence closure
for equality with uninterpreted functions, linear arithmetic for
comparisons, a pragmatic one-directional Nelson–Oppen EUF -> LIA equality
propagation):

* :class:`IncrementalTheory` — the primary, *stateful* solver driving the
  DPLL(T) loop.  Literals are asserted one at a time between ``push`` /
  ``pop`` marks; a persistent :class:`~repro.smt.euf.TermBank` interns
  terms once for the solver's lifetime, the congruence closure un-merges
  through an undo trail, and the :class:`~repro.smt.lia.Simplex` tableau
  keeps its rows and feasible basis across checks (bounds are added and
  retracted instead of the tableau being rebuilt).  Conflicts come back as
  *explanations* — the subset of asserted literals responsible — and the
  solver can *propagate*: report watched atoms whose truth value is
  already entailed by the asserted bounds or the congruence closure.

* :class:`TheoryChecker` — the stateless fallback for non-incremental
  backends and for conflict minimization probes.  Each call rebuilds a
  fresh term bank and runs the one-shot Fourier–Motzkin
  :class:`~repro.smt.lia.LiaSolver`; answers are memoized per literal
  *set* in a bounded LRU (consistency is order-insensitive).

Propagation between the theories is one-directional (EUF -> LIA).  Missing
the reverse direction can only make the checkers *fail to detect* a
conflict, i.e. report "consistent" too often; as discussed in
``repro.smt.lia`` this keeps refinement-type checking sound (it can only
reject more programs).  Both solvers decide the same theory, which the
differential property suite (``tests/test_theory_incremental.py``)
enforces on random assert/push/pop sequences.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import limits
from ..testing import faults

from ..logic.formulas import (
    COMPARISON_OPS,
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    IntLit,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Var,
)
from ..logic.sorts import BOOL, IntSort
from . import lia
from .euf import CongruenceClosure, TermBank
from .lia import DERIVED, Constraint, LiaSolver, LinearExpr, Relation, Simplex


@dataclass(frozen=True)
class Literal:
    """A theory literal: an atom together with its asserted polarity."""

    atom: Formula
    polarity: bool


class TheoryConflict(Exception):
    """Raised internally when a conflict is found while asserting literals."""


def _negated_comparison(op: BinaryOp) -> BinaryOp:
    return {
        BinaryOp.LT: BinaryOp.GE,
        BinaryOp.LE: BinaryOp.GT,
        BinaryOp.GT: BinaryOp.LE,
        BinaryOp.GE: BinaryOp.LT,
    }[op]


def _comparison_constraint(
    op: BinaryOp, lhs: LinearExpr, rhs: LinearExpr, polarity: bool
) -> Constraint:
    """Translate a (possibly negated) integer comparison."""
    if not polarity:
        op = _negated_comparison(op)
    if op is BinaryOp.LE:
        return lia.le(lhs, rhs)
    if op is BinaryOp.LT:
        return lia.lt(lhs, rhs)
    if op is BinaryOp.GE:
        return lia.le(rhs, lhs)
    return lia.lt(rhs, lhs)


class TheoryChecker:
    """Checks consistency of a conjunction of theory literals, statelessly.

    Answers are memoized per literal *set* in a bounded LRU (hits move the
    entry to the young end, the oldest entry is evicted past
    :attr:`MAX_CACHE`): consistency is order-insensitive and each call is
    independent, so the conflict minimization probes — which test many
    overlapping subsets of the same assignment, often across queries
    sharing their atoms — pay for each distinct subset once.  This is the
    fallback path; incremental backends drive :class:`IncrementalTheory`.
    """

    #: Bound on the memo; the oldest (least recently used) entry is evicted.
    MAX_CACHE = 65536

    def __init__(self) -> None:
        self._lia = LiaSolver()
        self._cache: "OrderedDict[frozenset, bool]" = OrderedDict()

    def is_consistent(self, literals: Sequence[Literal]) -> bool:
        """Is the conjunction of the given literals satisfiable?"""
        key = frozenset(literals)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        try:
            result = self._check(literals)
        except TheoryConflict:
            result = False
        self._cache[key] = result
        if len(self._cache) > self.MAX_CACHE:
            self._cache.popitem(last=False)
        return result

    # -- internals ---------------------------------------------------------

    def _check(self, literals: Sequence[Literal]) -> bool:
        bank = TermBank()
        closure = CongruenceClosure(bank)
        true_id = bank.constant("__true")
        false_id = bank.constant("__false")
        closure.assert_distinct(true_id, false_id)

        term_ids: Dict[Formula, int] = {}
        int_terms: Dict[int, Formula] = {}
        constraints: List[Constraint] = []

        def intern(term: Formula) -> int:
            """Intern a formula term for congruence closure purposes."""
            if term in term_ids:
                return term_ids[term]
            if isinstance(term, Var):
                term_id = bank.constant(f"var:{term.name}")
            elif isinstance(term, IntLit):
                term_id = bank.constant(f"int:{term.value}")
            elif isinstance(term, BoolLit):
                term_id = true_id if term.value else false_id
            elif isinstance(term, App):
                term_id = bank.apply(term.func, [intern(arg) for arg in term.args])
            elif isinstance(term, Unary):
                term_id = bank.apply(f"unary:{term.op.value}", [intern(term.arg)])
            elif isinstance(term, Binary):
                term_id = bank.apply(
                    f"binary:{term.op.value}", [intern(term.lhs), intern(term.rhs)]
                )
            elif isinstance(term, Ite):
                term_id = bank.apply(
                    "ite",
                    [intern(term.cond), intern(term.then_), intern(term.else_)],
                )
            elif isinstance(term, SetLit):
                term_id = bank.apply("setlit", [intern(element) for element in term.elements])
            else:
                term_id = bank.constant(f"opaque:{term!r}")
            term_ids[term] = term_id
            if isinstance(term.sort, IntSort):
                int_terms.setdefault(term_id, term)
            return term_id

        def atom_variable(term: Formula) -> str:
            """Arithmetic variable standing for a non-arithmetic integer term."""
            term_id = intern(term)
            int_terms.setdefault(term_id, term)
            return f"t{term_id}"

        def to_linear(term: Formula) -> LinearExpr:
            """Translate an integer-sorted term into a linear expression."""
            if isinstance(term, IntLit):
                return LinearExpr.constant_expr(term.value)
            if isinstance(term, Unary) and term.op is UnaryOp.NEG:
                return to_linear(term.arg).scale(Fraction(-1))
            if isinstance(term, Binary):
                if term.op is BinaryOp.PLUS:
                    return to_linear(term.lhs).add(to_linear(term.rhs))
                if term.op is BinaryOp.MINUS:
                    return to_linear(term.lhs).subtract(to_linear(term.rhs))
                if term.op is BinaryOp.TIMES:
                    if isinstance(term.lhs, IntLit):
                        return to_linear(term.rhs).scale(Fraction(term.lhs.value))
                    if isinstance(term.rhs, IntLit):
                        return to_linear(term.lhs).scale(Fraction(term.rhs.value))
                    # Non-linear product: treat the whole product as opaque.
                    return LinearExpr.variable(atom_variable(term))
            return LinearExpr.variable(atom_variable(term))

        # -- assert each literal -------------------------------------------
        for literal in literals:
            atom, polarity = literal.atom, literal.polarity
            if isinstance(atom, BoolLit):
                if atom.value != polarity:
                    raise TheoryConflict()
                continue
            if isinstance(atom, (Var, App)) and atom.sort == BOOL:
                closure.assert_equal(intern(atom), true_id if polarity else false_id)
                continue
            if isinstance(atom, Binary) and atom.op in COMPARISON_OPS:
                lhs, rhs = to_linear(atom.lhs), to_linear(atom.rhs)
                constraints.append(_comparison_constraint(atom.op, lhs, rhs, polarity))
                continue
            if isinstance(atom, Binary) and atom.op in (BinaryOp.EQ, BinaryOp.NEQ):
                is_equality = (atom.op is BinaryOp.EQ) == polarity
                lhs_id, rhs_id = intern(atom.lhs), intern(atom.rhs)
                if is_equality:
                    closure.assert_equal(lhs_id, rhs_id)
                else:
                    closure.assert_distinct(lhs_id, rhs_id)
                if isinstance(atom.lhs.sort, IntSort):
                    lhs, rhs = to_linear(atom.lhs), to_linear(atom.rhs)
                    relation = Relation.EQ if is_equality else Relation.NEQ
                    constraints.append(Constraint(lhs.subtract(rhs), relation))
                continue
            # Anything else (set atoms that escaped the encoder, etc.) is
            # treated as unconstrained — the safe, conservative answer.
            continue

        if not closure.is_consistent():
            return False

        # -- propagate entailed equalities between integer terms ------------
        tracked = sorted(int_terms)
        for class_root, members in closure.classes().items():
            class_members = [t for t in tracked if t in members]
            for first, second in zip(class_members, class_members[1:]):
                lhs = self._term_expr(int_terms[first], first)
                rhs = self._term_expr(int_terms[second], second)
                constraints.append(Constraint(lhs.subtract(rhs), Relation.EQ))

        return self._lia.is_feasible(constraints)

    @staticmethod
    def _term_expr(term: Formula, term_id: int) -> LinearExpr:
        """Linear expression for a tracked integer term."""
        if isinstance(term, IntLit):
            return LinearExpr.constant_expr(term.value)
        return LinearExpr.variable(f"t{term_id}")

    @staticmethod
    def _comparison(op: BinaryOp, lhs: LinearExpr, rhs: LinearExpr, polarity: bool) -> Constraint:
        """Translate a (possibly negated) integer comparison."""
        return _comparison_constraint(op, lhs, rhs, polarity)


# ---------------------------------------------------------------------------
# the incremental theory
# ---------------------------------------------------------------------------


#: A theory conflict: the responsible literals plus whether they are an
#: *explanation* (a near-minimal subset) or just the full asserted set.
Conflict = Tuple[List[Literal], bool]


class _Frame:
    """Undo information for one :meth:`IncrementalTheory.push` level."""

    __slots__ = ("closure_mark", "simplex_mark", "asserted", "closure_lits", "refs", "links")

    def __init__(self, closure_mark, simplex_mark, asserted: int, closure_lits: int) -> None:
        self.closure_mark = closure_mark
        self.simplex_mark = simplex_mark
        self.asserted = asserted
        self.closure_lits = closure_lits
        #: (is_app, term_id) liveness increments made at this level
        self.refs: List[Tuple[bool, int]] = []
        #: Nelson–Oppen chain links asserted at this level
        self.links: List[Tuple[int, int]] = []


class IncrementalTheory:
    """Persistent, backtrackable solver for the combined EUF + LIA theory.

    Mirrors :meth:`TheoryChecker._check` literal for literal, but keeps all
    of its state — term bank, congruence closure, simplex tableau — alive
    across checks.  ``push`` snapshots the undo trails; ``pop`` retracts
    everything asserted since the matching push.  Consistency of the
    current assertion stack is (re-)established by :meth:`check`, which
    resumes from the previous feasible simplex basis and only re-closes
    congruence over the *live* applications (those referenced by currently
    asserted literals; the bank's dead terms are never scanned).
    """

    def __init__(self) -> None:
        self.bank = TermBank()
        self.closure = CongruenceClosure(self.bank)
        self._true = self.bank.constant("__true")
        self._false = self.bank.constant("__false")
        self.closure.assert_distinct(self._true, self._false)
        self.simplex = Simplex()
        self._term_ids: Dict[Formula, int] = {}
        #: term id -> (app ids, int-sorted ids) of the term's whole subtree
        self._term_refs: Dict[Formula, Tuple[Tuple[int, ...], Tuple[int, ...]]] = {}
        self._int_terms: Dict[int, Formula] = {}
        #: live reference counts (asserted-literal occurrences)
        self._app_refs: Dict[int, int] = {}
        self._int_refs: Dict[int, int] = {}
        self._asserted: List[Literal] = []
        #: (atom, polarity) -> (simplex constraint, linear leaf terms) —
        #: translation of an arithmetic atom is scope-independent, so
        #: re-asserting after a backjump replays refcounts without
        #: rebuilding the linear expressions
        self._constraint_cache: Dict[
            Tuple[Formula, bool], Tuple[Constraint, Tuple[Formula, ...]]
        ] = {}
        #: bumped whenever a term's liveness flips (refcount 0 <-> 1)
        self._refs_version = 0
        #: asserted literals that touched the congruence closure, in order
        self._closure_lits: List[Literal] = []
        #: Nelson–Oppen equality links currently asserted into the simplex
        self._linked: Set[Tuple[int, int]] = set()
        self._frames: List[_Frame] = []
        self._base = _Frame(self.closure.mark(), self.simplex.mark(), 0, 0)
        #: sticky assert-time conflicts: (scope depth at failure, conflict).
        #: A rejected bound is never applied, so the infeasibility would be
        #: invisible to later checks; the marker keeps the verdict until the
        #: failing scope is popped.
        self._failed: List[Tuple[int, Conflict]] = []
        #: propagation watches: payload -> (cmp record, euf record)
        self._watches: Dict[object, Tuple[Optional[Tuple], Optional[Tuple]]] = {}
        #: closure state the last check closed over: (closure version,
        #: liveness version, live Nelson–Oppen link count) — matching state
        #: means the congruence/N-O half of check() can be skipped (nothing
        #: that feeds it has moved)
        self._closed_state: Optional[Tuple[int, int, int]] = None
        #: number of batch checks performed (for the statistics mirror)
        self.checks = 0

    # -- scope management ----------------------------------------------------

    def push(self) -> None:
        """Open an undo scope (one per asserted SAT trail literal)."""
        self._frames.append(
            _Frame(
                self.closure.mark(),
                self.simplex.mark(),
                len(self._asserted),
                len(self._closure_lits),
            )
        )

    def pop(self) -> None:
        """Retract everything asserted since the matching :meth:`push`."""
        frame = self._frames.pop()
        self.closure.undo_to(frame.closure_mark)
        self.simplex.undo_to(frame.simplex_mark)
        del self._asserted[frame.asserted:]
        del self._closure_lits[frame.closure_lits:]
        for is_app, term_id in frame.refs:
            refs = self._app_refs if is_app else self._int_refs
            remaining = refs[term_id] - 1
            if remaining:
                refs[term_id] = remaining
            else:
                del refs[term_id]
                self._refs_version += 1
        for link in frame.links:
            self._linked.discard(link)
        depth = len(self._frames)
        while self._failed and self._failed[-1][0] > depth:
            self._failed.pop()

    @property
    def depth(self) -> int:
        """Number of open push scopes."""
        return len(self._frames)

    def asserted_literals(self) -> List[Literal]:
        """The currently asserted literals, oldest first."""
        return list(self._asserted)

    # -- term translation ----------------------------------------------------

    def _translate(self, term: Formula) -> int:
        """Intern a formula term (persistently memoized), recording its
        subtree's application and integer term ids for liveness tracking."""
        cached = self._term_ids.get(term)
        if cached is not None:
            return cached
        apps: Tuple[int, ...] = ()
        if isinstance(term, Var):
            term_id = self.bank.constant(f"var:{term.name}")
            ints: Tuple[int, ...] = ()
        elif isinstance(term, IntLit):
            term_id = self.bank.constant(f"int:{term.value}")
            ints = ()
        elif isinstance(term, BoolLit):
            term_id = self._true if term.value else self._false
            ints = ()
        elif isinstance(term, App):
            children = [self._translate(arg) for arg in term.args]
            term_id = self.bank.apply(term.func, children)
            apps, ints = self._merge_refs(term.args)
            apps += (term_id,)
        elif isinstance(term, Unary):
            child = self._translate(term.arg)
            term_id = self.bank.apply(f"unary:{term.op.value}", [child])
            apps, ints = self._merge_refs((term.arg,))
            apps += (term_id,)
        elif isinstance(term, Binary):
            children = [self._translate(term.lhs), self._translate(term.rhs)]
            term_id = self.bank.apply(f"binary:{term.op.value}", children)
            apps, ints = self._merge_refs((term.lhs, term.rhs))
            apps += (term_id,)
        elif isinstance(term, Ite):
            children = [
                self._translate(term.cond),
                self._translate(term.then_),
                self._translate(term.else_),
            ]
            term_id = self.bank.apply("ite", children)
            apps, ints = self._merge_refs((term.cond, term.then_, term.else_))
            apps += (term_id,)
        elif isinstance(term, SetLit):
            children = [self._translate(element) for element in term.elements]
            term_id = self.bank.apply("setlit", children)
            apps, ints = self._merge_refs(term.elements)
            apps += (term_id,)
        else:
            term_id = self.bank.constant(f"opaque:{term!r}")
            ints = ()
        if isinstance(term.sort, IntSort):
            self._int_terms.setdefault(term_id, term)
            ints += (term_id,)
        self._term_ids[term] = term_id
        self._term_refs[term] = (apps, ints)
        return term_id

    def _merge_refs(
        self, children: Iterable[Formula]
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        apps: Tuple[int, ...] = ()
        ints: Tuple[int, ...] = ()
        for child in children:
            child_apps, child_ints = self._term_refs[child]
            apps += child_apps
            ints += child_ints
        return apps, ints

    def _touch(self, term: Formula) -> int:
        """Translate ``term`` and count its whole subtree as live at the
        current scope (mirroring the stateless checker, which re-interns
        the subtree on every call)."""
        term_id = self._translate(term)
        apps, ints = self._term_refs[term]
        frame = self._frames[-1] if self._frames else self._base
        refs = frame.refs
        app_refs = self._app_refs
        int_refs = self._int_refs
        for app in apps:
            count = app_refs.get(app, 0)
            if not count:
                self._refs_version += 1
            app_refs[app] = count + 1
            refs.append((True, app))
        for integer in ints:
            count = int_refs.get(integer, 0)
            if not count:
                self._refs_version += 1
            int_refs[integer] = count + 1
            refs.append((False, integer))
        return term_id

    def _to_linear(
        self, term: Formula, leaves: Optional[List[Formula]]
    ) -> LinearExpr:
        """Translate an integer-sorted term into a linear expression.

        When ``leaves`` is given, the opaque (non-arithmetic) leaf terms
        are collected into it instead of being reference-counted here —
        the caller replays :meth:`_touch_linear_leaf` on them per assert,
        which is what makes the translation cacheable.
        """
        if isinstance(term, IntLit):
            return LinearExpr.constant_expr(term.value)
        if isinstance(term, Unary) and term.op is UnaryOp.NEG:
            return self._to_linear(term.arg, leaves).scale(Fraction(-1))
        if isinstance(term, Binary):
            if term.op is BinaryOp.PLUS:
                return self._to_linear(term.lhs, leaves).add(
                    self._to_linear(term.rhs, leaves)
                )
            if term.op is BinaryOp.MINUS:
                return self._to_linear(term.lhs, leaves).subtract(
                    self._to_linear(term.rhs, leaves)
                )
            if term.op is BinaryOp.TIMES:
                if isinstance(term.lhs, IntLit):
                    return self._to_linear(term.rhs, leaves).scale(
                        Fraction(term.lhs.value)
                    )
                if isinstance(term.rhs, IntLit):
                    return self._to_linear(term.lhs, leaves).scale(
                        Fraction(term.rhs.value)
                    )
        term_id = self._translate(term)
        self._int_terms.setdefault(term_id, term)
        if leaves is not None:
            leaves.append(term)
        return LinearExpr.variable(f"t{term_id}")

    def _touch_linear_leaf(self, term: Formula) -> None:
        """Count one opaque arithmetic leaf as live at the current scope.

        The leaf stands for itself in the arithmetic; it is counted as a
        live integer term even when its sort tracking missed it.
        """
        term_id = self._touch(term)
        if not isinstance(term.sort, IntSort):
            count = self._int_refs.get(term_id, 0)
            if not count:
                self._refs_version += 1
            self._int_refs[term_id] = count + 1
            frame = self._frames[-1] if self._frames else self._base
            frame.refs.append((False, term_id))

    def _linear_constraint(self, atom: Formula, polarity: bool) -> Constraint:
        """The simplex constraint for an arithmetic atom under a polarity,
        cached per (atom, polarity) — only the leaf refcount replay is
        per-assert work."""
        key = (atom, polarity)
        cached = self._constraint_cache.get(key)
        if cached is None:
            leaves: List[Formula] = []
            lhs = self._to_linear(atom.lhs, leaves)
            rhs = self._to_linear(atom.rhs, leaves)
            if atom.op in COMPARISON_OPS:
                constraint = _comparison_constraint(atom.op, lhs, rhs, polarity)
            else:
                is_equality = (atom.op is BinaryOp.EQ) == polarity
                relation = Relation.EQ if is_equality else Relation.NEQ
                constraint = Constraint(lhs.subtract(rhs), relation)
            cached = (constraint, tuple(leaves))
            self._constraint_cache[key] = cached
        constraint, leaves = cached
        for leaf in leaves:
            self._touch_linear_leaf(leaf)
        return constraint

    # -- assertion -----------------------------------------------------------

    def assert_literal(self, literal: Literal) -> Optional[Conflict]:
        """Assert one literal; returns a conflict when it is immediately
        inconsistent (full consistency is decided by :meth:`check`)."""
        self._asserted.append(literal)
        atom, polarity = literal.atom, literal.polarity
        if isinstance(atom, BoolLit):
            if atom.value != polarity:
                return self._fail(([literal], True))
            return None
        if isinstance(atom, (Var, App)) and atom.sort == BOOL:
            self.closure.assert_equal(
                self._touch(atom), self._true if polarity else self._false
            )
            self._closure_lits.append(literal)
            return None
        if isinstance(atom, Binary) and atom.op in COMPARISON_OPS:
            constraint = self._linear_constraint(atom, polarity)
            return self._assert_constraint(constraint, literal)
        if isinstance(atom, Binary) and atom.op in (BinaryOp.EQ, BinaryOp.NEQ):
            is_equality = (atom.op is BinaryOp.EQ) == polarity
            lhs_id, rhs_id = self._touch(atom.lhs), self._touch(atom.rhs)
            if is_equality:
                self.closure.assert_equal(lhs_id, rhs_id)
            else:
                self.closure.assert_distinct(lhs_id, rhs_id)
            self._closure_lits.append(literal)
            if isinstance(atom.lhs.sort, IntSort):
                return self._assert_constraint(
                    self._linear_constraint(atom, polarity), literal
                )
            return None
        # Anything else (set atoms that escaped the encoder, etc.) is
        # treated as unconstrained — the safe, conservative answer.
        return None

    def _assert_constraint(self, constraint: Constraint, tag: object) -> Optional[Conflict]:
        conflict = self.simplex.assert_constraint(constraint, tag)
        if conflict is None:
            return None
        return self._fail(self._explain(conflict))

    def _fail(self, conflict: Conflict) -> Conflict:
        self._failed.append((len(self._frames), conflict))
        return conflict

    def _explain(self, tags: List[object]) -> Conflict:
        """Map simplex tags back to literals; conflicts involving derived
        (Nelson–Oppen) bounds fall back to the full asserted set."""
        literals: List[Literal] = []
        seen: Set[Literal] = set()
        for tag in tags:
            if tag is DERIVED:
                return (list(self._asserted), False)
            if tag not in seen:
                seen.add(tag)
                literals.append(tag)
        return (literals, True)

    # -- consistency ---------------------------------------------------------

    def check(self) -> Optional[Conflict]:
        """Re-establish consistency of the asserted stack; returns ``None``
        when consistent, else a conflict.

        Both halves are change-driven: the congruence rebuild and the
        Nelson–Oppen scan run only when the closure, the live application
        set, or the link set moved since the last check, and the simplex
        skips repair when no bound changed (its own dirty flag).
        """
        self.checks += 1
        if faults.maybe_fire("theory.raise"):
            raise faults.FaultInjected("theory.raise: injected theory-check failure")
        # Wall-clock cancellation point before the (change-driven, but
        # potentially large) congruence rebuild; the simplex repair has its
        # own per-pivot checkpoint.
        limits.checkpoint()
        if self._failed:
            return self._failed[-1][1]
        state = (self.closure.version, self._refs_version, len(self._linked))
        if state != self._closed_state:
            self.closure.close_over(list(self._app_refs))
            if self.closure.inconsistent_disequality() is not None:
                return (list(self._asserted), False)
            conflict = self._propagate_equalities()
            if conflict is not None:
                return conflict
            # close_over and link assertion bump the version; record the
            # settled state so an unchanged prefix skips this block.
            self._closed_state = (
                self.closure.version, self._refs_version, len(self._linked)
            )
        tags = self.simplex.check()
        if tags is None:
            return None
        return self._explain(tags)

    def _propagate_equalities(self) -> Optional[Conflict]:
        """Nelson–Oppen step: chain live integer terms the closure proves
        equal into the simplex (each link asserted once per scope)."""
        find = self.closure._find
        groups: Dict[int, List[int]] = {}
        for term_id in sorted(self._int_refs):
            groups.setdefault(find(term_id), []).append(term_id)
        frame = self._frames[-1] if self._frames else self._base
        for members in groups.values():
            for first, second in zip(members, members[1:]):
                link = (first, second)
                if link in self._linked:
                    continue
                lhs = TheoryChecker._term_expr(self._int_terms[first], first)
                rhs = TheoryChecker._term_expr(self._int_terms[second], second)
                conflict = self.simplex.assert_constraint(
                    Constraint(lhs.subtract(rhs), Relation.EQ), DERIVED
                )
                if conflict is not None:
                    # Not recorded as linked: the bound was rejected, so the
                    # next check must re-derive (and re-detect) it.
                    return self._explain(conflict)
                self._linked.add(link)
                frame.links.append(link)
        return None

    # -- propagation ---------------------------------------------------------

    def watch_atom(self, atom: Formula, payload: object) -> None:
        """Register an interned atom so :meth:`propagate` can report its
        entailed truth value.  Watching asserts nothing (terms are interned
        but not counted live)."""
        cmp_record = None
        euf_record = None
        if isinstance(atom, Binary) and atom.op in COMPARISON_OPS:
            positive = _comparison_constraint(
                atom.op,
                self._to_linear(atom.lhs, None),
                self._to_linear(atom.rhs, None),
                True,
            )
            negative = _comparison_constraint(
                atom.op,
                self._to_linear(atom.lhs, None),
                self._to_linear(atom.rhs, None),
                False,
            )
            cmp_record = (self.simplex.bound_form(positive), self.simplex.bound_form(negative))
        elif isinstance(atom, Binary) and atom.op in (BinaryOp.EQ, BinaryOp.NEQ):
            lhs_id, rhs_id = self._translate(atom.lhs), self._translate(atom.rhs)
            euf_record = (lhs_id, rhs_id, atom.op is BinaryOp.EQ)
            if isinstance(atom.lhs.sort, IntSort):
                expr = self._to_linear(atom.lhs, None).subtract(
                    self._to_linear(atom.rhs, None)
                )
                equality = Constraint(expr, Relation.EQ)
                form = self.simplex.bound_form(equality)
                if form is not None:
                    # For == atoms the positive side is the eq form; for !=
                    # atoms the polarity is flipped at propagation time.
                    cmp_record = ((form if atom.op is BinaryOp.EQ else None),
                                  (form if atom.op is BinaryOp.NEQ else None))
        if cmp_record is not None or euf_record is not None:
            self._watches[payload] = (cmp_record, euf_record)

    def is_watched(self, payload: object) -> bool:
        """Has an atom been registered under this payload?"""
        return payload in self._watches

    def propagate(
        self, payloads: Iterable[object]
    ) -> List[Tuple[object, bool, List[Literal]]]:
        """Truth values entailed for the watched atoms of ``payloads`` by
        the current assertions, with reason literals.

        Must be called after a successful :meth:`check` (the congruence
        closure is queried without re-closing).  LIA entailments come from
        the directly asserted bounds (single-literal reasons); EUF
        entailments from the closure (reasons are the closure-touching
        literals).
        """
        implied: List[Tuple[object, bool, List[Literal]]] = []
        lower = self.simplex._lower
        upper = self.simplex._upper
        find = self.closure._find
        for payload in payloads:
            record = self._watches.get(payload)
            if record is None:
                continue
            cmp_record, euf_record = record
            if cmp_record is not None:
                positive, negative = cmp_record
                outcome = None
                if positive is not None:
                    outcome = self._bound_refutation(positive, lower, upper)
                    if outcome is not None:
                        implied.append((payload, False, outcome))
                        continue
                    outcome = self._bound_entailment(positive, lower, upper)
                    if outcome is not None:
                        implied.append((payload, True, outcome))
                        continue
                if negative is not None:
                    outcome = self._bound_refutation(negative, lower, upper)
                    if outcome is not None:
                        implied.append((payload, True, outcome))
                        continue
            if euf_record is not None:
                lhs_id, rhs_id, is_equality = euf_record
                if find(lhs_id) == find(rhs_id) and self._closure_lits:
                    reasons = list(dict.fromkeys(self._closure_lits))
                    implied.append((payload, is_equality, reasons))
        return implied

    @staticmethod
    def _bound_refutation(form, lower, upper) -> Optional[List[Literal]]:
        """Reason the asserted bounds *contradict* ``var REL bound``."""
        var, kind, bound = form
        low = lower.get(var)
        high = upper.get(var)
        if kind == "ub" or kind == "eq":
            if low is not None and low[0] > bound and isinstance(low[1], Literal):
                return [low[1]]
        if kind == "lb" or kind == "eq":
            if high is not None and high[0] < bound and isinstance(high[1], Literal):
                return [high[1]]
        return None

    @staticmethod
    def _bound_entailment(form, lower, upper) -> Optional[List[Literal]]:
        """Reason the asserted bounds *entail* ``var REL bound``."""
        var, kind, bound = form
        low = lower.get(var)
        high = upper.get(var)
        if kind == "ub":
            if high is not None and high[0] <= bound and isinstance(high[1], Literal):
                return [high[1]]
        elif kind == "lb":
            if low is not None and low[0] >= bound and isinstance(low[1], Literal):
                return [low[1]]
        elif kind == "eq":
            if (
                low is not None
                and high is not None
                and low[0] == high[0] == bound
                and isinstance(low[1], Literal)
                and isinstance(high[1], Literal)
            ):
                reasons = [low[1]]
                if high[1] != low[1]:
                    reasons.append(high[1])
                return reasons
        return None
