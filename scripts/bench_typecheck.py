#!/usr/bin/env python
"""Perf smoke benchmark: the datatype workloads through the type checker.

Times the full pipeline — parse, match elaboration, fix termination
strengthening, Horn solving over the session's incremental backend — on
the paper's list benchmarks (``length``, ``append``, ``replicate``,
``stutter``) plus one rejection workload that exercises the failure path::

    PYTHONPATH=src python scripts/bench_typecheck.py --output BENCH_typecheck.json

As with ``bench_horn.py``, deterministic solver counters are recorded
next to the wall-clock numbers so a perf regression can be triaged on any
machine; CI compares the timings against the committed baseline with
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.syntax import len_measure, list_datatype, parse_term, parse_type  # noqa: E402
from repro.typecheck import EMPTY, TypecheckSession  # noqa: E402

COMPONENTS = {
    "inc": "a:Int -> {Int | nu == a + 1}",
    "dec": "a:Int -> {Int | nu == a - 1}",
    "leq": "a:Int -> b:Int -> {Bool | nu <==> a <= b}",
}

WORKLOADS = {
    "typecheck.length": (
        "fix length . \\xs . match xs with Nil -> 0 | Cons y ys -> inc (length ys)",
        "xs:List a -> {Int | nu == len(xs)}",
        True,
    ),
    "typecheck.append": (
        "fix append . \\xs . \\ys . "
        "match xs with Nil -> ys | Cons z zs -> Cons z (append zs ys)",
        "xs:List a -> ys:List a -> {List a | len(nu) == len(xs) + len(ys)}",
        True,
    ),
    "typecheck.replicate": (
        "fix replicate . \\n . \\x . if leq n 0 then Nil else Cons x (replicate (dec n) x)",
        "n:{Int | nu >= 0} -> x:a -> {List a | len(nu) == n}",
        True,
    ),
    "typecheck.stutter": (
        "fix stutter . \\xs . "
        "match xs with Nil -> Nil | Cons y ys -> Cons y (Cons y (stutter ys))",
        "xs:List a -> {List a | len(nu) == len(xs) + len(xs)}",
        True,
    ),
    "typecheck.stutter-reject": (
        "fix stutter . \\xs . match xs with Nil -> Nil | Cons y ys -> Cons y (stutter ys)",
        "xs:List a -> {List a | len(nu) == len(xs) + len(xs)}",
        False,
    ),
}


def run_workload(term_src: str, sig_src: str, expect_solved: bool):
    start = time.perf_counter()
    session = TypecheckSession(datatypes=[list_datatype()], measure_defs=[len_measure()])
    env = session.bind_constructors(EMPTY)
    for name, sig in COMPONENTS.items():
        env = env.bind(name, parse_type(sig))
    goal = parse_type(sig_src, measures=session.measures)
    session.check_program(parse_term(term_src), goal, env, where="bench")
    outcome = session.solve()
    elapsed = time.perf_counter() - start
    assert outcome.solved == expect_solved, "benchmark workload changed verdict"
    return elapsed, {
        "constraints": len(session.constraints),
        "validity_checks": session.last_solver.statistics.validity_checks,
        "sat_queries": session.backend.statistics.sat_queries,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default="BENCH_typecheck.json", help="report path")
    parser.add_argument("--repeat", type=int, default=5, help="runs per benchmark")
    args = parser.parse_args()

    report = {
        "suite": "typecheck-perf-smoke",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "repeat": args.repeat,
        "benchmarks": [],
    }
    for name, (term_src, sig_src, expect_solved) in WORKLOADS.items():
        timings = []
        counters = {}
        for _ in range(args.repeat):
            elapsed, counters = run_workload(term_src, sig_src, expect_solved)
            timings.append(elapsed)
        entry = {
            "name": name,
            "mean_s": statistics.mean(timings),
            "min_s": min(timings),
            "max_s": max(timings),
            "counters": counters,
        }
        report["benchmarks"].append(entry)
        print(
            f"{name:26s} mean={entry['mean_s'] * 1000:7.2f}ms "
            f"min={entry['min_s'] * 1000:7.2f}ms "
            f"counters={counters}"
        )

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
