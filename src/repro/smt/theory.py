"""Conjunction-of-literals consistency checking (the "T" in DPLL(T)).

Given the theory literals of a complete propositional assignment, this
module decides whether their conjunction is consistent in the combined
theory of equality with uninterpreted functions (measures) and linear
integer arithmetic.  The combination is a pragmatic Nelson–Oppen style
loop: congruence closure runs first, equalities it entails between
integer-sorted terms are propagated into the arithmetic solver, and the
arithmetic solver then decides feasibility.

The propagation is one-directional (EUF -> LIA).  Missing the reverse
direction can only make the checker *fail to detect* a conflict, i.e.
report "consistent" too often; as discussed in ``repro.smt.lia`` this keeps
refinement-type checking sound (it can only reject more programs).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence

from ..logic.formulas import (
    COMPARISON_OPS,
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    IntLit,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Var,
)
from ..logic.sorts import BOOL, IntSort
from . import lia
from .euf import CongruenceClosure, TermBank
from .lia import Constraint, LiaSolver, LinearExpr, Relation


@dataclass(frozen=True)
class Literal:
    """A theory literal: an atom together with its asserted polarity."""

    atom: Formula
    polarity: bool


class TheoryConflict(Exception):
    """Raised internally when a conflict is found while asserting literals."""


class TheoryChecker:
    """Checks consistency of a conjunction of theory literals.

    Answers are memoized per literal *set*: consistency is order-insensitive
    and the checker is stateless across calls, so the lazy SMT loop's
    conflict minimization — which probes many overlapping subsets of the
    same assignment, often across queries sharing their atoms — pays for
    each distinct subset once.
    """

    #: Memo entries are dropped wholesale past this bound (the sets are
    #: small, but synthesis sessions issue tens of thousands of probes).
    MAX_CACHE = 65536

    def __init__(self) -> None:
        self._lia = LiaSolver()
        self._cache: Dict[frozenset, bool] = {}

    def is_consistent(self, literals: Sequence[Literal]) -> bool:
        """Is the conjunction of the given literals satisfiable?"""
        key = frozenset(literals)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        try:
            result = self._check(literals)
        except TheoryConflict:
            result = False
        if len(self._cache) >= self.MAX_CACHE:
            self._cache.clear()
        self._cache[key] = result
        return result

    # -- internals ---------------------------------------------------------

    def _check(self, literals: Sequence[Literal]) -> bool:
        bank = TermBank()
        closure = CongruenceClosure(bank)
        true_id = bank.constant("__true")
        false_id = bank.constant("__false")
        closure.assert_distinct(true_id, false_id)

        term_ids: Dict[Formula, int] = {}
        int_terms: Dict[int, Formula] = {}
        constraints: List[Constraint] = []

        def intern(term: Formula) -> int:
            """Intern a formula term for congruence closure purposes."""
            if term in term_ids:
                return term_ids[term]
            if isinstance(term, Var):
                term_id = bank.constant(f"var:{term.name}")
            elif isinstance(term, IntLit):
                term_id = bank.constant(f"int:{term.value}")
            elif isinstance(term, BoolLit):
                term_id = true_id if term.value else false_id
            elif isinstance(term, App):
                term_id = bank.apply(term.func, [intern(arg) for arg in term.args])
            elif isinstance(term, Unary):
                term_id = bank.apply(f"unary:{term.op.value}", [intern(term.arg)])
            elif isinstance(term, Binary):
                term_id = bank.apply(
                    f"binary:{term.op.value}", [intern(term.lhs), intern(term.rhs)]
                )
            elif isinstance(term, Ite):
                term_id = bank.apply(
                    "ite",
                    [intern(term.cond), intern(term.then_), intern(term.else_)],
                )
            elif isinstance(term, SetLit):
                term_id = bank.apply("setlit", [intern(element) for element in term.elements])
            else:
                term_id = bank.constant(f"opaque:{term!r}")
            term_ids[term] = term_id
            if isinstance(term.sort, IntSort):
                int_terms.setdefault(term_id, term)
            return term_id

        def atom_variable(term: Formula) -> str:
            """Arithmetic variable standing for a non-arithmetic integer term."""
            term_id = intern(term)
            int_terms.setdefault(term_id, term)
            return f"t{term_id}"

        def to_linear(term: Formula) -> LinearExpr:
            """Translate an integer-sorted term into a linear expression."""
            if isinstance(term, IntLit):
                return LinearExpr.constant_expr(term.value)
            if isinstance(term, Unary) and term.op is UnaryOp.NEG:
                return to_linear(term.arg).scale(Fraction(-1))
            if isinstance(term, Binary):
                if term.op is BinaryOp.PLUS:
                    return to_linear(term.lhs).add(to_linear(term.rhs))
                if term.op is BinaryOp.MINUS:
                    return to_linear(term.lhs).subtract(to_linear(term.rhs))
                if term.op is BinaryOp.TIMES:
                    if isinstance(term.lhs, IntLit):
                        return to_linear(term.rhs).scale(Fraction(term.lhs.value))
                    if isinstance(term.rhs, IntLit):
                        return to_linear(term.lhs).scale(Fraction(term.rhs.value))
                    # Non-linear product: treat the whole product as opaque.
                    return LinearExpr.variable(atom_variable(term))
            return LinearExpr.variable(atom_variable(term))

        # -- assert each literal -------------------------------------------
        for literal in literals:
            atom, polarity = literal.atom, literal.polarity
            if isinstance(atom, BoolLit):
                if atom.value != polarity:
                    raise TheoryConflict()
                continue
            if isinstance(atom, (Var, App)) and atom.sort == BOOL:
                closure.assert_equal(intern(atom), true_id if polarity else false_id)
                continue
            if isinstance(atom, Binary) and atom.op in COMPARISON_OPS:
                lhs, rhs = to_linear(atom.lhs), to_linear(atom.rhs)
                constraints.append(self._comparison(atom.op, lhs, rhs, polarity))
                continue
            if isinstance(atom, Binary) and atom.op in (BinaryOp.EQ, BinaryOp.NEQ):
                is_equality = (atom.op is BinaryOp.EQ) == polarity
                lhs_id, rhs_id = intern(atom.lhs), intern(atom.rhs)
                if is_equality:
                    closure.assert_equal(lhs_id, rhs_id)
                else:
                    closure.assert_distinct(lhs_id, rhs_id)
                if isinstance(atom.lhs.sort, IntSort):
                    lhs, rhs = to_linear(atom.lhs), to_linear(atom.rhs)
                    relation = Relation.EQ if is_equality else Relation.NEQ
                    constraints.append(Constraint(lhs.subtract(rhs), relation))
                continue
            # Anything else (set atoms that escaped the encoder, etc.) is
            # treated as unconstrained — the safe, conservative answer.
            continue

        if not closure.is_consistent():
            return False

        # -- propagate entailed equalities between integer terms ------------
        tracked = sorted(int_terms)
        for class_root, members in closure.classes().items():
            class_members = [t for t in tracked if t in members]
            for first, second in zip(class_members, class_members[1:]):
                lhs = self._term_expr(int_terms[first], first)
                rhs = self._term_expr(int_terms[second], second)
                constraints.append(Constraint(lhs.subtract(rhs), Relation.EQ))

        return self._lia.is_feasible(constraints)

    @staticmethod
    def _term_expr(term: Formula, term_id: int) -> LinearExpr:
        """Linear expression for a tracked integer term."""
        if isinstance(term, IntLit):
            return LinearExpr.constant_expr(term.value)
        return LinearExpr.variable(f"t{term_id}")

    @staticmethod
    def _comparison(op: BinaryOp, lhs: LinearExpr, rhs: LinearExpr, polarity: bool) -> Constraint:
        """Translate a (possibly negated) integer comparison."""
        if not polarity:
            negated = {
                BinaryOp.LT: BinaryOp.GE,
                BinaryOp.LE: BinaryOp.GT,
                BinaryOp.GT: BinaryOp.LE,
                BinaryOp.GE: BinaryOp.LT,
            }
            op = negated[op]
        if op is BinaryOp.LE:
            return lia.le(lhs, rhs)
        if op is BinaryOp.LT:
            return lia.lt(lhs, rhs)
        if op is BinaryOp.GE:
            return lia.le(rhs, lhs)
        return lia.lt(rhs, lhs)
