"""The content-addressed result cache and the cross-run lemma pool.

The properties that make the cache safe to trust: keys are stable across
processes and interning order, stale schemas stop being addressed, disk
corruption degrades to recomputation, and the lemma pool round-trips
through a fresh solver.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.service import cache as cache_mod
from repro.service.cache import (
    CACHE_SCHEMA_VERSION,
    LemmaStore,
    ResultCache,
    canonical_program_text,
    open_cache,
    program_digest,
    query_digest,
)
from repro.smt.solver import IncrementalSolver
from repro.syntax import parse_program

LIST_SQ = (Path(__file__).resolve().parent.parent / "examples" / "list.sq").read_text()

MAX_SQ = """\
leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}

max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}
max = ??
"""


class TestDigests:
    def test_digest_ignores_whitespace_and_comments(self):
        noisy = "-- a comment\n\n" + MAX_SQ.replace(" :: ", "  ::  ")
        assert program_digest(parse_program(noisy)) == program_digest(parse_program(MAX_SQ))

    def test_digest_stable_across_interning_order(self):
        """Parsing other programs first (so shared subformulas intern in a
        different order) must not perturb the key."""
        before = program_digest(parse_program(MAX_SQ))
        parse_program(LIST_SQ)  # intern a pile of unrelated formulas
        assert program_digest(parse_program(MAX_SQ)) == before

    def test_digest_stable_across_processes(self, tmp_path):
        """The key survives a new interpreter with a different hash seed —
        nothing in it may depend on Python's per-process string hashing."""
        script = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.service.cache import program_digest\n"
            "from repro.syntax import parse_program\n"
            "print(program_digest(parse_program(sys.stdin.read())), end='')\n"
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ, PYTHONHASHSEED="12345")
        digest = subprocess.run(
            [sys.executable, "-c", script, src],
            input=MAX_SQ,
            capture_output=True,
            text=True,
            env=env,
            check=True,
        ).stdout
        assert digest == program_digest(parse_program(MAX_SQ))

    def test_signature_order_is_significant(self):
        """`check` binds earlier signatures only, so reordering signatures
        changes meaning and must change the key."""
        reordered = (
            "max :: x:Int -> y:Int -> {Int | nu >= x && nu >= y && (nu == x || nu == y)}\n"
            "max = ??\n"
            "leq :: a:Int -> b:Int -> {Bool | nu <==> a <= b}\n"
        )
        assert program_digest(parse_program(reordered)) != program_digest(parse_program(MAX_SQ))

    def test_verb_and_options_separate_keys(self):
        program = parse_program(MAX_SQ)
        check = query_digest("check", program, {"workers": 1})
        synth = query_digest("synth", program, {"depth": 4})
        deeper = query_digest("synth", program, {"depth": 5})
        assert len({check, synth, deeper}) == 3

    def test_schema_version_salts_the_key(self, monkeypatch):
        program = parse_program(MAX_SQ)
        before = query_digest("check", program, {})
        monkeypatch.setattr(cache_mod, "CACHE_SCHEMA_VERSION", CACHE_SCHEMA_VERSION + 1)
        assert query_digest("check", program, {}) != before

    def test_canonical_text_covers_every_declaration(self):
        text = canonical_program_text(parse_program(LIST_SQ))
        for needle in ("data List", "measure len", "stutter = ", "length = ??"):
            assert needle in text


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("ab" * 32) is None
        cache.put("ab" * 32, {"items": [1, 2]})
        assert cache.get("ab" * 32) == {"items": [1, 2]}
        assert cache.stats() == {
            "hits": 1,
            "misses": 1,
            "puts": 1,
            "evictions": 0,
            "corrupt": 0,
            "entries": 1,
        }

    def test_eviction_bounds_entries(self, tmp_path):
        cache = ResultCache(tmp_path, max_entries=2)
        for index in range(4):
            cache.put(f"{index:02d}" * 32, {"index": index})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 2

    def test_corrupted_entry_recomputes(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "cd" * 32
        cache.put(digest, {"ok": True})
        cache._path(digest).write_text("{not json")
        assert cache.get(digest) is None, "corrupt entry must read as a miss"
        assert not cache._path(digest).exists(), "corrupt entry must be dropped"
        cache.put(digest, {"ok": True})
        assert cache.get(digest) == {"ok": True}
        stats = cache.stats()
        assert stats["corrupt"] == 1 and stats["misses"] == 1 and stats["hits"] == 1

    def test_stale_schema_entry_is_rejected(self, tmp_path):
        cache = ResultCache(tmp_path)
        digest = "ef" * 32
        path = cache._path(digest)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema": CACHE_SCHEMA_VERSION + 9, "digest": digest, "payload": {}})
        )
        assert cache.get(digest) is None
        assert cache.stats()["corrupt"] == 1

    def test_open_cache_disabled_returns_nothing(self, tmp_path):
        assert open_cache(str(tmp_path), enabled=False) == (None, None)
        cache, store = open_cache(str(tmp_path))
        assert cache is not None and store is not None


class TestLemmaStore:
    def _learned_lemmas(self):
        """Real lemmas: checking list.sq's `stutter` teaches the solver."""
        from repro.service.api import compute_check

        backend = IncrementalSolver()
        compute_check(parse_program(LIST_SQ), backend=backend)
        lemmas = backend.export_theory_lemmas()
        assert lemmas, "expected the check to learn theory lemmas"
        return lemmas

    def test_roundtrip_through_fresh_solver(self, tmp_path):
        lemmas = self._learned_lemmas()
        store = LemmaStore(tmp_path)
        store.merge(lemmas)
        fresh = IncrementalSolver()
        assert fresh.import_theory_lemmas(store.load()) == len(lemmas)
        assert fresh.export_theory_lemmas() == lemmas

    def test_import_is_idempotent(self, tmp_path):
        lemmas = self._learned_lemmas()
        fresh = IncrementalSolver()
        assert fresh.import_theory_lemmas(lemmas) == len(lemmas)
        assert fresh.import_theory_lemmas(lemmas) == 0

    def test_corrupt_pool_is_dropped(self, tmp_path):
        store = LemmaStore(tmp_path)
        store.path.write_bytes(b"\x80not a pickle")
        assert store.load() == []
        assert store.corrupt == 1
        assert not store.path.exists()

    def test_merge_dedups_and_bounds(self, tmp_path):
        store = LemmaStore(tmp_path, max_lemmas=3)
        lemmas = self._learned_lemmas()
        total = store.merge(lemmas)
        assert total == min(3, len(lemmas))
        assert store.merge(lemmas) == total, "re-merging must not grow the pool"
