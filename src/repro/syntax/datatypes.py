"""Datatype declarations: constructors with refined signatures (Sec. 3.2).

A :class:`Datatype` packages the constructors of an inductive type such as
``List a``; each :class:`Constructor` carries a :class:`~repro.syntax.
types.TypeSchema` quantified over the datatype's type parameters, whose
result refinement records the measure facts true of values built by that
constructor — e.g. ``Cons :: x:a -> xs:List a -> {List a | len(nu) == 1 +
len(xs)}``.  The type checker uses the declaration twice:

* applied as a component, the constructor's signature *produces* measure
  facts (building a ``Cons`` yields a value whose ``len`` is known);
* matched against, the signature is run backwards (*constructor
  selfification*): the scrutinee's ``len`` fact flows into the case
  binders together with the measure's catamorphism unfolding (see
  :meth:`repro.logic.measures.MeasureDef.unfold`).

:func:`list_datatype` builds the paper's ``List`` with the ``len``
measure — the prelude every datatype benchmark and test uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..logic import ops
from ..logic.formulas import App, Var, value_var
from ..logic.measures import MeasureCase, MeasureDef
from ..logic.sorts import INT, VarSort
from .types import (
    DataBase,
    FunctionType,
    RType,
    ScalarType,
    TypeSchema,
    arrow,
    base_sort,
    data_type,
    type_var,
)


@dataclass(frozen=True)
class Constructor:
    """A constructor and its refined signature.

    ``schema`` is quantified over exactly the owning datatype's type
    parameters; its body is the curried arrow ending in a scalar of the
    datatype (possibly refined by measure facts).
    """

    name: str
    schema: TypeSchema

    def arity(self) -> int:
        """Number of term-level arguments the constructor takes."""
        count = 0
        node: RType = self.schema.body
        while isinstance(node, FunctionType):
            count += 1
            node = node.result_type
        return count

    def result_type(self) -> ScalarType:
        """The scalar result of the (uninstantiated) signature."""
        node: RType = self.schema.body
        while isinstance(node, FunctionType):
            node = node.result_type
        if not isinstance(node, ScalarType):
            raise TypeError(f"constructor {self.name} does not end in a scalar: {node!r}")
        return node


@dataclass(frozen=True)
class Datatype:
    """An inductive datatype: name, type parameters, constructors."""

    name: str
    type_params: Tuple[str, ...] = ()
    constructors: Tuple[Constructor, ...] = ()

    def find(self, constructor: str) -> Optional[Constructor]:
        """The named constructor, or ``None``."""
        for ctor in self.constructors:
            if ctor.name == constructor:
                return ctor
        return None

    def constructor_names(self) -> Tuple[str, ...]:
        """Names of all constructors, in declaration order."""
        return tuple(ctor.name for ctor in self.constructors)


def constructor(name: str, datatype_params: Tuple[str, ...], body: RType) -> Constructor:
    """A constructor whose schema quantifies the datatype's parameters."""
    return Constructor(name, TypeSchema(datatype_params, (), body))


# ---------------------------------------------------------------------------
# pretty printing (re-parseable by repro.syntax.parser)
# ---------------------------------------------------------------------------


def _pretty_sort(sort) -> str:
    """Render a sort in the surface syntax of base types."""
    from ..logic.sorts import BoolSort, IntSort, UninterpretedSort

    if isinstance(sort, IntSort):
        return "Int"
    if isinstance(sort, BoolSort):
        return "Bool"
    if isinstance(sort, VarSort):
        return sort.name
    if isinstance(sort, UninterpretedSort):
        if not sort.args:
            return sort.name
        rendered = []
        for arg in sort.args:
            text = _pretty_sort(arg)
            rendered.append(f"({text})" if " " in text else text)
        return f"{sort.name} {' '.join(rendered)}"
    raise TypeError(f"sort {sort} has no surface syntax")


def pretty_datatype(datatype: Datatype) -> str:
    """Render a datatype declaration, e.g.
    ``data List a where Nil :: ... | Cons :: ...``."""
    from .types import pretty_type

    params = "".join(f" {param}" for param in datatype.type_params)
    ctors = " | ".join(
        f"{ctor.name} :: {pretty_type(ctor.schema.body)}" for ctor in datatype.constructors
    )
    return f"data {datatype.name}{params} where {ctors}"


def pretty_measure(measure: MeasureDef) -> str:
    """Render a measure declaration, e.g.
    ``measure len :: List a -> {Int | (nu >= 0)} where Nil -> 0 | ...``."""
    from ..logic.formulas import is_true
    from ..logic.pretty import pretty_formula

    result = _pretty_sort(measure.result_sort)
    if not is_true(measure.postcondition):
        result = f"{{{result} | {pretty_formula(measure.postcondition)}}}"
    cases = " | ".join(
        f"{case.constructor}{''.join(f' {binder.name}' for binder in case.binders)}"
        f" -> {pretty_formula(case.body)}"
        for case in measure.cases
    )
    return (
        f"measure {measure.name} :: {_pretty_sort(measure.arg_sort)} -> {result}"
        f" where {cases}"
    )


# ---------------------------------------------------------------------------
# the List prelude (the paper's running datatype)
# ---------------------------------------------------------------------------


def len_measure() -> MeasureDef:
    """``len :: List a -> {Int | nu >= 0}`` with its catamorphism cases."""
    a = VarSort("a")
    list_sort = base_sort(DataBase("List", (type_var("a"),)))
    xs = Var("xs", list_sort)
    return MeasureDef(
        name="len",
        datatype="List",
        arg_sort=list_sort,
        result_sort=INT,
        cases=(
            MeasureCase("Nil", (), ops.int_lit(0)),
            MeasureCase(
                "Cons",
                (Var("x", a), xs),
                ops.plus(ops.int_lit(1), App("len", (xs,), INT)),
            ),
        ),
        postcondition=ops.ge(value_var(INT), ops.int_lit(0)),
    )


def list_datatype() -> Datatype:
    """``List a`` with measure-refined ``Nil`` / ``Cons`` signatures."""
    elem = type_var("a")
    list_a = data_type("List", [elem])
    nu = value_var(list_a.sort)
    xs = Var("xs", list_a.sort)

    def len_of(term):
        return App("len", (term,), INT)

    nil = constructor(
        "Nil",
        ("a",),
        data_type("List", [elem], ops.eq(len_of(nu), ops.int_lit(0))),
    )
    cons = constructor(
        "Cons",
        ("a",),
        arrow(
            "x",
            elem,
            arrow(
                "xs",
                list_a,
                data_type(
                    "List",
                    [elem],
                    ops.eq(len_of(nu), ops.plus(ops.int_lit(1), len_of(xs))),
                ),
            ),
        ),
    )
    return Datatype("List", ("a",), (nil, cons))
