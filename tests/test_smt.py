"""Tests for the SMT pipeline: one-shot façade and incremental backend."""

import pytest

from repro.logic import ops
from repro.logic.formulas import IntLit
from repro.logic.sorts import BOOL, INT, set_of
from repro.smt import (
    IncrementalSolver,
    SmtSolver,
    SolverBackend,
    default_solver,
    reset_default_solver,
)

x = ops.var("x", INT)
y = ops.var("y", INT)
z = ops.var("z", INT)
p = ops.var("p", BOOL)


class TestSmtSolver:
    def test_valid_implication(self):
        solver = SmtSolver()
        assert solver.is_valid(ops.implies(ops.lt(x, y), ops.le(x, y)))
        assert not solver.is_valid(ops.implies(ops.le(x, y), ops.lt(x, y)))

    def test_satisfiability(self):
        solver = SmtSolver()
        assert solver.is_satisfiable(ops.and_(ops.le(x, y), ops.neq(x, y)))
        assert not solver.is_satisfiable(ops.and_(ops.le(x, y), ops.lt(y, x)))

    def test_boolean_structure(self):
        solver = SmtSolver()
        assert solver.is_valid(ops.or_(p, ops.not_(p)))
        assert not solver.is_satisfiable(ops.and_(p, ops.not_(p)))
        assert solver.is_valid(ops.iff(p, p))

    def test_boolean_equality_rewrite(self):
        solver = SmtSolver()
        q = ops.var("q", BOOL)
        assert solver.is_valid(ops.implies(ops.and_(ops.eq(p, q), p), q))

    def test_ite_lifting(self):
        solver = SmtSolver()
        absval = ops.ite(ops.ge(x, IntLit(0)), x, ops.neg(x))
        assert solver.is_valid(ops.ge(absval, IntLit(0)))

    def test_uninterpreted_measures(self):
        solver = SmtSolver()
        length = ops.measure("len", x, INT)
        same = ops.measure("len", ops.var("x", INT), INT)
        assert solver.is_valid(ops.eq(length, same))

    def test_sets(self):
        solver = SmtSolver()
        s = ops.var("s", set_of(INT))
        singleton = ops.singleton(x)
        assert solver.is_valid(ops.member(x, ops.union(singleton, s)))
        assert not solver.is_valid(ops.member(y, ops.union(singleton, s)))

    def test_cache_hits(self):
        solver = SmtSolver()
        formula = ops.le(x, y)
        solver.is_satisfiable(formula)
        hits_before = solver.statistics.cache_hits
        solver.is_satisfiable(ops.le(ops.var("x", INT), y))
        assert solver.statistics.cache_hits == hits_before + 1

    def test_cache_eviction_is_bounded_and_counted(self):
        solver = SmtSolver(cache_size=2)
        for k in range(5):
            solver.is_satisfiable(ops.le(x, IntLit(k)))
        assert len(solver._cache) <= 2
        assert solver.statistics.cache_evictions == 3

    def test_cache_size_must_be_positive(self):
        with pytest.raises(ValueError):
            SmtSolver(cache_size=0)

    def test_clear_cache(self):
        solver = SmtSolver()
        formula = ops.le(x, y)
        solver.is_satisfiable(formula)
        solver.clear_cache()
        hits = solver.statistics.cache_hits
        solver.is_satisfiable(formula)
        assert solver.statistics.cache_hits == hits

    def test_solver_instances_are_independent(self):
        # Fresh-name generation is per solver: the same ite-heavy query run
        # on two fresh solvers yields identical results and statistics.
        query = ops.ge(ops.ite(ops.ge(x, y), x, y), x)
        first, second = SmtSolver(), SmtSolver()
        assert first.is_valid(query) and second.is_valid(query)
        assert first.statistics == second.statistics

    def test_cache_bypassed_under_live_backend_assertions(self):
        # Answers depend on base-scope assertions, so they must not be
        # memoized as context-free (and stale entries must not be served).
        solver = SmtSolver()
        query = ops.lt(x, ops.int_lit(0))
        assert solver.is_satisfiable(query)  # context-free: cached True
        solver.backend.assert_(ops.gt(x, ops.int_lit(0)))
        assert not solver.is_satisfiable(query)  # contextual: recomputed
        assert solver.statistics.cache_hits == 0

    def test_default_solver_shared(self):
        reset_default_solver()
        assert default_solver() is default_solver()


class TestIncrementalSolver:
    def test_push_pop_scoping(self):
        solver = IncrementalSolver()
        solver.assert_(ops.le(x, y))
        assert solver.check()
        solver.push()
        solver.assert_(ops.lt(y, x))
        assert not solver.check()
        solver.pop()
        assert solver.check()

    def test_pop_without_push_raises(self):
        with pytest.raises(RuntimeError):
            IncrementalSolver().pop()

    def test_assertions_accumulate_within_scope(self):
        solver = IncrementalSolver()
        solver.push()
        solver.assert_(ops.le(x, y))
        solver.assert_(ops.le(y, z))
        solver.assert_(ops.lt(z, x))
        assert not solver.check()
        solver.pop()
        assert solver.check()

    def test_reasserted_formulas_are_not_reencoded(self):
        solver = IncrementalSolver()
        formula = ops.and_(ops.le(x, y), ops.neq(x, y))
        for _ in range(5):
            solver.push()
            solver.assert_(formula)
            assert solver.check()
            solver.pop()
        assert solver.statistics.encoded_assertions == 1
        assert solver.statistics.reused_assertions == 4

    def test_trivial_assertions(self):
        solver = IncrementalSolver()
        solver.push()
        solver.assert_(ops.bool_lit(True))
        assert solver.check()
        solver.assert_(ops.bool_lit(False))
        assert not solver.check()
        solver.pop()
        assert solver.check()

    def test_check_assuming_restores_state(self):
        solver = IncrementalSolver()
        solver.assert_(ops.le(x, y))
        assert not solver.check_assuming([ops.lt(y, x)])
        assert solver.check()

    def test_is_valid_implication(self):
        solver = IncrementalSolver()
        assert solver.is_valid_implication([ops.le(x, y), ops.le(y, z)], ops.le(x, z))
        assert not solver.is_valid_implication([ops.le(x, y)], ops.le(y, x))

    def test_learned_lemmas_survive_pop(self):
        solver = IncrementalSolver()
        # Run a query that forces theory lemmas, then re-run it: the second
        # round must not need more theory checks than the first.
        query = ops.and_(ops.le(x, y), ops.lt(y, x))
        solver.push()
        solver.assert_(query)
        solver.check()
        first_round = solver.statistics.theory_checks
        solver.pop()
        solver.push()
        solver.assert_(query)
        solver.check()
        solver.pop()
        second_round = solver.statistics.theory_checks - first_round
        assert second_round <= first_round

    def test_is_a_solver_backend(self):
        assert isinstance(IncrementalSolver(), SolverBackend)
        assert isinstance(SmtSolver().backend, SolverBackend)

    def test_check_assuming_conjoins_set_formulas(self):
        solver = IncrementalSolver()
        s = ops.var("s", set_of(INT))
        empty = ops.empty_set(INT)
        # x in s together with s <= [] is unsatisfiable only if both
        # assertions share one element universe.
        assert not solver.check_assuming([ops.member(x, s), ops.subset(s, empty)])
        assert solver.check_assuming([ops.member(x, s)])

    def test_set_reasoning_across_premises(self):
        # Set elimination is per assertion; is_valid_implication must still
        # decide cross-assertion set entailments exactly (it conjoins).
        solver = IncrementalSolver()
        s = ops.var("s", set_of(INT))
        t = ops.var("t", set_of(INT))
        assert solver.is_valid_implication([ops.member(x, s), ops.subset(s, t)], ops.member(x, t))
        assert not solver.is_valid_implication([ops.member(x, s)], ops.member(x, t))

    def test_one_persistent_sat_solver_no_per_check_copying(self):
        # The SAT core lives for the solver's whole lifetime: every check
        # reuses the same solver object, and clauses are loaded into it
        # exactly once per encoded formula — never copied per query.
        solver = IncrementalSolver()
        core = solver._sat
        for k in range(50):
            solver.push()
            solver.assert_(ops.le(ops.var(f"v{k}", INT), IntLit(k)))
            assert solver.check()
            solver.pop()
        assert solver._sat is core
        loaded = core.num_clauses
        # Re-running the same scopes encodes and loads nothing new.
        for k in range(50):
            solver.push()
            solver.assert_(ops.le(ops.var(f"v{k}", INT), IntLit(k)))
            assert solver.check()
            solver.pop()
        assert solver._sat is core
        assert core.num_clauses == loaded
        assert solver.statistics.encoded_assertions == 50
        assert solver.statistics.reused_assertions == 50

    def test_active_atoms_cache_tracks_scopes(self):
        # The active-atom multiset is maintained incrementally across
        # assert_/push/pop instead of re-unioned per check.
        solver = IncrementalSolver()
        solver.assert_(ops.le(x, y))
        base = dict(solver._active_atom_counts)
        assert base  # the base-frame assertion contributes its atoms
        solver.push()
        solver.assert_(ops.lt(y, z))
        solver.assert_(ops.le(x, y))  # re-assertion counts twice
        assert len(solver._active_atom_counts) > len(base)
        solver.pop()
        assert dict(solver._active_atom_counts) == base

    def test_check_evaluating_reads_back_counterexample(self):
        solver = IncrementalSolver()
        solver.push()
        a, b = ops.le(x, y), ops.le(y, z)
        solver.assert_(a)
        # The negated conjunction forces the model to falsify one conjunct;
        # the probes read that counterexample back, atom for atom.
        solver.push()
        solver.assert_(ops.not_(ops.and_(a, b)))
        values = solver.check_evaluating([a, b, ops.and_(a, b)])
        assert values[0] is True  # asserted, so true in every model
        assert values[1] is False  # the only way to falsify the conjunction
        assert values[2] is False
        solver.pop()
        solver.assert_(ops.lt(y, x))
        assert solver.check_evaluating([a]) is None  # UNSAT
        solver.pop()

    def test_check_evaluating_trivial_and_unevaluable_probes(self):
        solver = IncrementalSolver()
        solver.push()
        solver.assert_(ops.le(x, y))
        t = ops.bool_lit(True)
        s = ops.var("s", set_of(INT))
        values = solver.check_evaluating([t, ops.not_(t), ops.member(x, s)])
        assert values[0] is True
        assert values[1] is False
        assert values[2] is None  # set probes cannot be read from a model
        solver.pop()
