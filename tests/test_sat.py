"""Tests for the propositional CDCL core and the EUF+LIA theory checker."""

import random

from repro.logic import ops
from repro.logic.sorts import BOOL, INT
from repro.smt.sat import SatSolver, _luby, solve_clauses
from repro.smt.theory import Literal, TheoryChecker

x = ops.var("x", INT)
y = ops.var("y", INT)
z = ops.var("z", INT)


class TestSatSolver:
    def test_simple_sat(self):
        result = solve_clauses([[1, 2], [-1, 2], [1, -2]])
        assert result.satisfiable
        model = result.model
        assert (model[1] or model[2]) and (not model[1] or model[2])

    def test_simple_unsat(self):
        result = solve_clauses([[1], [-1]])
        assert not result.satisfiable

    def test_unit_propagation_chain(self):
        result = solve_clauses([[1], [-1, 2], [-2, 3]])
        assert result.satisfiable
        assert result.model[1] and result.model[2] and result.model[3]

    def test_empty_clause_is_unsat(self):
        solver = SatSolver()
        solver.add_clause([])
        assert not solver.solve().satisfiable

    def test_tautologies_are_dropped(self):
        solver = SatSolver()
        solver.add_clause([1, -1])
        assert solver.num_clauses == 0

    def test_assumptions(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        assert solver.solve([-1]).satisfiable
        assert solver.solve([-1]).model[2]
        assert not solver.solve([-1, -2]).satisfiable
        # conflicting assumptions
        assert not solver.solve([1, -1]).satisfiable

    def test_incremental_blocking(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        first = solver.solve()
        assert first.satisfiable
        # block every model one at a time until exhaustion
        seen = 0
        while True:
            result = solver.solve()
            if not result.satisfiable:
                break
            seen += 1
            solver.add_clause([-v if value else v for v, value in result.model.items()])
        assert seen == 3  # models of (1 or 2) over two variables


def brute_force_satisfiable(clauses, nvars, assumptions=()):
    """Truth-table satisfiability over variables 1..nvars (bitmask sweep)."""
    masks = []
    for clause in clauses:
        positive = negative = 0
        for lit in clause:
            if lit > 0:
                positive |= 1 << (lit - 1)
            else:
                negative |= 1 << (-lit - 1)
        masks.append((positive, negative))
    for lit in assumptions:
        if lit > 0:
            masks.append((1 << (lit - 1), 0))
        else:
            masks.append((0, 1 << (-lit - 1)))
    full = (1 << nvars) - 1
    for assignment in range(1 << nvars):
        flipped = assignment ^ full
        if all(assignment & pos or flipped & neg for pos, neg in masks):
            return True
    return False


def random_clause(rng, nvars, max_len=4):
    width = rng.randint(1, min(max_len, nvars))
    variables = rng.sample(range(1, nvars + 1), width)
    return [var if rng.random() < 0.5 else -var for var in variables]


def assert_model_satisfies(model, clauses):
    for clause in clauses:
        satisfied = any(model.get(abs(lit)) == (lit > 0) for lit in clause)
        assert satisfied, f"model {model} falsifies {clause}"


class TestCdclDifferentialFuzz:
    """The rewrite must not silently change SAT answers: every answer is
    checked against a truth table, and every model against the clauses."""

    def test_500_random_instances_match_truth_table(self):
        rng = random.Random(0xC0FFEE)
        for round_number in range(500):
            nvars = rng.randint(1, 9) if round_number % 5 else rng.randint(10, 12)
            clauses = [
                random_clause(rng, nvars)
                for _ in range(rng.randint(1, 3 * nvars))
            ]
            assumptions = [
                var if rng.random() < 0.5 else -var
                for var in rng.sample(range(1, nvars + 1), rng.randint(0, min(2, nvars)))
            ]
            result = solve_clauses(clauses, assumptions)
            expected = brute_force_satisfiable(clauses, nvars, assumptions)
            context = f"instance {round_number}: clauses={clauses} assumptions={assumptions}"
            assert result.satisfiable == expected, context
            if result.satisfiable:
                assert_model_satisfies(result.model, clauses)
                for lit in assumptions:
                    assert result.model.get(abs(lit)) == (lit > 0)

    def test_incremental_add_solve_sequences(self):
        """Interleaved add_clause/solve-under-assumptions against a fresh
        truth table at every step — persistent state must stay exact."""
        rng = random.Random(0xFEED)
        for _ in range(60):
            nvars = rng.randint(2, 8)
            solver = SatSolver()
            clauses = []
            for _ in range(8):
                for _ in range(rng.randint(1, 2)):
                    clause = random_clause(rng, nvars, max_len=3)
                    clauses.append(clause)
                    solver.add_clause(clause)
                assumptions = [
                    var if rng.random() < 0.5 else -var
                    for var in rng.sample(range(1, nvars + 1), rng.randint(0, min(3, nvars)))
                ]
                result = solver.solve(assumptions)
                expected = brute_force_satisfiable(clauses, nvars, assumptions)
                context = f"clauses={clauses} assumptions={assumptions}"
                assert result.satisfiable == expected, context
                if result.satisfiable:
                    assert_model_satisfies(result.model, clauses)

    def test_lemmas_behave_like_clauses_for_answers(self):
        rng = random.Random(0xBEEF)
        for _ in range(40):
            nvars = rng.randint(2, 7)
            solver = SatSolver()
            clauses = [random_clause(rng, nvars, max_len=3) for _ in range(nvars * 2)]
            for index, clause in enumerate(clauses):
                if index % 2:
                    solver.add_lemma(clause)
                else:
                    solver.add_clause(clause)
            expected = brute_force_satisfiable(clauses, nvars)
            assert solver.solve().satisfiable == expected


def pigeonhole_clauses(holes):
    """PHP(holes+1, holes): unsatisfiable, forces real conflict analysis."""
    pigeons = holes + 1
    var = lambda p, h: p * holes + h + 1  # noqa: E731
    clauses = [[var(p, h) for h in range(holes)] for p in range(pigeons)]
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                clauses.append([-var(p1, h), -var(p2, h)])
    return clauses


class TestCdclSearch:
    def test_pigeonhole_unsat_with_learning(self):
        solver = SatSolver()
        solver.add_clauses(pigeonhole_clauses(3))
        assert not solver.solve().satisfiable
        assert solver.statistics.conflicts > 0
        assert solver.statistics.learned_clauses > 0
        assert solver.statistics.propagations > 0

    def test_unsat_is_permanent(self):
        solver = SatSolver()
        solver.add_clauses(pigeonhole_clauses(3))
        assert not solver.solve().satisfiable
        assert not solver.solve().satisfiable  # cached empty-clause state

    def test_solving_is_deterministic(self):
        clauses = [random_clause(random.Random(5), 8) for _ in range(20)]
        first = solve_clauses(clauses)
        second = solve_clauses(clauses)
        assert first.satisfiable == second.satisfiable
        assert first.model == second.model

    def test_luby_sequence(self):
        assert [_luby(i) for i in range(15)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_decide_restriction_reports_partial_model(self):
        solver = SatSolver()
        solver.add_clause([1, 2])
        solver.add_clause([3, 4])  # outside the cone: left unassigned
        result = solver.solve(decide=frozenset((1, 2)))
        assert result.satisfiable
        assert 1 in result.model and 2 in result.model
        assert 3 not in result.model and 4 not in result.model


class TestLearnedClauseGc:
    def test_lemma_db_stays_bounded(self):
        solver = SatSolver(max_learnts=60)
        rng = random.Random(11)

        def wide_clause():
            # Width >= 3 so no level-0 units absorb later lemmas.
            variables = rng.sample(range(1, 41), rng.randint(3, 4))
            return [var if rng.random() < 0.5 else -var for var in variables]

        for _ in range(30):
            solver.add_clause(wide_clause())
        for _ in range(500):
            solver.add_lemma(wide_clause())
        assert solver.statistics.gc_runs >= 2
        assert solver.statistics.gced_clauses > 0
        # The live DB is bounded far below the number of lemmas added.
        assert solver.num_lemmas <= 300
        solver.solve()  # still usable after collection

    def test_gc_preserves_answers_of_problem_clauses(self):
        # Lemmas implied by the problem clauses may be collected freely
        # without changing answers.
        rng = random.Random(13)
        solver = SatSolver(max_learnts=20)
        clauses = [random_clause(rng, 6, max_len=3) for _ in range(12)]
        solver.add_clauses(clauses)
        expected = brute_force_satisfiable(clauses, 6)
        for _ in range(100):
            # implied lemmas: supersets of existing clauses
            base = rng.choice(clauses)
            extra = random_clause(rng, 6, max_len=2)
            solver.add_lemma(base + extra)
        assert solver.solve().satisfiable == expected


class TestTheoryChecker:
    def check(self, *pairs):
        return TheoryChecker().is_consistent(
            [Literal(atom, polarity) for atom, polarity in pairs]
        )

    def test_lia_conflict(self):
        assert not self.check((ops.le(x, y), True), (ops.lt(y, x), True))
        assert self.check((ops.le(x, y), True), (ops.lt(x, y), True))

    def test_negated_comparison(self):
        # !(x <= y) and !(y <= x) is inconsistent over integers
        assert not self.check((ops.le(x, y), False), (ops.le(y, x), False))

    def test_equality_propagates_to_arithmetic(self):
        assert not self.check(
            (ops.eq(x, y), True),
            (ops.lt(x, y), True),
        )

    def test_congruence_closure(self):
        fx = ops.measure("f", x, INT)
        fy = ops.measure("f", y, INT)
        # x == y implies f x == f y; asserting f x != f y must conflict
        assert not self.check((ops.eq(x, y), True), (ops.eq(fx, fy), False))
        assert self.check((ops.eq(x, y), False), (ops.eq(fx, fy), False))

    def test_euf_equality_feeds_lia(self):
        fx = ops.measure("f", x, INT)
        fy = ops.measure("f", y, INT)
        # x == y forces f x == f y, so f x < f y is infeasible
        assert not self.check((ops.eq(x, y), True), (ops.lt(fx, fy), True))

    def test_boolean_atom_polarities(self):
        p = ops.var("p", BOOL)
        assert not self.check((p, True), (p, False))
        assert self.check((p, True), (ops.var("q", BOOL), False))

    def test_integer_chain(self):
        assert not self.check(
            (ops.le(x, y), True),
            (ops.le(y, z), True),
            (ops.lt(z, x), True),
        )
