"""Unit tests for the budget/deadline machinery (:mod:`repro.limits`).

The contract under test: a checkpoint with no installed scope is free
and silent; an installed budget trips on exactly the limit it bounds,
reports progress, and — once exhausted — keeps tripping; scopes nest so
an inner (per-file) budget cannot outlive an outer (per-request) one;
and the exhaustion exception survives the pickle round-trip the process
portfolio puts it through.
"""

import pickle
import time

import pytest

from repro import limits
from repro.limits import Budget, BudgetExhausted, budget_scope, checkpoint


class TestBudget:
    def test_from_timeout_ms_sets_a_monotonic_deadline(self):
        budget = Budget.from_timeout_ms(5_000)
        assert budget.deadline is not None
        assert not budget.expired()
        left = budget.remaining_ms()
        assert 0 < left <= 5_000

    def test_no_timeout_means_no_deadline(self):
        budget = Budget.from_timeout_ms(None, max_terms=10)
        assert budget.deadline is None
        assert budget.remaining_ms() is None
        assert not budget.expired()
        assert budget.max_terms == 10

    def test_expired_deadline_is_clamped_to_zero(self):
        budget = Budget(deadline=time.monotonic() - 1.0)
        assert budget.expired()
        assert budget.remaining_ms() == 0.0


class TestCheckpoint:
    def test_no_scope_is_a_no_op(self):
        checkpoint()
        checkpoint("sat_conflicts")  # counters without a scope go nowhere

    def test_none_budget_installs_nothing(self):
        with budget_scope(None) as scope:
            assert scope is None
            checkpoint("sat_conflicts")

    def test_step_limit_trips_past_the_bound(self):
        with budget_scope(Budget(max_terms=3)):
            for _ in range(3):
                checkpoint("enum_terms")
            with pytest.raises(BudgetExhausted) as caught:
                checkpoint("enum_terms")
        assert caught.value.limit == "enum_terms"
        assert caught.value.progress["enum_terms"] == 4

    def test_wall_clock_trips_after_the_deadline(self):
        with budget_scope(Budget(deadline=time.monotonic() - 0.001)):
            with pytest.raises(BudgetExhausted) as caught:
                checkpoint()
        assert caught.value.limit == "wall_clock"

    def test_unrelated_counters_do_not_trip(self):
        with budget_scope(Budget(max_conflicts=1)):
            for _ in range(5):
                checkpoint("enum_terms")

    def test_exhausted_scope_keeps_tripping(self):
        with budget_scope(Budget(max_terms=1)):
            checkpoint("enum_terms")
            for _ in range(3):
                with pytest.raises(BudgetExhausted):
                    checkpoint("enum_terms")

    def test_cancel_trips_the_next_checkpoint(self):
        with budget_scope(Budget()) as scope:
            checkpoint()
            scope.cancel()
            with pytest.raises(BudgetExhausted) as caught:
                checkpoint()
        assert caught.value.limit == "cancelled"

    def test_scope_is_popped_even_on_exhaustion(self):
        with pytest.raises(BudgetExhausted):
            with budget_scope(Budget(max_terms=0)):
                checkpoint("enum_terms")
        checkpoint("enum_terms")  # no scope left behind


class TestNestedScopes:
    def test_inner_limit_trips_first(self):
        with budget_scope(Budget(max_terms=100)):
            with budget_scope(Budget(max_terms=2)):
                checkpoint("enum_terms")
                checkpoint("enum_terms")
                with pytest.raises(BudgetExhausted):
                    checkpoint("enum_terms")

    def test_outer_limit_binds_the_inner_scope(self):
        with budget_scope(Budget(max_terms=2)):
            with budget_scope(Budget(max_terms=100)):
                checkpoint("enum_terms")
                checkpoint("enum_terms")
                with pytest.raises(BudgetExhausted):
                    checkpoint("enum_terms")

    def test_remaining_ms_reports_the_tightest_deadline(self):
        assert limits.remaining_ms() is None
        with budget_scope(Budget.from_timeout_ms(60_000)):
            with budget_scope(Budget.from_timeout_ms(1_000)):
                left = limits.remaining_ms()
                assert left is not None and left <= 1_000

    def test_active_budget_is_the_innermost(self):
        assert limits.active_budget() is None
        outer, inner = Budget(max_terms=5), Budget(max_terms=1)
        with budget_scope(outer):
            with budget_scope(inner):
                assert limits.active_budget() is inner
            assert limits.active_budget() is outer


class TestBudgetExhaustedPickling:
    """Portfolio workers raise the exception across a process boundary."""

    def test_round_trip_preserves_limit_and_progress(self):
        original = BudgetExhausted("sat_conflicts", {"sat_conflicts": 41})
        clone = pickle.loads(pickle.dumps(original))
        assert isinstance(clone, BudgetExhausted)
        assert clone.limit == "sat_conflicts"
        assert clone.progress == {"sat_conflicts": 41}
        assert str(clone) == str(original)

    def test_budget_itself_is_plain_picklable_data(self):
        budget = Budget.from_timeout_ms(1_000, max_conflicts=7)
        clone = pickle.loads(pickle.dumps(budget))
        assert clone == budget
