"""Program terms (Fig. 2 of the paper).

The paper splits terms into *elimination* terms ``E`` (variables and
applications — terms whose type is inferred) and *introduction* terms ``I``
(lambdas, conditionals, matches, fixpoints — terms checked against a goal
type).  The round-trip enumerator of Sec. 4 leans on that split; here it
drives the bidirectional checker's mode choice.

.. code-block:: text

    E ::= x | c | E E
    I ::= E | \\x . I | if E then I else I | match E with alts | fix f . I

``Match`` and ``Fix`` are represented but their typing rules are
deliberately unimplemented in this layer (see ROADMAP: match elaboration
and termination metrics arrive with the enumerator); the checker reports
them as unsupported rather than mis-typing them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .types import RType


class Term:
    """Base class of program terms."""

    def is_e_term(self) -> bool:
        """Is this an elimination term (type can be inferred)?"""
        return isinstance(self, (VarTerm, IntConst, BoolConst, AppTerm, Annot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return pretty_term(self)


@dataclass(frozen=True, repr=False)
class VarTerm(Term):
    """A program variable occurrence."""

    name: str


@dataclass(frozen=True, repr=False)
class IntConst(Term):
    """An integer constant."""

    value: int


@dataclass(frozen=True, repr=False)
class BoolConst(Term):
    """A boolean constant."""

    value: bool


@dataclass(frozen=True, repr=False)
class AppTerm(Term):
    """Application ``fun arg`` (curried, one argument at a time)."""

    fun: Term
    arg: Term


@dataclass(frozen=True, repr=False)
class LambdaTerm(Term):
    """Abstraction ``\\arg_name . body``."""

    arg_name: str
    body: Term


@dataclass(frozen=True, repr=False)
class IfTerm(Term):
    """Conditional ``if cond then then_ else else_``."""

    cond: Term
    then_: Term
    else_: Term


@dataclass(frozen=True, repr=False)
class LetTerm(Term):
    """``let name = value in body`` (monomorphic let)."""

    name: str
    value: Term
    body: Term


@dataclass(frozen=True, repr=False)
class MatchCase(Term):
    """One alternative ``C x1 ... xk -> body`` of a match."""

    constructor: str
    binders: Tuple[str, ...]
    body: Term


@dataclass(frozen=True, repr=False)
class MatchTerm(Term):
    """``match scrutinee with cases`` — elaboration is a later PR."""

    scrutinee: Term
    cases: Tuple[MatchCase, ...]


@dataclass(frozen=True, repr=False)
class FixTerm(Term):
    """``fix name . body`` — recursion, awaiting termination metrics."""

    name: str
    body: Term


@dataclass(frozen=True, repr=False)
class Annot(Term):
    """A term with a type ascription ``(term :: rtype)``."""

    term: Term
    rtype: RType


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def v(name: str) -> VarTerm:
    """A variable occurrence."""
    return VarTerm(name)


def lit(value: "int | bool") -> Term:
    """An integer or boolean constant."""
    if isinstance(value, bool):
        return BoolConst(value)
    return IntConst(value)


def app(fun: Term, *args: Term) -> Term:
    """Curried application of ``fun`` to one or more arguments."""
    if not args:
        raise ValueError("app needs at least one argument")
    result = fun
    for arg in args:
        result = AppTerm(result, arg)
    return result


def lam(*arg_names: str, body: Optional[Term] = None) -> Term:
    """Nested lambdas: ``lam("x", "y", body=e)`` is ``\\x . \\y . e``."""
    if body is None:
        raise ValueError("lam needs a body")
    result = body
    for name in reversed(arg_names):
        result = LambdaTerm(name, result)
    return result


def if_(cond: Term, then_: Term, else_: Term) -> IfTerm:
    """A conditional."""
    return IfTerm(cond, then_, else_)


def let(name: str, value: Term, body: Term) -> LetTerm:
    """A monomorphic let binding."""
    return LetTerm(name, value, body)


def annot(term: Term, rtype: RType) -> Annot:
    """A type ascription."""
    return Annot(term, rtype)


# ---------------------------------------------------------------------------
# pretty printing
# ---------------------------------------------------------------------------


def pretty_term(term: Term) -> str:
    """Render a term in surface syntax."""
    if isinstance(term, VarTerm):
        return term.name
    if isinstance(term, IntConst):
        return str(term.value)
    if isinstance(term, BoolConst):
        return "True" if term.value else "False"
    if isinstance(term, AppTerm):
        arg = pretty_term(term.arg)
        if isinstance(term.arg, (AppTerm, LambdaTerm, IfTerm)):
            arg = f"({arg})"
        return f"{pretty_term(term.fun)} {arg}"
    if isinstance(term, LambdaTerm):
        return f"\\{term.arg_name} . {pretty_term(term.body)}"
    if isinstance(term, IfTerm):
        return (
            f"if {pretty_term(term.cond)} "
            f"then {pretty_term(term.then_)} "
            f"else {pretty_term(term.else_)}"
        )
    if isinstance(term, LetTerm):
        return f"let {term.name} = {pretty_term(term.value)} in {pretty_term(term.body)}"
    if isinstance(term, MatchCase):
        binders = " ".join(term.binders)
        return f"{term.constructor} {binders} -> {pretty_term(term.body)}"
    if isinstance(term, MatchTerm):
        cases = " | ".join(pretty_term(case) for case in term.cases)
        return f"match {pretty_term(term.scrutinee)} with {cases}"
    if isinstance(term, FixTerm):
        return f"fix {term.name} . {pretty_term(term.body)}"
    if isinstance(term, Annot):
        return f"({pretty_term(term.term)} :: {term.rtype!r})"
    raise TypeError(f"unknown term node: {term!r}")
