"""Pretty-printing of refinement formulas in Synquid-like concrete syntax."""

from __future__ import annotations

from .formulas import (
    App,
    Binary,
    BinaryOp,
    BoolLit,
    Formula,
    IntLit,
    Ite,
    SetLit,
    Unary,
    UnaryOp,
    Unknown,
    Var,
)

_BINARY_SYMBOLS = {
    BinaryOp.PLUS: "+",
    BinaryOp.MINUS: "-",
    BinaryOp.TIMES: "*",
    BinaryOp.LT: "<",
    BinaryOp.LE: "<=",
    BinaryOp.GT: ">",
    BinaryOp.GE: ">=",
    BinaryOp.EQ: "==",
    BinaryOp.NEQ: "!=",
    BinaryOp.AND: "&&",
    BinaryOp.OR: "||",
    BinaryOp.IMPLIES: "==>",
    BinaryOp.IFF: "<==>",
    BinaryOp.UNION: "+",
    BinaryOp.INTERSECT: "*",
    BinaryOp.DIFF: "-",
    BinaryOp.MEMBER: "in",
    BinaryOp.SUBSET: "<=",
}


def pretty_formula(formula: Formula) -> str:
    """Render a formula as a human-readable string."""
    if isinstance(formula, BoolLit):
        return "True" if formula.value else "False"
    if isinstance(formula, IntLit):
        return str(formula.value)
    if isinstance(formula, Var):
        return "nu" if formula.name == "_v" else formula.name
    if isinstance(formula, Unknown):
        if formula.substitution:
            subst = ", ".join(
                f"{name} := {pretty_formula(value)}" for name, value in formula.substitution
            )
            return f"?{formula.name}[{subst}]"
        return f"?{formula.name}"
    if isinstance(formula, Unary):
        symbol = "!" if formula.op is UnaryOp.NOT else "-"
        return f"{symbol}({pretty_formula(formula.arg)})"
    if isinstance(formula, Binary):
        symbol = _BINARY_SYMBOLS[formula.op]
        return f"({pretty_formula(formula.lhs)} {symbol} {pretty_formula(formula.rhs)})"
    if isinstance(formula, Ite):
        return (
            f"(if {pretty_formula(formula.cond)} "
            f"then {pretty_formula(formula.then_)} "
            f"else {pretty_formula(formula.else_)})"
        )
    if isinstance(formula, App):
        # Measure-application syntax, mirroring the surface parser so
        # pretty-printed refinements parse back.
        args = ", ".join(pretty_formula(arg) for arg in formula.args)
        return f"{formula.func}({args})"
    if isinstance(formula, SetLit):
        elements = ", ".join(pretty_formula(el) for el in formula.elements)
        return f"[{elements}]"
    raise TypeError(f"unknown formula node: {formula!r}")
