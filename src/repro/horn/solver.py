"""The greatest-fixpoint Horn-constraint solver (MUSFix-style).

Implements the constraint-solving procedure of Polikarpova, Kuraj &
Solar-Lezama, *Program Synthesis from Polymorphic Refinement Types*
(PLDI 2016): Sec. 5.1 (the greatest-fixpoint iteration over candidate
valuations, initialised at the strongest assignment), Sec. 5.2's use of
*weakest* solutions for unknowns in negative positions (served here by
:meth:`HornSolver._minimize` and by the smallest-first search in
:mod:`repro.synth.conditions`), and the single-candidate special case of
the MUSFix algorithm of Sec. 5.3 — the multi-candidate generalisation is
stubbed in :mod:`repro.typecheck.musfix` (see ROADMAP).

The solver maintains a candidate assignment ``L`` mapping each predicate
unknown to a subset of its qualifier space, starting from the *strongest*
candidate ``L[P] = Q_P``.  One round visits every weakening constraint
``lhs ==> P[sigma]`` and prunes from ``L[P]`` the qualifiers that do not
follow from the premises under the current assignment; because pruning one
unknown weakens the premises of constraints that mention it, rounds repeat
until a fixpoint.  The result is the greatest fixpoint — the strongest
valuation satisfying all weakening constraints — and the remaining
*definite* constraints (concrete conclusions) are then checked against it:
if one fails there, no assignment in the qualifier space can succeed (the
premises only get weaker from here), and the system is unsolvable.

Pruning is unsat-core style: a constraint's full valuation is first checked
in one validity query; only when that fails does the solver descend to
per-qualifier checks to identify exactly the conjuncts to drop.  All
validity checks are issued through an incremental
:class:`~repro.smt.interface.SolverBackend` — the premises of a constraint
are asserted once per round and every per-qualifier probe runs in a
sub-scope on top of them, so unchanged premises are never re-encoded (their
selector literals and CNF are reused, per-round and across rounds).

In addition to the strongest solution the solver can greedily minimize it
into a locally *weakest* one (a minimal subset of each valuation keeping
every constraint valid), which is what the paper reports for inferred
preconditions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..logic import ops
from ..logic.formulas import Formula
from ..logic.substitution import apply_assignment, substitute
from ..smt.interface import SolverBackend
from ..smt.sets import mentions_sets
from ..smt.solver import IncrementalSolver
from .constraints import HornConstraint
from .spaces import QualifierSpace, SpacesLike, as_space_map

#: A candidate valuation: unknown name -> conjunction of qualifiers.
Assignment = Dict[str, Tuple[Formula, ...]]


@dataclass
class HornStatistics:
    """Counters describing one solver's work."""

    validity_checks: int = 0
    fixpoint_rounds: int = 0
    weakenings: int = 0
    pruned_qualifiers: int = 0
    #: Qualifiers pruned directly from a counterexample model, without a
    #: per-qualifier validity probe of their own.
    model_pruned_qualifiers: int = 0


@dataclass
class HornSolution:
    """Outcome of :meth:`HornSolver.solve`.

    ``assignment`` is the strongest valuation found (the greatest fixpoint
    of the weakening constraints); when ``solved`` is false, ``failed``
    names a definite constraint invalid under it — i.e. invalid under every
    assignment in the qualifier space.  ``weakest`` is the greedily
    minimized valuation, present only when minimization was requested.
    """

    solved: bool
    assignment: Assignment
    weakest: Optional[Assignment] = None
    failed: Optional[HornConstraint] = None

    def formula_for(self, unknown: str) -> Formula:
        """The strongest valuation of ``unknown`` as one conjunction."""
        return ops.conj(self.assignment.get(unknown, ()))


class HornSolver:
    """Solves systems of Horn constraints over predicate unknowns."""

    def __init__(self, backend: Optional[SolverBackend] = None) -> None:
        self._backend = backend if backend is not None else IncrementalSolver()
        self.statistics = HornStatistics()

    @property
    def backend(self) -> SolverBackend:
        """The incremental backend issuing this solver's validity checks."""
        return self._backend

    # -- public API ----------------------------------------------------------

    def solve(
        self,
        constraints: Sequence[HornConstraint],
        spaces: SpacesLike,
        minimize: bool = False,
    ) -> HornSolution:
        """Find the strongest assignment making every constraint valid.

        Unknowns that appear in constraints but have no qualifier space get
        the empty valuation ``True`` (they cannot constrain anything).
        """
        space_map = as_space_map(spaces)
        assignment = self._initial_assignment(constraints, space_map)
        weakening = [c for c in constraints if not c.is_definite()]
        definite = [c for c in constraints if c.is_definite()]

        changed = True
        while changed:
            changed = False
            self.statistics.fixpoint_rounds += 1
            for constr in weakening:
                if self._weaken(constr, assignment):
                    changed = True

        solution = HornSolution(True, dict(assignment))
        for constr in definite:
            if not self._constraint_valid(constr, assignment):
                solution.solved = False
                solution.failed = constr
                return solution

        if minimize:
            solution.weakest = self._minimize(constraints, assignment)
        return solution

    # -- fixpoint internals --------------------------------------------------

    @staticmethod
    def _initial_assignment(
        constraints: Sequence[HornConstraint],
        space_map: Dict[str, QualifierSpace],
    ) -> Assignment:
        names = set()
        for constr in constraints:
            names |= constr.unknowns()
        return {name: space_map[name].qualifiers if name in space_map else () for name in names}

    def _weaken(self, constr: HornConstraint, assignment: Assignment) -> bool:
        """Prune the conclusion unknown's valuation; True if it shrank."""
        target = constr.conclusion_unknown()
        assert target is not None
        current = assignment[target.name]
        if not current:
            return False
        premises = [apply_assignment(p, assignment) for p in constr.premises]
        pending = dict(target.substitution)
        goals = [substitute(q, pending) if pending else q for q in current]

        # Set-sensitive constraints go through is_valid_implication per
        # qualifier (the backend conjoins them so set elimination sees one
        # universe); the batched counterexample path below cannot read set
        # atoms back from a model.
        if any(mentions_sets(p) for p in premises) or any(mentions_sets(g) for g in goals):
            self.statistics.validity_checks += 1
            if self._backend.is_valid_implication(premises, ops.conj(goals)):
                return False
            kept: List[Formula] = []
            for qualifier, goal in zip(current, goals):
                self.statistics.validity_checks += 1
                if self._backend.is_valid_implication(premises, goal):
                    kept.append(qualifier)
        else:
            # The premises are asserted (and encoded) once for the whole
            # sweep.  The fast-path query doubles as a batched probe: when
            # the full valuation is not entailed, the counterexample model
            # is read back and every qualifier it falsifies is pruned in
            # one pass; only qualifiers the model happens to satisfy fall
            # back to a per-qualifier validity check.
            kept = []
            retry: List[Tuple[Formula, Formula]] = []
            with self._backend.scoped():
                for premise in premises:
                    self._backend.assert_(premise)
                with self._backend.scoped():
                    self._backend.assert_(ops.not_(ops.conj(goals)))
                    self.statistics.validity_checks += 1
                    values = self._backend.check_evaluating(goals)
                if values is None:
                    return False  # the whole current valuation is entailed
                for qualifier, goal, value in zip(current, goals, values):
                    if value is False:
                        self.statistics.model_pruned_qualifiers += 1
                    else:
                        retry.append((qualifier, goal))
                for qualifier, goal in retry:
                    with self._backend.scoped():
                        self._backend.assert_(ops.not_(goal))
                        self.statistics.validity_checks += 1
                        if not self._backend.check():
                            kept.append(qualifier)

        dropped = len(current) - len(kept)
        if dropped:
            assignment[target.name] = tuple(kept)
            self.statistics.weakenings += 1
            self.statistics.pruned_qualifiers += dropped
        return dropped > 0

    def _constraint_valid(self, constr: HornConstraint, assignment: Assignment) -> bool:
        premises = [apply_assignment(p, assignment) for p in constr.premises]
        conclusion = apply_assignment(constr.conclusion, assignment)
        self.statistics.validity_checks += 1
        return self._backend.is_valid_implication(premises, conclusion)

    # -- weakest-solution minimization ---------------------------------------

    def _minimize(
        self, constraints: Sequence[HornConstraint], assignment: Assignment
    ) -> Assignment:
        """Greedily drop qualifiers while every constraint stays valid.

        Dropping a qualifier from ``L[P]`` keeps constraints with ``P`` in
        the conclusion valid (fewer conjuncts to prove) but may break
        constraints with ``P`` in the premises, so each tentative drop is
        re-validated against the constraints mentioning ``P``.
        """
        weakest: Dict[str, List[Formula]] = {
            name: list(valuation) for name, valuation in assignment.items()
        }
        by_premise: Dict[str, List[HornConstraint]] = {name: [] for name in weakest}
        for constr in constraints:
            for name in constr.premise_unknowns():
                by_premise.setdefault(name, []).append(constr)

        for name in sorted(weakest):
            affected = by_premise.get(name, ())
            for qualifier in list(weakest[name]):
                weakest[name].remove(qualifier)
                trial = {n: tuple(v) for n, v in weakest.items()}
                if not all(self._constraint_valid(c, trial) for c in affected):
                    weakest[name].append(qualifier)
        return {name: tuple(valuation) for name, valuation in weakest.items()}
