"""Differential abduction: the candidate-set Horn path against the oracle.

:func:`repro.synth.conditions.abduce_condition` (candidate-set search with
MUS pruning, level stop, fail-fast, and antichain filtering) must agree
*everywhere* with :func:`repro.synth.conditions._abduce_brute_force` (the
exhaustive smallest-first subset walk): same abducible/unabducible verdict,
same surviving guard antichain, and in particular identical rejection of
vacuous conditions (guards unsatisfiable at the abduction point).  The
instances below are randomized but seeded, so a failure reproduces.
"""

import random

import pytest

from repro.logic import ops
from repro.logic.formulas import Var
from repro.logic.qualifiers import make_qualifier, placeholder
from repro.logic.sorts import INT
from repro.synth.conditions import _abduce_brute_force, abduce_condition
from repro.syntax import parse_term
from repro.syntax.types import ScalarType, int_type
from repro.typecheck import EMPTY, TypecheckSession
from repro.typecheck.environment import Environment

pytestmark = pytest.mark.timeout(120)

X = Var("x", INT)
Y = Var("y", INT)
ZERO = ops.int_lit(0)


def _nu():
    from repro.logic.formulas import value_var

    return value_var(INT)


#: Atoms a random goal refinement is assembled from (over ``nu``/x/y/0).
def _goal_atoms():
    nu = _nu()
    return [
        ops.eq(nu, X),
        ops.eq(nu, Y),
        ops.eq(nu, ZERO),
        ops.ge(nu, X),
        ops.ge(nu, Y),
        ops.le(nu, X),
        ops.le(nu, ZERO),
        ops.ge(nu, ZERO),
        ops.le(X, Y),
        ops.neq(nu, ZERO),
    ]


#: Optional refinements a binding may carry (over its own ``nu``).
def _binding_refinements():
    nu = _nu()
    return [
        None,
        ops.ge(nu, ZERO),
        ops.le(nu, ZERO),
        ops.gt(nu, ZERO),
        ops.neq(nu, ZERO),
    ]


def _qualifiers(rng: random.Random):
    a, b = placeholder(0, INT), placeholder(1, INT)
    quals = [make_qualifier(ops.le(a, b))]
    if rng.random() < 0.5:
        quals.append(make_qualifier(ops.eq(a, b)))
    return quals


def _goal(rng: random.Random) -> ScalarType:
    atoms = _goal_atoms()
    kind = rng.random()
    if kind < 0.35:
        body = rng.choice(atoms)
    elif kind < 0.65:
        body = ops.conj([rng.choice(atoms), rng.choice(atoms)])
    elif kind < 0.85:
        body = ops.disj([rng.choice(atoms), rng.choice(atoms)])
    else:
        body = ops.implies(rng.choice(atoms), rng.choice(atoms))
    return int_type(body)


def _instance(seed: int):
    rng = random.Random(seed)
    session = TypecheckSession(qualifiers=_qualifiers(rng), literals=(ZERO,))
    env: Environment = EMPTY
    for name in ("x", "y"):
        refinement = rng.choice(_binding_refinements())
        env = env.bind(name, int_type() if refinement is None else int_type(refinement))
    goal = _goal(rng)
    candidate = parse_term(rng.choice(["x", "y", "0"]))
    return session, env, candidate, goal


def _equivalent(session, context, lhs, rhs) -> bool:
    premises = list(context)
    backend = session.backend
    return backend.is_valid_implication(
        premises + [ops.conj(lhs)], ops.conj(rhs)
    ) and backend.is_valid_implication(premises + [ops.conj(rhs)], ops.conj(lhs))


def _run_block(seeds):
    """Run a block of seeded instances; return per-category tallies."""
    tallies = {"none": 0, "trivial": 0, "guarded": 0}
    for seed in seeds:
        session, env, candidate, goal = _instance(seed)
        fast = abduce_condition(session, env, candidate, goal)
        slow = _abduce_brute_force(session, env, candidate, goal)
        assert (fast is None) == (slow is None), (
            f"seed {seed}: candidate-set={fast!r} brute-force={slow!r}"
        )
        if fast is None:
            tallies["none"] += 1
            continue
        assert slow is not None
        if fast.is_trivial():
            tallies["trivial"] += 1
        else:
            tallies["guarded"] += 1
        # The full antichains agree member for member (both paths order
        # solutions canonically and break ties by entailment).
        assert fast.candidates == slow.candidates, (
            f"seed {seed}: candidate-set={fast.candidates!r} "
            f"brute-force={slow.candidates!r}"
        )
        # ... and the chosen weakest guard is logically the same thing.
        assert _equivalent(session, env.embedding(), fast.qualifiers, slow.qualifiers)
    return tallies


BLOCKS = [range(start, start + 25) for start in range(0, 200, 25)]


@pytest.mark.parametrize("seeds", BLOCKS, ids=[f"seeds{b.start:03d}" for b in BLOCKS])
def test_candidate_set_agrees_with_brute_force(seeds):
    _run_block(seeds)


def test_instance_pool_covers_every_verdict():
    """The 200 differential instances genuinely exercise all three
    verdicts — unabducible, trivially true, and guarded — so agreement on
    them is not agreement on a degenerate distribution."""
    tallies = {"none": 0, "trivial": 0, "guarded": 0}
    for block in BLOCKS:
        for key, count in _run_block(block).items():
            tallies[key] += count
    assert tallies["none"] >= 10, tallies
    assert tallies["trivial"] >= 10, tallies
    assert tallies["guarded"] >= 20, tallies


def test_vacuous_condition_rejected_identically():
    """A candidate needing a guard that contradicts the abduction point is
    unabducible on both paths: ``y`` under ``x > 0`` can only meet
    ``nu <= 0 && nu == y`` via ``y <= 0 && x <= 0``-style guards, every
    one of which is unsatisfiable here."""
    session = TypecheckSession(
        qualifiers=[make_qualifier(ops.le(placeholder(0, INT), placeholder(1, INT)))],
        literals=(ZERO,),
    )
    nu = _nu()
    env = EMPTY.bind("x", int_type(ops.gt(nu, ZERO)))
    goal = int_type(ops.conj([ops.le(nu, ZERO), ops.le(X, ZERO)]))
    fast = abduce_condition(session, env, parse_term("0"), goal)
    slow = _abduce_brute_force(session, env, parse_term("0"), goal)
    assert fast is None and slow is None
