"""A small DPLL SAT solver.

This is the propositional core of the lazy SMT loop (``repro.smt.solver``)
and the designated "map" solver of the MARCO-style MUS enumerator stubbed
in :class:`repro.typecheck.musfix.MusFixSolver` (implementation tracked in
ROADMAP).  Clauses are lists of non-zero integers in DIMACS
convention: positive literal ``v`` means variable ``v`` is true, ``-v`` means
it is false.

The formulas produced by refinement type checking are small (tens to a few
hundred variables), so the solver favours simplicity: unit propagation,
a most-occurring-literal decision heuristic, and chronological backtracking.
Learned blocking clauses can be added between calls via :meth:`SatSolver.add_clause`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set


class Unsatisfiable(Exception):
    """Raised internally when the clause set is trivially unsatisfiable."""


@dataclass
class SatResult:
    """Outcome of a SAT call: ``satisfiable`` plus a model when it is.

    ``assigned`` holds the variables the search actually decided or
    propagated; every other variable in ``model`` is a don't-care completed
    with ``False``.  Theory reasoning should restrict itself to ``assigned``
    — don't-care atoms impose no constraint on the formula.
    """

    satisfiable: bool
    model: Dict[int, bool] = field(default_factory=dict)
    assigned: FrozenSet[int] = frozenset()


class SatSolver:
    """An incremental DPLL solver over integer literals."""

    def __init__(self) -> None:
        self._clauses: List[List[int]] = []
        self._variables: Set[int] = set()

    # -- clause management -------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a clause (a disjunction of literals)."""
        clause = sorted(set(literals))
        if not clause:
            # An empty clause makes the problem unsatisfiable; keep it so the
            # next solve call reports that.
            self._clauses.append([])
            return
        if any(-lit in clause for lit in clause):
            return  # tautology
        self._clauses.append(clause)
        for lit in clause:
            self._variables.add(abs(lit))

    def add_clauses(self, clauses: Iterable[Iterable[int]]) -> None:
        """Add several clauses."""
        for clause in clauses:
            self.add_clause(clause)

    @property
    def num_clauses(self) -> int:
        """Number of stored clauses."""
        return len(self._clauses)

    # -- solving -----------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = ()) -> SatResult:
        """Search for a model of the stored clauses extended with the given
        assumption literals."""
        assignment: Dict[int, bool] = {}
        try:
            for literal in assumptions:
                self._assign_literal(assignment, literal)
        except Unsatisfiable:
            return SatResult(False)
        clauses = [list(clause) for clause in self._clauses]
        if any(not clause for clause in clauses):
            return SatResult(False)
        result = self._dpll(clauses, assignment)
        if result is None:
            return SatResult(False)
        assigned = frozenset(result)
        # Complete the model: unconstrained variables default to False.
        for variable in self._variables:
            result.setdefault(variable, False)
        return SatResult(True, result, assigned)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _assign_literal(assignment: Dict[int, bool], literal: int) -> None:
        variable, value = abs(literal), literal > 0
        if variable in assignment and assignment[variable] != value:
            raise Unsatisfiable()
        assignment[variable] = value

    def _dpll(
        self, clauses: List[List[int]], assignment: Dict[int, bool]
    ) -> Optional[Dict[int, bool]]:
        assignment = dict(assignment)
        while True:
            status, clauses = self._propagate(clauses, assignment)
            if status is False:
                return None
            if not clauses:
                return assignment
            literal = self._choose_literal(clauses)
            for value in (literal, -literal):
                branch_assignment = dict(assignment)
                try:
                    self._assign_literal(branch_assignment, value)
                except Unsatisfiable:
                    continue
                branch_clauses = [list(c) for c in clauses]
                result = self._dpll(branch_clauses, branch_assignment)
                if result is not None:
                    return result
            return None

    def _propagate(self, clauses: List[List[int]], assignment: Dict[int, bool]):
        """Simplify clauses under the assignment and run unit propagation.

        Returns ``(False, _)`` on conflict, otherwise ``(True, remaining)``.
        """
        changed = True
        while changed:
            changed = False
            remaining: List[List[int]] = []
            for clause in clauses:
                simplified: List[int] = []
                satisfied = False
                for literal in clause:
                    variable, wanted = abs(literal), literal > 0
                    if variable in assignment:
                        if assignment[variable] == wanted:
                            satisfied = True
                            break
                    else:
                        simplified.append(literal)
                if satisfied:
                    continue
                if not simplified:
                    return False, clauses
                if len(simplified) == 1:
                    try:
                        self._assign_literal(assignment, simplified[0])
                    except Unsatisfiable:
                        return False, clauses
                    changed = True
                else:
                    remaining.append(simplified)
            clauses = remaining
        return True, clauses

    @staticmethod
    def _choose_literal(clauses: List[List[int]]) -> int:
        """Pick the literal with the highest occurrence count."""
        counts: Dict[int, int] = {}
        for clause in clauses:
            for literal in clause:
                counts[literal] = counts.get(literal, 0) + 1
        return max(counts, key=counts.get)


def solve_clauses(clauses: Iterable[Iterable[int]], assumptions: Sequence[int] = ()) -> SatResult:
    """One-shot convenience wrapper around :class:`SatSolver`."""
    solver = SatSolver()
    solver.add_clauses(clauses)
    return solver.solve(assumptions)
