#!/usr/bin/env python
"""Perf smoke benchmark: the datatype workloads through the type checker.

Times the full pipeline — parse, match elaboration, fix termination
strengthening, Horn solving over the session's incremental backend — on
the paper's list benchmarks (``length``, ``append``, ``replicate``,
``stutter``) plus one rejection workload that exercises the failure path::

    PYTHONPATH=src python scripts/bench_typecheck.py --output BENCH_typecheck.json

As with ``bench_horn.py``, deterministic solver counters are recorded
next to the wall-clock numbers so a perf regression can be triaged on any
machine; CI compares the timings against the committed baseline with
``scripts/check_bench_regression.py``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import benchlib  # noqa: E402

from repro.syntax import len_measure, list_datatype, parse_term, parse_type  # noqa: E402
from repro.typecheck import EMPTY, TypecheckSession  # noqa: E402

COMPONENTS = {
    "inc": "a:Int -> {Int | nu == a + 1}",
    "dec": "a:Int -> {Int | nu == a - 1}",
    "leq": "a:Int -> b:Int -> {Bool | nu <==> a <= b}",
}

WORKLOADS = {
    "typecheck.length": (
        "fix length . \\xs . match xs with Nil -> 0 | Cons y ys -> inc (length ys)",
        "xs:List a -> {Int | nu == len(xs)}",
        True,
    ),
    "typecheck.append": (
        "fix append . \\xs . \\ys . "
        "match xs with Nil -> ys | Cons z zs -> Cons z (append zs ys)",
        "xs:List a -> ys:List a -> {List a | len(nu) == len(xs) + len(ys)}",
        True,
    ),
    "typecheck.replicate": (
        "fix replicate . \\n . \\x . if leq n 0 then Nil else Cons x (replicate (dec n) x)",
        "n:{Int | nu >= 0} -> x:a -> {List a | len(nu) == n}",
        True,
    ),
    "typecheck.stutter": (
        "fix stutter . \\xs . "
        "match xs with Nil -> Nil | Cons y ys -> Cons y (Cons y (stutter ys))",
        "xs:List a -> {List a | len(nu) == len(xs) + len(xs)}",
        True,
    ),
    "typecheck.stutter-reject": (
        "fix stutter . \\xs . match xs with Nil -> Nil | Cons y ys -> Cons y (stutter ys)",
        "xs:List a -> {List a | len(nu) == len(xs) + len(xs)}",
        False,
    ),
}


def run_workload(term_src: str, sig_src: str, expect_solved: bool):
    start = time.perf_counter()
    session = TypecheckSession(datatypes=[list_datatype()], measure_defs=[len_measure()])
    env = session.bind_constructors(EMPTY)
    for name, sig in COMPONENTS.items():
        env = env.bind(name, parse_type(sig))
    goal = parse_type(sig_src, measures=session.measures)
    session.check_program(parse_term(term_src), goal, env, where="bench")
    outcome = session.solve()
    elapsed = time.perf_counter() - start
    assert outcome.solved == expect_solved, "benchmark workload changed verdict"
    return elapsed, {
        "constraints": len(session.constraints),
        "validity_checks": session.last_solver.statistics.validity_checks,
        "sat_queries": session.backend.statistics.sat_queries,
    }


BENCHMARKS = {
    name: (lambda spec=spec: run_workload(*spec)) for name, spec in WORKLOADS.items()
}


def main() -> int:
    return benchlib.run_suite(
        "typecheck-perf-smoke", BENCHMARKS, "BENCH_typecheck.json", 5, __doc__
    )


if __name__ == "__main__":
    raise SystemExit(main())
