#!/usr/bin/env python
"""Perf smoke benchmark: time HornSolver on the paper's max/abs systems.

Runs each system several times on a fresh solver (so no memoized state
leaks between repetitions), records wall-clock and solver counters, and
writes a JSON report for the CI artifact trail::

    PYTHONPATH=src python scripts/bench_horn.py --output BENCH_horn.json

The report intentionally records *counters* (validity checks, SAT queries,
fixpoint rounds) next to the timings: counter regressions reproduce
deterministically on any machine, so they are the first thing to inspect
when the timing trend moves.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(Path(__file__).resolve().parent))

import benchlib  # noqa: E402

from repro.horn import (  # noqa: E402
    HornSolver,
    QualifierSpace,
    SolveOptions,
    build_space,
    constraint,
)
from repro.logic import ops  # noqa: E402
from repro.logic.formulas import IntLit, Unknown, value_var  # noqa: E402
from repro.logic.qualifiers import default_qualifiers  # noqa: E402
from repro.logic.sorts import INT  # noqa: E402
from repro.syntax import app, arrow, if_, int_type, lam, lit, parse_type, v  # noqa: E402
from repro.syntax.types import INT_BASE  # noqa: E402
from repro.typecheck import EMPTY, TypecheckSession  # noqa: E402

x = ops.var("x", INT)
y = ops.var("y", INT)
nu = value_var(INT)


def max_horn_system():
    space = build_space("P", default_qualifiers(), [x, y], value_sort=INT)
    constraints = [
        constraint([ops.ge(x, y)], Unknown("P", (("_v", x),)), "then"),
        constraint([ops.not_(ops.ge(x, y))], Unknown("P", (("_v", y),)), "else"),
        constraint([Unknown("P")], ops.and_(ops.ge(nu, x), ops.ge(nu, y)), "spec"),
    ]
    return constraints, [space]


def abs_horn_system():
    space = build_space("P", default_qualifiers(), [x, IntLit(0)], value_sort=INT)
    constraints = [
        constraint([ops.ge(x, IntLit(0))], Unknown("P", (("_v", x),)), "then"),
        constraint([ops.lt(x, IntLit(0))], Unknown("P", (("_v", ops.neg(x)),)), "else"),
        constraint([Unknown("P")], ops.ge(nu, IntLit(0)), "spec"),
    ]
    return constraints, [space]


def disjunctive_horn_system():
    """A guard whose weakest consistent strengthening is disjunctive over
    the pool: single-candidate (greedy) search dead-ends on it, so solving
    exercises MUS enumeration and candidate pruning (see test_horn.py)."""
    zero, one, neg_one = IntLit(0), IntLit(1), IntLit(-1)
    guard_pool = (ops.ge(x, zero), ops.ge(x, one), ops.le(x, zero), ops.le(x, neg_one))
    spaces = {
        "C": QualifierSpace("C", guard_pool, abducible=True),
        "P": QualifierSpace("P", (ops.le(nu, zero), ops.ge(nu, zero))),
    }
    constraints = [
        constraint([Unknown("C")], ops.neq(x, zero), "nonzero"),
        constraint([Unknown("C")], ops.le(x, zero), "nonpositive"),
        constraint([Unknown("C"), ops.eq(nu, x)], Unknown("P"), "flow"),
        constraint([Unknown("P")], ops.le(nu, zero), "use"),
    ]
    return constraints, spaces


def run_horn(system_builder):
    constraints, spaces = system_builder()
    solver = HornSolver()
    start = time.perf_counter()
    solution = solver.solve(constraints, spaces, SolveOptions(minimize=True))
    elapsed = time.perf_counter() - start
    assert solution.solved, "benchmark system must be solvable"
    return elapsed, {
        "validity_checks": solver.statistics.validity_checks,
        "fixpoint_rounds": solver.statistics.fixpoint_rounds,
        "pruned_qualifiers": solver.statistics.pruned_qualifiers,
        "sat_queries": solver.backend.statistics.sat_queries,
    }


def run_candidate_search(workers):
    constraints, spaces = disjunctive_horn_system()
    solver = HornSolver()
    start = time.perf_counter()
    solution = solver.solve(constraints, spaces, SolveOptions(max_workers=workers))
    elapsed = time.perf_counter() - start
    assert solution.solved, "disjunctive benchmark system must be solvable"
    return elapsed, {
        "candidates_explored": solver.statistics.candidates_explored,
        "candidates_pruned": solver.statistics.candidates_pruned,
        "muses_enumerated": solver.statistics.muses_enumerated,
        "lemmas_shared": solver.statistics.lemmas_shared,
        "survivors": len(solution.candidates),
    }


def run_typecheck_max():
    geq = parse_type("a:Int -> b:Int -> {Bool | nu <==> a >= b}")
    env = EMPTY.bind("geq", geq)
    term = lam("x", "y", body=if_(app(v("geq"), v("x"), v("y")), v("x"), v("y")))
    start = time.perf_counter()
    session = TypecheckSession()
    inner = env.bind("x", int_type()).bind("y", int_type())
    result = session.fresh_scalar(inner, INT_BASE)
    sig = arrow("x", int_type(), arrow("y", int_type(), result))
    session.check(env, term, sig, where="max")
    spec = parse_type("x:Int -> y:Int -> {Int | nu >= x && nu >= y}")
    session.subtype(env, sig, spec, where="max-spec")
    outcome = session.solve(SolveOptions(minimize=True))
    elapsed = time.perf_counter() - start
    assert outcome.solved
    return elapsed, {
        "constraints": len(session.constraints),
        "validity_checks": session.last_solver.statistics.validity_checks,
        "sat_queries": session.backend.statistics.sat_queries,
    }


def run_typecheck_abs():
    geq = parse_type("a:Int -> b:Int -> {Bool | nu <==> a >= b}")
    neg = parse_type("a:Int -> {Int | nu == 0 - a}")
    env = EMPTY.bind("geq", geq).bind("neg", neg)
    term = lam("x", body=if_(app(v("geq"), v("x"), lit(0)), v("x"), app(v("neg"), v("x"))))
    start = time.perf_counter()
    session = TypecheckSession(literals=[ops.int_lit(0)])
    inner = env.bind("x", int_type())
    result = session.fresh_scalar(inner, INT_BASE)
    sig = arrow("x", int_type(), result)
    session.check(env, term, sig, where="abs")
    session.subtype(env, sig, parse_type("x:Int -> {Int | nu >= 0}"), "abs-spec")
    outcome = session.solve(SolveOptions(minimize=True))
    elapsed = time.perf_counter() - start
    assert outcome.solved
    return elapsed, {
        "constraints": len(session.constraints),
        "validity_checks": session.last_solver.statistics.validity_checks,
        "sat_queries": session.backend.statistics.sat_queries,
    }


BENCHMARKS = {
    "horn.max": lambda: run_horn(max_horn_system),
    "horn.abs": lambda: run_horn(abs_horn_system),
    "horn.disjunctive": lambda: run_candidate_search(workers=1),
    "horn.disjunctive.workers2": lambda: run_candidate_search(workers=2),
    "typecheck.max": run_typecheck_max,
    "typecheck.abs": run_typecheck_abs,
}


def main() -> int:
    return benchlib.run_suite("horn-perf-smoke", BENCHMARKS, "BENCH_horn.json", 5, __doc__)


if __name__ == "__main__":
    raise SystemExit(main())
