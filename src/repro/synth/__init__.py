"""Round-trip program synthesis (Secs. 4–5 of the paper).

The sixth layer of the reproduction: goal-directed I-term generation
(lambdas, match, fix, conditionals) over an E-term enumerator that prunes
candidates with early local liquid checks on the shared incremental SMT
backend, plus condition abduction for branch guards.  The
:class:`Synthesizer` drives the loop; ``python -m repro synth`` exposes it
over ``.sq`` files.
"""

from .conditions import AbducedCondition, abduce_condition
from .enumerator import EnumerationStatistics, ETermEnumerator
from .synthesizer import (
    SynthesisGoal,
    SynthesisResult,
    Synthesizer,
    describe_goal,
    synthesize,
)

__all__ = [
    "AbducedCondition",
    "ETermEnumerator",
    "EnumerationStatistics",
    "SynthesisGoal",
    "SynthesisResult",
    "Synthesizer",
    "abduce_condition",
    "describe_goal",
    "synthesize",
]
