"""Generic traversals over refinement formulas.

Provides a bottom-up map (:func:`transform`), subterm iteration
(:func:`subterms`), and collection helpers used by substitution, the
qualifier extractor, and the SMT front end.
"""

from __future__ import annotations

from typing import Callable, Iterator, Set

from .formulas import (
    App,
    Binary,
    BoolLit,
    Formula,
    IntLit,
    Ite,
    SetLit,
    Unary,
    Unknown,
    Var,
)


def transform(formula: Formula, fn: Callable[[Formula], Formula]) -> Formula:
    """Rebuild ``formula`` bottom-up, applying ``fn`` to every node after its
    children have been transformed."""
    if isinstance(formula, (BoolLit, IntLit, Var, Unknown)):
        return fn(formula)
    if isinstance(formula, Unary):
        return fn(Unary(formula.op, transform(formula.arg, fn)))
    if isinstance(formula, Binary):
        return fn(Binary(formula.op, transform(formula.lhs, fn), transform(formula.rhs, fn)))
    if isinstance(formula, Ite):
        return fn(
            Ite(
                transform(formula.cond, fn),
                transform(formula.then_, fn),
                transform(formula.else_, fn),
            )
        )
    if isinstance(formula, App):
        return fn(
            App(
                formula.func,
                tuple(transform(arg, fn) for arg in formula.args),
                formula.result_sort,
            )
        )
    if isinstance(formula, SetLit):
        return fn(
            SetLit(
                formula.element_sort,
                tuple(transform(el, fn) for el in formula.elements),
            )
        )
    raise TypeError(f"unknown formula node: {formula!r}")


def subterms(formula: Formula) -> Iterator[Formula]:
    """Yield every subterm of ``formula`` (including itself), pre-order."""
    yield formula
    if isinstance(formula, Unary):
        yield from subterms(formula.arg)
    elif isinstance(formula, Binary):
        yield from subterms(formula.lhs)
        yield from subterms(formula.rhs)
    elif isinstance(formula, Ite):
        yield from subterms(formula.cond)
        yield from subterms(formula.then_)
        yield from subterms(formula.else_)
    elif isinstance(formula, App):
        for arg in formula.args:
            yield from subterms(arg)
    elif isinstance(formula, SetLit):
        for el in formula.elements:
            yield from subterms(el)


def free_vars(formula: Formula) -> Set[str]:
    """Names of all variables occurring in ``formula``."""
    return {node.name for node in subterms(formula) if isinstance(node, Var)}


def unknowns(formula: Formula) -> Set[str]:
    """Names of all predicate unknowns occurring in ``formula``."""
    return {node.name for node in subterms(formula) if isinstance(node, Unknown)}


def has_unknowns(formula: Formula) -> bool:
    """Does ``formula`` contain any predicate unknown?"""
    return any(isinstance(node, Unknown) for node in subterms(formula))


def measure_apps(formula: Formula) -> Set[App]:
    """All uninterpreted-function applications occurring in ``formula``."""
    return {node for node in subterms(formula) if isinstance(node, App)}
