"""Congruence closure for equality with uninterpreted functions (EUF).

Measures (``len``, ``elems``, ``keys``, ...) are uninterpreted functions in
the refinement logic, so the theory solver needs congruence reasoning:
``t1 = t2`` must entail ``len t1 = len t2``.  This module implements a
classic union-find based congruence closure over first-order terms.

Terms are plain tuples: ``("app", fname, child_id, ...)`` for applications
and ``("const", name)`` for constants, interned to integer ids by
:class:`TermBank`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple


@dataclass
class TermBank:
    """Interns first-order terms as integer ids."""

    _terms: List[Tuple] = field(default_factory=list)
    _ids: Dict[Tuple, int] = field(default_factory=dict)

    def constant(self, name: str) -> int:
        """Intern a constant symbol."""
        return self._intern(("const", name))

    def apply(self, function: str, args: Sequence[int]) -> int:
        """Intern an application of ``function`` to already-interned args."""
        return self._intern(("app", function) + tuple(args))

    def _intern(self, term: Tuple) -> int:
        if term in self._ids:
            return self._ids[term]
        term_id = len(self._terms)
        self._terms.append(term)
        self._ids[term] = term_id
        return term_id

    def term(self, term_id: int) -> Tuple:
        """The structure of an interned term."""
        return self._terms[term_id]

    def __len__(self) -> int:
        return len(self._terms)

    def all_ids(self) -> range:
        """Ids of all interned terms."""
        return range(len(self._terms))


class CongruenceClosure:
    """Union-find based congruence closure.

    Usage: intern terms through :attr:`bank`, assert equalities and
    disequalities, then ask :meth:`is_consistent`, :meth:`are_equal`, or
    enumerate entailed equalities over a set of terms.
    """

    def __init__(self, bank: Optional[TermBank] = None) -> None:
        self.bank = bank if bank is not None else TermBank()
        self._parent: Dict[int, int] = {}
        self._disequalities: List[Tuple[int, int]] = []
        self._dirty = False
        self._rebuilt_size = -1

    # -- union-find --------------------------------------------------------

    def _find(self, term_id: int) -> int:
        parent = self._parent.get(term_id, term_id)
        if parent == term_id:
            return term_id
        root = self._find(parent)
        self._parent[term_id] = root
        return root

    def _union(self, a: int, b: int) -> None:
        root_a, root_b = self._find(a), self._find(b)
        if root_a != root_b:
            self._parent[root_a] = root_b
            self._dirty = True

    # -- assertions ----------------------------------------------------------

    def assert_equal(self, a: int, b: int) -> None:
        """Assert that the two terms are equal."""
        self._union(a, b)
        self._rebuild_congruence()

    def assert_distinct(self, a: int, b: int) -> None:
        """Assert that the two terms are distinct."""
        self._disequalities.append((a, b))

    # -- queries -------------------------------------------------------------

    def are_equal(self, a: int, b: int) -> bool:
        """Are the two terms known to be equal?"""
        self._rebuild_congruence()
        return self._find(a) == self._find(b)

    def is_consistent(self) -> bool:
        """Do the asserted disequalities hold under the closure?

        Terms may have been interned (e.g. while asserting a disequality)
        after the last equality assertion, so congruence is re-established
        before checking — the result must not depend on assertion order.
        """
        self._rebuild_congruence()
        return all(not self.are_equal(a, b) for a, b in self._disequalities)

    def entailed_equalities(self, term_ids: Sequence[int]) -> List[Tuple[int, int]]:
        """All pairs among ``term_ids`` that the closure proves equal."""
        self._rebuild_congruence()
        pairs: List[Tuple[int, int]] = []
        for index, a in enumerate(term_ids):
            for b in term_ids[index + 1:]:
                if a != b and self.are_equal(a, b):
                    pairs.append((a, b))
        return pairs

    def classes(self) -> Dict[int, Set[int]]:
        """The current partition of all interned terms into classes."""
        self._rebuild_congruence()
        result: Dict[int, Set[int]] = {}
        for term_id in self.bank.all_ids():
            result.setdefault(self._find(term_id), set()).add(term_id)
        return result

    # -- congruence ----------------------------------------------------------

    def _rebuild_congruence(self) -> None:
        """Merge classes until congruence is a fixpoint.

        The term banks in refinement queries hold at most a few hundred
        terms, so the quadratic fixpoint loop is plenty fast.  The loop is
        skipped entirely when no union happened and no term was interned
        since the last rebuild.
        """
        if not self._dirty and self._rebuilt_size == len(self.bank):
            return
        changed = True
        while changed:
            changed = False
            signature: Dict[Tuple, int] = {}
            for term_id in self.bank.all_ids():
                term = self.bank.term(term_id)
                if term[0] != "app":
                    continue
                key = (term[1],) + tuple(self._find(arg) for arg in term[2:])
                other = signature.get(key)
                if other is None:
                    signature[key] = term_id
                elif self._find(other) != self._find(term_id):
                    self._union(other, term_id)
                    changed = True
        self._dirty = False
        self._rebuilt_size = len(self.bank)
