"""MUSFix: MARCO-style enumeration of minimal unsatisfiable subsets.

The paper's Horn solver (Sec. 5) does not track a *single* candidate
assignment the way :class:`repro.horn.HornSolver` currently does — it keeps
a **set** of candidates and, when a definite constraint fails, enumerates
minimal unsatisfiable subsets (MUSes) of the violated qualifier
combinations to prune the candidate set wholesale, MARCO-style: a
propositional "map" solver (:class:`repro.smt.sat.SatSolver`) proposes
unexplored seeds, each seed is grown/shrunk against the theory into an MSS
or MUS, and blocking clauses carve the power set down.

This module is the planned home of that enumerator; the interface below is
fixed so `repro.smt.sat`'s docstring and future callers have a stable
target, but the implementation ships with the multiple-candidate solver
generalization (see ROADMAP, "Multiple candidates / MUSFix").
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..horn.constraints import HornConstraint
from ..horn.spaces import QualifierSpace
from ..logic.formulas import Formula


class MusFixSolver:
    """Enumerates MUSes of refuted qualifier sets to prune candidates.

    Not implemented yet: every method raises :class:`NotImplementedError`.
    See ROADMAP ("Multiple candidates / MUSFix") for the plan.
    """

    def __init__(self, spaces: Dict[str, QualifierSpace]) -> None:
        self.spaces = spaces

    def enumerate_muses(
        self, constraint: HornConstraint, valuation: Sequence[Formula]
    ) -> Iterable[List[Formula]]:
        """Minimal subsets of ``valuation`` still refuting ``constraint``."""
        raise NotImplementedError(
            "MUS enumeration ships with the multiple-candidate Horn solver; "
            "see ROADMAP (Multiple candidates / MUSFix)"
        )

    def prune_candidates(
        self,
        candidates: Sequence[Dict[str, Sequence[Formula]]],
        constraint: HornConstraint,
    ) -> List[Dict[str, Sequence[Formula]]]:
        """Drop every candidate containing a known MUS of ``constraint``."""
        raise NotImplementedError(
            "candidate-set pruning ships with the multiple-candidate Horn "
            "solver; see ROADMAP (Multiple candidates / MUSFix)"
        )
