"""Sorts of the refinement logic.

The paper (Fig. 2) distinguishes interpreted sorts (``Bool``, ``Int``, sets)
from uninterpreted sorts used for datatype values and type variables.  Sorts
classify refinement *terms*; they are not program types (see
``repro.syntax.types`` for those).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class Sort:
    """Base class for all sorts."""

    def is_set(self) -> bool:
        return isinstance(self, SetSort)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


@dataclass(frozen=True)
class BoolSort(Sort):
    """Sort of boolean refinement terms (formulas)."""

    def __str__(self) -> str:
        return "Bool"


@dataclass(frozen=True)
class IntSort(Sort):
    """Sort of linear-integer-arithmetic terms."""

    def __str__(self) -> str:
        return "Int"


@dataclass(frozen=True)
class UninterpretedSort(Sort):
    """An uninterpreted sort, e.g. the sort of values of a datatype or of a
    type variable.  ``args`` carries the sorts of type parameters so that
    ``List Int`` and ``List Bool`` are distinct sorts."""

    name: str
    args: Tuple[Sort, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class SetSort(Sort):
    """Sort of finite sets of elements of ``element`` sort.

    The paper models sets with the theory of arrays; here they are a
    first-class sort handled by ``repro.smt.sets``.
    """

    element: Sort

    def __str__(self) -> str:
        return f"Set {self.element}"


@dataclass(frozen=True)
class VarSort(Sort):
    """A sort variable: the sort of a refinement term whose sort is not yet
    known (it stands for the sort of a program type variable ``alpha``)."""

    name: str

    def __str__(self) -> str:
        return f"?{self.name}"


BOOL = BoolSort()
INT = IntSort()


def set_of(element: Sort) -> SetSort:
    """Convenience constructor for set sorts."""
    return SetSort(element)


def data_sort(name: str, *args: Sort) -> UninterpretedSort:
    """Sort of values of datatype ``name`` applied to ``args``."""
    return UninterpretedSort(name, tuple(args))
