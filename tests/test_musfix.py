"""Tests for the MARCO-style MUS enumerator (Sec. 5 of the paper).

A MUS of (constraint, qualifier pool) is a minimal subset of the pool
whose conjunction is inconsistent with the constraint's concrete premises
— a guard fragment that can never be established where the constraint
applies.  The tests pin the three MARCO invariants (every enumerated MUS
is refuting, every enumerated MUS is minimal, map seeds never repeat),
check enumeration completeness against brute force on small pools, and
exercise pruning, budgets, and the portfolio lemma bus.
"""

from itertools import combinations

import pytest

from repro.horn import HornConstraint, constraint
from repro.horn.musfix import MusFixSolver
from repro.logic import ops
from repro.logic.formulas import IntLit, Unknown
from repro.logic.sorts import INT
from repro.smt.solver import IncrementalSolver

x = ops.var("x", INT)
ZERO = IntLit(0)
ONE = IntLit(1)
NEG_ONE = IntLit(-1)

#: Pool with three minimal inconsistent pairs and no inconsistent singleton.
POOL = (ops.ge(x, ZERO), ops.ge(x, ONE), ops.le(x, ZERO), ops.le(x, NEG_ONE))


def guard_constraint(*hard):
    """A definite constraint guarded by the abducible ``C`` with the given
    concrete premises."""
    return constraint([Unknown("C"), *hard], ops.neq(x, ZERO), "demo")


def consistent(subset, hard=()):
    backend = IncrementalSolver()
    with backend.scoped():
        for premise in hard:
            backend.assert_(premise)
        return backend.check_assuming(subset)


def brute_force_muses(pool, hard=()):
    """All minimal subsets of ``pool`` inconsistent with ``hard``,
    smallest-first so the superset filter leaves exactly the minimal ones."""
    muses = []
    for size in range(1, len(pool) + 1):
        for subset in combinations(pool, size):
            if any(set(mus) <= set(subset) for mus in muses):
                continue
            if not consistent(subset, hard):
                muses.append(subset)
    return {frozenset(mus) for mus in muses}


class TestMarcoInvariants:
    def test_every_mus_is_refuting_and_minimal(self):
        constr = guard_constraint()
        solver = MusFixSolver({})
        muses = solver.enumerate_muses(constr, POOL)
        assert muses, "the demo pool has inconsistent pairs"
        for mus in muses:
            assert not consistent(mus), f"MUS {mus} is not refuting"
            for dropped in mus:
                rest = [q for q in mus if q is not dropped]
                assert consistent(rest), f"MUS {mus} is not minimal (drop {dropped})"

    def test_seeds_never_repeat(self):
        constr = guard_constraint()
        solver = MusFixSolver({})
        solver.enumerate_muses(constr, POOL)
        seeds = solver.seeds_for(constr, POOL)
        assert len(seeds) > 1
        assert len(seeds) == len(set(seeds)), "blocking clauses must prevent repeats"

    def test_enumeration_is_complete_on_small_pools(self):
        constr = guard_constraint()
        solver = MusFixSolver({})
        found = {frozenset(mus) for mus in solver.enumerate_muses(constr, POOL)}
        assert found == brute_force_muses(POOL)
        # the known answer, spelled out: the three contradictory pairs
        assert found == {
            frozenset({ops.ge(x, ZERO), ops.le(x, NEG_ONE)}),
            frozenset({ops.ge(x, ONE), ops.le(x, ZERO)}),
            frozenset({ops.ge(x, ONE), ops.le(x, NEG_ONE)}),
        }

    def test_hard_premises_shift_the_muses(self):
        # Against the hard fact x >= 5 the lower bounds are fine and each
        # upper bound is inconsistent alone.
        hard = ops.ge(x, IntLit(5))
        constr = guard_constraint(hard)
        solver = MusFixSolver({})
        found = {frozenset(mus) for mus in solver.enumerate_muses(constr, POOL)}
        assert found == brute_force_muses(POOL, (hard,))
        assert found == {
            frozenset({ops.le(x, ZERO)}),
            frozenset({ops.le(x, NEG_ONE)}),
        }

    def test_contradictory_hard_premises_yield_no_muses(self):
        # The constraint is vacuous for *every* valuation: that is no
        # valuation's fault, so nothing may be pruned.
        constr = guard_constraint(ops.lt(x, ZERO), ops.gt(x, ZERO))
        solver = MusFixSolver({})
        assert solver.enumerate_muses(constr, POOL) == []

    def test_fully_consistent_pool_yields_no_muses(self):
        pool = (ops.ge(x, ZERO), ops.ge(x, ONE))
        constr = guard_constraint()
        solver = MusFixSolver({})
        assert solver.enumerate_muses(constr, pool) == []


class TestPruneCandidates:
    def test_candidates_containing_a_mus_are_dropped(self):
        constr = guard_constraint()
        solver = MusFixSolver({})
        solver.enumerate_muses(constr, POOL)
        doomed = {"C": (ops.ge(x, ONE), ops.le(x, ZERO))}
        superset_doomed = {"C": (ops.ge(x, ZERO), ops.ge(x, ONE), ops.le(x, ZERO))}
        viable = {"C": (ops.le(x, NEG_ONE),)}
        empty = {"C": ()}
        survivors = solver.prune_candidates([doomed, superset_doomed, viable, empty], constr)
        assert survivors == [viable, empty]
        assert solver.statistics.candidates_pruned == 2

    def test_muses_only_apply_to_the_constraints_unknowns(self):
        constr = guard_constraint()
        solver = MusFixSolver({})
        solver.enumerate_muses(constr, POOL)
        # the same qualifiers under an unknown the constraint never
        # mentions are untouched
        other = {"D": (ops.ge(x, ONE), ops.le(x, ZERO))}
        assert solver.prune_candidates([other], constr) == [other]


class TestBudgetAndResume:
    def test_budget_caps_theory_checks(self):
        constr = guard_constraint()
        solver = MusFixSolver({}, budget=3)
        solver.enumerate_muses(constr, POOL)
        assert solver.statistics.theory_checks <= 3

    def test_exhausted_budget_never_reports_a_non_minimal_core(self):
        constr = guard_constraint()
        for budget in range(1, 8):
            solver = MusFixSolver({}, budget=budget)
            for mus in solver.enumerate_muses(constr, POOL):
                assert not consistent(mus)
                for dropped in mus:
                    assert consistent([q for q in mus if q is not dropped])

    def test_enumeration_is_resumable(self):
        constr = guard_constraint()
        solver = MusFixSolver({}, budget=10_000)
        first = solver.enumerate_muses(constr, POOL)
        checks_after_first = solver.statistics.theory_checks
        again = solver.enumerate_muses(constr, POOL)
        # the lattice was exhausted: resuming proposes no new seeds and
        # spends no further theory checks
        assert {frozenset(m) for m in again} == {frozenset(m) for m in first}
        assert solver.statistics.theory_checks == checks_after_first


class TestLemmaBus:
    def test_export_import_round_trip(self):
        constr = guard_constraint()
        learner = MusFixSolver({})
        learner.enumerate_muses(constr, POOL)
        lemmas = learner.export_muses()
        assert len(lemmas) == learner.statistics.muses_enumerated == 3

        receiver = MusFixSolver({})
        assert receiver.import_muses(lemmas) == 3
        assert receiver.import_muses(lemmas) == 0  # idempotent
        # imported lemmas prune but are not counted as enumerated here
        assert receiver.statistics.muses_enumerated == 0
        assert receiver.statistics.lemmas_imported == 3
        doomed = {"C": (ops.ge(x, ONE), ops.le(x, ZERO))}
        assert receiver.prune_candidates([doomed], constr) == []
        # and they are returned without re-running MARCO
        assert {frozenset(m) for m in receiver.enumerate_muses(constr, POOL)} == {
            frozenset(m) for (_, m) in lemmas
        }


class TestVacuity:
    def test_is_vacuous_learns_a_mus_from_the_witness(self):
        hard = ops.ge(x, IntLit(5))
        constr = guard_constraint(hard)
        solver = MusFixSolver({})
        assert solver.is_vacuous(constr, (ops.ge(x, ZERO), ops.le(x, ZERO)))
        assert not solver.is_vacuous(constr, (ops.ge(x, ZERO),))
        # the discovery was shrunk and recorded: it now prunes candidates
        doomed = {"C": (ops.ge(x, ZERO), ops.le(x, ZERO))}
        assert solver.prune_candidates([doomed], constr) == []


class TestDeprecatedLocation:
    def test_old_import_path_warns_and_aliases(self):
        from repro.typecheck import musfix as old_location

        with pytest.warns(DeprecationWarning, match="moved to repro.horn.musfix"):
            aliased = old_location.MusFixSolver
        assert aliased is MusFixSolver

    def test_unknown_attribute_still_raises(self):
        from repro.typecheck import musfix as old_location

        with pytest.raises(AttributeError):
            old_location.does_not_exist


class TestInterfaceShape:
    """The interface the stub fixed is the interface that shipped."""

    def test_fixed_signatures(self):
        import inspect

        enumerate_parameters = list(
            inspect.signature(MusFixSolver.enumerate_muses).parameters
        )
        assert enumerate_parameters == ["self", "constraint", "valuation"]
        prune_parameters = list(inspect.signature(MusFixSolver.prune_candidates).parameters)
        assert prune_parameters == ["self", "candidates", "constraint"]

    def test_methods_no_longer_raise_not_implemented(self):
        constr = HornConstraint((Unknown("C"),), ops.ge(x, ZERO))
        solver = MusFixSolver({})
        assert solver.enumerate_muses(constr, [ops.bool_lit(True)]) == []
        assert solver.prune_candidates([], constr) == []
