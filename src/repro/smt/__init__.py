"""The SMT substrate: SAT core, EUF, LIA, set encoding, lazy DPLL(T)."""

from .euf import CongruenceClosure, TermBank
from .interface import default_solver, reset_default_solver, satisfiable, statistics, valid
from .lia import Constraint, LiaSolver, LinearExpr, Relation
from .sat import SatResult, SatSolver, solve_clauses
from .sets import eliminate_sets, mentions_sets
from .solver import SmtSolver, SolverStatistics
from .theory import Literal, TheoryChecker

__all__ = [
    "CongruenceClosure",
    "Constraint",
    "LiaSolver",
    "LinearExpr",
    "Literal",
    "Relation",
    "SatResult",
    "SatSolver",
    "SmtSolver",
    "SolverStatistics",
    "TermBank",
    "TheoryChecker",
    "default_solver",
    "eliminate_sets",
    "mentions_sets",
    "reset_default_solver",
    "satisfiable",
    "solve_clauses",
    "statistics",
    "valid",
]
