"""Program terms (Fig. 2 of the paper).

The paper splits terms into *elimination* terms ``E`` (variables and
applications — terms whose type is inferred) and *introduction* terms ``I``
(lambdas, conditionals, matches, fixpoints — terms checked against a goal
type).  The round-trip enumerator of Sec. 4 leans on that split; here it
drives the bidirectional checker's mode choice.

.. code-block:: text

    E ::= x | c | E E
    I ::= E | \\x . I | if E then I else I | match E with alts | fix f . I

``Match`` scrutinizes a datatype value: each :class:`MatchCase` names a
constructor and binds its arguments.  ``Fix`` introduces recursion; the
checker types the recursive occurrence at a signature strengthened with a
lexicographic termination metric (see
:mod:`repro.typecheck.checker`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Set, Tuple

from .types import RType


class Term:
    """Base class of program terms."""

    def is_e_term(self) -> bool:
        """Is this an elimination term (type can be inferred)?"""
        return isinstance(self, (VarTerm, IntConst, BoolConst, AppTerm, Annot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return pretty_term(self)


@dataclass(frozen=True, repr=False)
class VarTerm(Term):
    """A program variable occurrence."""

    name: str


@dataclass(frozen=True, repr=False)
class IntConst(Term):
    """An integer constant."""

    value: int


@dataclass(frozen=True, repr=False)
class BoolConst(Term):
    """A boolean constant."""

    value: bool


@dataclass(frozen=True, repr=False)
class AppTerm(Term):
    """Application ``fun arg`` (curried, one argument at a time)."""

    fun: Term
    arg: Term


@dataclass(frozen=True, repr=False)
class LambdaTerm(Term):
    """Abstraction ``\\arg_name . body``."""

    arg_name: str
    body: Term


@dataclass(frozen=True, repr=False)
class IfTerm(Term):
    """Conditional ``if cond then then_ else else_``."""

    cond: Term
    then_: Term
    else_: Term


@dataclass(frozen=True, repr=False)
class LetTerm(Term):
    """``let name = value in body`` (monomorphic let)."""

    name: str
    value: Term
    body: Term


@dataclass(frozen=True, repr=False)
class MatchCase(Term):
    """One alternative ``C x1 ... xk -> body`` of a match."""

    constructor: str
    binders: Tuple[str, ...]
    body: Term


@dataclass(frozen=True, repr=False)
class MatchTerm(Term):
    """``match scrutinee with cases`` over a datatype value."""

    scrutinee: Term
    cases: Tuple[MatchCase, ...]


@dataclass(frozen=True, repr=False)
class FixTerm(Term):
    """``fix name . body`` — recursion, checked with termination metrics."""

    name: str
    body: Term


@dataclass(frozen=True, repr=False)
class Annot(Term):
    """A term with a type ascription ``(term :: rtype)``."""

    term: Term
    rtype: RType


# ---------------------------------------------------------------------------
# builders
# ---------------------------------------------------------------------------


def v(name: str) -> VarTerm:
    """A variable occurrence."""
    return VarTerm(name)


def lit(value: "int | bool") -> Term:
    """An integer or boolean constant."""
    if isinstance(value, bool):
        return BoolConst(value)
    return IntConst(value)


def app(fun: Term, *args: Term) -> Term:
    """Curried application of ``fun`` to one or more arguments."""
    if not args:
        raise ValueError("app needs at least one argument")
    result = fun
    for arg in args:
        result = AppTerm(result, arg)
    return result


def lam(*arg_names: str, body: Optional[Term] = None) -> Term:
    """Nested lambdas: ``lam("x", "y", body=e)`` is ``\\x . \\y . e``."""
    if body is None:
        raise ValueError("lam needs a body")
    result = body
    for name in reversed(arg_names):
        result = LambdaTerm(name, result)
    return result


def if_(cond: Term, then_: Term, else_: Term) -> IfTerm:
    """A conditional."""
    return IfTerm(cond, then_, else_)


def let(name: str, value: Term, body: Term) -> LetTerm:
    """A monomorphic let binding."""
    return LetTerm(name, value, body)


def annot(term: Term, rtype: RType) -> Annot:
    """A type ascription."""
    return Annot(term, rtype)


def alt(constructor: str, *binders: str, body: Optional[Term] = None) -> MatchCase:
    """One match alternative ``constructor binders -> body``."""
    if body is None:
        raise ValueError("alt needs a body")
    return MatchCase(constructor, tuple(binders), body)


def match_(scrutinee: Term, *cases: MatchCase) -> MatchTerm:
    """A match over a datatype scrutinee."""
    if not cases:
        raise ValueError("match needs at least one case")
    return MatchTerm(scrutinee, tuple(cases))


def fix_(name: str, body: Term) -> FixTerm:
    """A recursive definition ``fix name . body``."""
    return FixTerm(name, body)


def term_free_names(term: Term) -> Set[str]:
    """The program variables occurring free in a term."""
    if isinstance(term, VarTerm):
        return {term.name}
    if isinstance(term, (IntConst, BoolConst)):
        return set()
    if isinstance(term, AppTerm):
        return term_free_names(term.fun) | term_free_names(term.arg)
    if isinstance(term, LambdaTerm):
        return term_free_names(term.body) - {term.arg_name}
    if isinstance(term, IfTerm):
        return term_free_names(term.cond) | term_free_names(term.then_) | term_free_names(
            term.else_
        )
    if isinstance(term, LetTerm):
        return term_free_names(term.value) | (term_free_names(term.body) - {term.name})
    if isinstance(term, MatchCase):
        return term_free_names(term.body) - set(term.binders)
    if isinstance(term, MatchTerm):
        result = term_free_names(term.scrutinee)
        for case in term.cases:
            result |= term_free_names(case)
        return result
    if isinstance(term, FixTerm):
        return term_free_names(term.body) - {term.name}
    if isinstance(term, Annot):
        return term_free_names(term.term)
    raise TypeError(f"unknown term node: {term!r}")


# ---------------------------------------------------------------------------
# pretty printing
# ---------------------------------------------------------------------------


def _extends_right(term: Term) -> bool:
    """Would more input to the right be swallowed by this term when parsed?

    A match's case list keeps consuming ``| C ... -> ...`` alternatives, so
    any term whose rightmost leaf is an (unparenthesized) match must be
    wrapped in parentheses when printed inside another match's case.
    """
    if isinstance(term, MatchTerm):
        return True
    if isinstance(term, (LambdaTerm, FixTerm)):
        return _extends_right(term.body)
    if isinstance(term, IfTerm):
        return _extends_right(term.else_)
    if isinstance(term, LetTerm):
        return _extends_right(term.body)
    return False


#: Term forms that must be parenthesized in application position.
_NON_ATOMIC = (AppTerm, LambdaTerm, IfTerm, LetTerm, MatchTerm, FixTerm)


def pretty_term(term: Term) -> str:
    """Render a term in surface syntax (re-parseable by ``parse_term``)."""
    if isinstance(term, VarTerm):
        return term.name
    if isinstance(term, IntConst):
        return str(term.value)
    if isinstance(term, BoolConst):
        return "True" if term.value else "False"
    if isinstance(term, AppTerm):
        fun = pretty_term(term.fun)
        if isinstance(term.fun, (LambdaTerm, IfTerm, LetTerm, MatchTerm, FixTerm)):
            fun = f"({fun})"
        arg = pretty_term(term.arg)
        if isinstance(term.arg, _NON_ATOMIC):
            arg = f"({arg})"
        return f"{fun} {arg}"
    if isinstance(term, LambdaTerm):
        return f"\\{term.arg_name} . {pretty_term(term.body)}"
    if isinstance(term, IfTerm):
        return (
            f"if {pretty_term(term.cond)} "
            f"then {pretty_term(term.then_)} "
            f"else {pretty_term(term.else_)}"
        )
    if isinstance(term, LetTerm):
        return f"let {term.name} = {pretty_term(term.value)} in {pretty_term(term.body)}"
    if isinstance(term, MatchCase):
        binders = "".join(f" {binder}" for binder in term.binders)
        body = pretty_term(term.body)
        if _extends_right(term.body):
            body = f"({body})"
        return f"{term.constructor}{binders} -> {body}"
    if isinstance(term, MatchTerm):
        scrutinee = pretty_term(term.scrutinee)
        if isinstance(term.scrutinee, (LambdaTerm, IfTerm, LetTerm, MatchTerm, FixTerm)):
            scrutinee = f"({scrutinee})"
        cases = " | ".join(pretty_term(case) for case in term.cases)
        return f"match {scrutinee} with {cases}"
    if isinstance(term, FixTerm):
        return f"fix {term.name} . {pretty_term(term.body)}"
    if isinstance(term, Annot):
        return f"({pretty_term(term.term)} :: {term.rtype!r})"
    raise TypeError(f"unknown term node: {term!r}")
