"""Unit tests for the CI perf regression gate (scripts/check_bench_regression.py)."""

import importlib.util
import json
from pathlib import Path

SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"
spec = importlib.util.spec_from_file_location("check_bench_regression", SCRIPT)
gate = importlib.util.module_from_spec(spec)
spec.loader.exec_module(gate)


def report(path: Path, **means) -> Path:
    payload = {
        "suite": "test",
        "benchmarks": [{"name": name, "mean_s": mean} for name, mean in means.items()],
    }
    path.write_text(json.dumps(payload))
    return path


class TestCompare:
    def test_within_threshold_passes(self):
        failures, ratios, skipped = gate.compare(
            {"a": 0.010, "b": 0.020}, {"a": 0.019, "b": 0.030}, 2.5, 0.002
        )
        assert failures == []
        assert {name for name, _ in ratios} == {"a", "b"}
        assert skipped == []

    def test_regression_fails_per_case(self):
        baseline = {"a": 0.010, "b": 0.010}
        failures, _, _ = gate.compare(baseline, {"a": 0.030, "b": 0.011}, 2.5, 0.002)
        assert len(failures) == 1
        assert failures[0].startswith("a ")
        assert "2.50x" in failures[0]

    def test_threshold_is_strict_greater(self):
        failures, _, _ = gate.compare({"a": 0.010}, {"a": 0.025}, 2.5, 0.002)
        assert failures == []

    def test_sub_noise_cases_are_exempt(self):
        """A 10x blowup between 50us and 500us is machine noise, not a
        solver regression."""
        failures, ratios, skipped = gate.compare({"a": 0.00005}, {"a": 0.0005}, 2.5, 0.002)
        assert failures == []
        assert ratios == []
        assert skipped and "sub-noise" in skipped[0]

    def test_one_sided_cases_are_reported_not_failed(self):
        failures, ratios, skipped = gate.compare({"old": 0.01}, {"new": 0.01}, 2.5, 0.002)
        assert failures == []
        assert ratios == []
        assert any("no baseline" in note for note in skipped)
        assert any("not measured" in note for note in skipped)


class TestEndToEnd:
    def test_main_exit_codes_and_summary(self, tmp_path, capsys, monkeypatch):
        baseline = report(tmp_path / "base.json", case=0.010)
        good = report(tmp_path / "good.json", case=0.012)
        bad = report(tmp_path / "bad.json", case=0.100)

        monkeypatch.setattr(
            "sys.argv",
            ["gate", "--baseline", str(baseline), "--candidate", str(good)],
        )
        assert gate.main() == 0
        summary = capsys.readouterr().out.strip()
        assert summary.count("\n") == 0, "gate must print exactly one line"
        assert "OK" in summary and "worst: case" in summary

        monkeypatch.setattr(
            "sys.argv",
            ["gate", "--baseline", str(baseline), "--candidate", str(bad)],
        )
        assert gate.main() == 1
        summary = capsys.readouterr().out.strip()
        assert "FAIL" in summary and "case 10.00x > 2.50x" in summary

    def test_committed_baselines_are_loadable(self):
        root = SCRIPT.parent.parent
        horn = gate.load_means(root / "BENCH_horn.json")
        typecheck = gate.load_means(root / "BENCH_typecheck.json")
        smt = gate.load_means(root / "BENCH_smt.json")
        assert {"horn.max", "horn.abs"} <= set(horn)
        assert {
            "typecheck.length",
            "typecheck.append",
            "typecheck.replicate",
            "typecheck.stutter",
            "typecheck.stutter-reject",
        } == set(typecheck)
        assert {
            "smt.pigeonhole-6",
            "smt.horn-chain",
            "smt.assumption-churn",
            "smt.stutter-deep",
        } == set(smt)
