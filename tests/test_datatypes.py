"""Datatypes end-to-end: match elaboration, measures, and terminating fix.

The paper's Sec. 5 list benchmarks: ``length``, ``append``, ``replicate``
and ``stutter`` are checked against measure-refined ``List`` signatures;
wrong-length variants must be rejected with provenance naming the failing
case, and the termination metric must refute non-decreasing recursion.
"""

import pytest

from repro.horn import SolveOptions
from repro.logic import ops
from repro.logic.formulas import App, Var, value_var
from repro.logic.measures import MeasureCase, MeasureDef, instantiate_postconditions
from repro.logic.sorts import INT, VarSort
from repro.syntax import (
    arrow,
    data_type,
    int_type,
    len_measure,
    list_datatype,
    parse_declarations,
    parse_term,
    parse_type,
    type_var,
)
from repro.syntax.types import INT_BASE, base_sort
from repro.typecheck import (
    EMPTY,
    MatchError,
    TerminationError,
    TypecheckSession,
)

INC = "a:Int -> {Int | nu == a + 1}"
DEC = "a:Int -> {Int | nu == a - 1}"
LEQ = "a:Int -> b:Int -> {Bool | nu <==> a <= b}"

LENGTH = "fix length . \\xs . match xs with Nil -> 0 | Cons y ys -> inc (length ys)"
APPEND = (
    "fix append . \\xs . \\ys . "
    "match xs with Nil -> ys | Cons z zs -> Cons z (append zs ys)"
)
REPLICATE = "fix replicate . \\n . \\x . if leq n 0 then Nil else Cons x (replicate (dec n) x)"
STUTTER = (
    "fix stutter . \\xs . "
    "match xs with Nil -> Nil | Cons y ys -> Cons y (Cons y (stutter ys))"
)


def list_session():
    session = TypecheckSession(datatypes=[list_datatype()], measure_defs=[len_measure()])
    env = session.bind_constructors(EMPTY)
    for name, sig in (("inc", INC), ("dec", DEC), ("leq", LEQ)):
        env = env.bind(name, parse_type(sig))
    return session, env


def check_workload(term_src: str, sig_src: str, where: str):
    session, env = list_session()
    sig = parse_type(sig_src, measures=session.measures)
    session.check_program(parse_term(term_src), sig, env, where=where)
    return session, session.solve()


class TestListBenchmarks:
    def test_length(self):
        _, outcome = check_workload(LENGTH, "xs:List a -> {Int | nu == len(xs)}", "length")
        assert outcome.solved

    def test_append(self):
        _, outcome = check_workload(
            APPEND, "xs:List a -> ys:List a -> {List a | len(nu) == len(xs) + len(ys)}",
            "append",
        )
        assert outcome.solved

    def test_replicate(self):
        _, outcome = check_workload(
            REPLICATE, "n:{Int | nu >= 0} -> x:a -> {List a | len(nu) == n}", "replicate"
        )
        assert outcome.solved

    def test_stutter(self):
        _, outcome = check_workload(
            STUTTER, "xs:List a -> {List a | len(nu) == len(xs) + len(xs)}", "stutter"
        )
        assert outcome.solved

    def test_monomorphic_element_type(self):
        """The same programs elaborate at `List Int` via application-site
        unification of the constructors' type variables."""
        _, outcome = check_workload(LENGTH, "xs:List Int -> {Int | nu == len(xs)}", "length")
        assert outcome.solved


class TestRejectedVariants:
    def test_length_without_increment(self):
        _, outcome = check_workload(
            "fix length . \\xs . match xs with Nil -> 0 | Cons y ys -> length ys",
            "xs:List a -> {Int | nu == len(xs)}",
            "length-bad",
        )
        assert not outcome.solved
        assert "length-bad" in outcome.error_message
        assert "case Cons" in outcome.error_message

    def test_stutter_that_only_copies_once(self):
        _, outcome = check_workload(
            "fix stutter . \\xs . match xs with Nil -> Nil | Cons y ys -> Cons y (stutter ys)",
            "xs:List a -> {List a | len(nu) == len(xs) + len(xs)}",
            "stutter-bad",
        )
        assert not outcome.solved
        assert "case Cons" in outcome.failed.origin()

    def test_append_dropping_an_argument(self):
        _, outcome = check_workload(
            "fix append . \\xs . \\ys . match xs with Nil -> Nil "
            "| Cons z zs -> Cons z (append zs ys)",
            "xs:List a -> ys:List a -> {List a | len(nu) == len(xs) + len(ys)}",
            "append-bad",
        )
        assert not outcome.solved
        assert "case Nil" in outcome.failed.origin()


class TestMatchElaboration:
    def test_case_assumptions_unfold_measures(self):
        """The Cons case must see `len(xs) == 1 + len(ys)` as a premise."""
        session, outcome = check_workload(LENGTH, "xs:List a -> {Int | nu == len(xs)}", "length")
        assert outcome.solved
        cons_constraints = [
            c for c in session.constraints if any("case Cons" in p for p in c.provenance)
        ]
        assert cons_constraints
        list_sort = base_sort(data_type("List", [type_var("a")]).base)
        xs, ys = Var("xs", list_sort), Var("ys", list_sort)
        unfolding = ops.eq(
            App("len", (xs,), INT),
            ops.plus(ops.int_lit(1), App("len", (ys,), INT)),
        )
        assert all(unfolding in c.premises for c in cons_constraints)

    def test_postcondition_axioms_join_premises(self):
        """Every emitted constraint carries `len(t) >= 0` for the measure
        applications it mentions."""
        session, _ = check_workload(LENGTH, "xs:List a -> {Int | nu == len(xs)}", "length")
        list_sort = base_sort(data_type("List", [type_var("a")]).base)
        xs = Var("xs", list_sort)
        nonneg = ops.ge(App("len", (xs,), INT), ops.int_lit(0))
        mentioning = [c for c in session.constraints if any("case" in p for p in c.provenance)]
        assert mentioning
        assert all(nonneg in c.premises for c in mentioning)

    def test_element_refinements_flow_into_binders(self):
        """Matching a `List {Int | nu >= 1}` gives the head binder the
        element refinement, so it can justify a positive result."""
        session, env = list_session()
        sig = parse_type(
            "xs:List ({Int | nu >= 1}) -> {Int | nu >= 0}",
            measures=session.measures,
        )
        term = parse_term("\\xs . match xs with Nil -> 0 | Cons y ys -> y")
        session.check_program(term, sig, env, where="heads")
        assert session.solve().solved

    def test_scrutinee_rebinding_is_sound(self):
        """A case binder may shadow the scrutinee itself."""
        _, outcome = check_workload(
            "fix length . \\xs . match xs with Nil -> 0 | Cons y xs -> inc (length xs)",
            "xs:List a -> {Int | nu == len(xs)}",
            "shadow",
        )
        assert outcome.solved

    def test_non_exhaustive_match_rejected(self):
        session, env = list_session()
        with pytest.raises(MatchError, match="missing Cons"):
            session.check_program(
                parse_term("\\xs . match xs with Nil -> 0"),
                parse_type("xs:List a -> Int"),
                env,
                where="partial",
            )

    def test_unknown_constructor_rejected(self):
        session, env = list_session()
        with pytest.raises(MatchError, match="not a constructor"):
            session.check_program(
                parse_term("\\xs . match xs with Nil -> 0 | Snoc y ys -> 0"),
                parse_type("xs:List a -> Int"),
                env,
                where="unknown-ctor",
            )

    def test_wrong_binder_count_rejected(self):
        session, env = list_session()
        with pytest.raises(MatchError, match="takes 2 arguments"):
            session.check_program(
                parse_term("\\xs . match xs with Nil -> 0 | Cons y -> 0"),
                parse_type("xs:List a -> Int"),
                env,
                where="arity",
            )

    def test_undeclared_datatype_rejected(self):
        session = TypecheckSession()
        env = EMPTY.bind("t", data_type("Tree", [int_type()]))
        with pytest.raises(MatchError, match="no declaration"):
            session.check_program(
                parse_term("\\t . match t with Leaf -> 0"),
                parse_type("t:Tree Int -> Int"),
                env.bind("t", data_type("Tree", [int_type()])),
                where="undeclared",
            )

    def test_non_datatype_scrutinee_rejected(self):
        session, env = list_session()
        with pytest.raises(MatchError, match="expected a datatype"):
            session.check_program(
                parse_term("\\n . match n with Nil -> 0"),
                parse_type("n:Int -> Int"),
                env,
                where="scalar-scrutinee",
            )


class TestFixTermination:
    def test_non_decreasing_recursion_refuted(self):
        """Calling fix on the same argument fails the metric obligation."""
        _, outcome = check_workload(
            "fix bad . \\xs . match xs with Nil -> 0 | Cons y ys -> bad xs",
            "xs:List a -> {Int | nu >= 0}",
            "non-decreasing",
        )
        assert not outcome.solved
        assert "case Cons" in outcome.failed.origin()

    def test_negative_int_descent_refuted(self):
        """An Int metric must stay non-negative: recursing on n - 1 without
        a lower-bound guard cannot terminate."""
        _, outcome = check_workload(
            "fix bad . \\n . bad (dec n)",
            "n:Int -> {Int | nu >= 0}",
            "negative-descent",
        )
        assert not outcome.solved

    def test_no_metric_argument_raises(self):
        session, env = list_session()
        with pytest.raises(TerminationError, match="well-founded metric"):
            session.check_program(
                parse_term("fix f . \\b . b"),
                parse_type("b:Bool -> Bool"),
                env,
                where="no-metric",
            )

    def test_fix_without_lambda_spine_raises(self):
        session, env = list_session()
        with pytest.raises(TerminationError, match="well-founded metric"):
            session.check_program(
                parse_term("fix f . f"),
                parse_type("b:Bool -> Bool"),
                env,
                where="no-lambdas",
            )

    def test_integer_accumulator_does_not_need_nonnegativity(self):
        """Structural recursion on the list with an unconstrained Int
        accumulator (passed through or decremented) must typecheck: the
        non-negativity bound belongs to the strictly-decreasing component,
        not to every metric-bearing argument."""
        for call in ("f n ys", "f (dec n) ys"):
            _, outcome = check_workload(
                f"fix f . \\n . \\xs . match xs with Nil -> n | Cons y ys -> {call}",
                "n:Int -> xs:List a -> Int",
                "accumulator",
            )
            assert outcome.solved, call

    def test_shadowed_spine_binder_keeps_its_metric(self):
        """Soundness regression: with `\\x . \\x .`, the termination metric
        of the first argument must track the renamed outer binder — the
        recursive call `f (dec x) x` never decreases the second (tested)
        argument, so the program must be refuted exactly like its
        distinct-binder alpha-variant."""
        for binders in ("\\x . \\x .", "\\w . \\x ."):
            _, outcome = check_workload(
                f"fix f . {binders} if leq x 1 then 0 else f (dec x) x",
                "p:Int -> q:Int -> Int",
                "shadow-metric",
            )
            assert not outcome.solved, binders

    def test_lambda_binder_shadowing_the_fix_name(self):
        """A lambda binder reusing the fix name shadows the recursive
        occurrence; the body must see the argument, not the recursive
        signature (and no termination metric is demanded)."""
        session, env = list_session()
        session.check_program(
            parse_term("fix f . \\f . f"),
            parse_type("f:Int -> Int"),
            env,
            where="shadowed-fix",
        )
        assert session.solve().solved

    def test_lexicographic_second_argument(self):
        """Recursion that keeps the first list and shrinks the second is
        accepted: the first argument's metric stays equal (<=) and the
        second strictly decreases."""
        _, outcome = check_workload(
            "fix f . \\xs . \\ys . match ys with Nil -> 0 | Cons z zs -> inc (f xs zs)",
            "xs:List a -> ys:List a -> {Int | nu == len(ys)}",
            "lex",
        )
        assert outcome.solved

    def test_lexicographic_reset_of_later_component(self):
        """Genuine lexicographic descent: the first list strictly shrinks,
        which licenses the second to grow (the reverse-append shape)."""
        _, outcome = check_workload(
            "fix f . \\xs . \\ys . match xs with Nil -> 0 | Cons a as -> f as (Cons a ys)",
            "xs:List Int -> ys:List Int -> Int",
            "lex-reset",
        )
        assert outcome.solved

    def test_unbounded_escape_is_rejected(self):
        """An escape disjunct needs its own non-negativity bound: strictly
        decreasing an unconstrained Int must not license keeping the list."""
        _, outcome = check_workload(
            "fix f . \\n . \\xs . match xs with Nil -> 0 | Cons y ys -> f (dec n) xs",
            "n:Int -> xs:List a -> Int",
            "unbounded-escape",
        )
        assert not outcome.solved


class TestLiquidInferenceOverDatatypes:
    def test_length_postcondition_is_discovered(self):
        """Measure applications join the qualifier candidates, so the Horn
        solver can discover `nu == len(xs)` for length's fresh unknown."""
        session, env = list_session()
        elem = type_var("a")
        inner = env.bind("xs", data_type("List", [elem]))
        result = session.fresh_scalar(inner, INT_BASE)
        sig = arrow("xs", data_type("List", [elem]), result)
        session.check(env, parse_term(LENGTH), sig, where="length-infer")
        outcome = session.solve(SolveOptions(minimize=True))
        assert outcome.solved
        list_sort = base_sort(data_type("List", [elem]).base)
        len_xs = App("len", (Var("xs", list_sort),), INT)
        nu = value_var(INT)
        valuation = set(outcome.assignment[result.refinement.name])
        assert ops.eq(nu, len_xs) in valuation or ops.eq(len_xs, nu) in valuation


class TestDeclarationsDriveTheChecker:
    SURFACE = """
    data List a where
        Nil :: {List a | len(nu) == 0}
      | Cons :: x:a -> xs:List a -> {List a | len(nu) == 1 + len(xs)}

    measure len :: List a -> {Int | nu >= 0} where
        Nil -> 0 | Cons x xs -> 1 + len(xs)
    """

    def test_parsed_declarations_typecheck_length(self):
        declarations = parse_declarations(self.SURFACE)
        session = TypecheckSession(
            datatypes=declarations.datatypes.values(),
            measure_defs=declarations.measures.values(),
        )
        env = session.bind_constructors(EMPTY).bind("inc", parse_type(INC))
        sig = parse_type("xs:List a -> {Int | nu == len(xs)}", measures=session.measures)
        session.check_program(parse_term(LENGTH), sig, env, where="parsed-prelude")
        assert session.solve().solved

    def test_parsed_declarations_match_the_builtin_prelude(self):
        declarations = parse_declarations(self.SURFACE)
        assert declarations.datatypes["List"] == list_datatype()
        assert declarations.measures["len"] == len_measure()


class TestApplicationUnification:
    """Type-variable unification threads through *later* curried arguments
    (ROADMAP gap closed for the synthesis enumerator): `Cons (dec n) xs`
    must instantiate the element variable from `xs` even though the first
    argument's shape is unknown at the application site."""

    @staticmethod
    def scalar_of(rtype):
        from repro.syntax.types import ContextualType

        while isinstance(rtype, ContextualType):
            rtype = rtype.body
        return rtype

    def test_later_argument_drives_instantiation(self):
        session, env = list_session()
        env = env.bind("n", int_type()).bind("xs", parse_type("List Int"))
        inferred = self.scalar_of(session.infer(env, parse_term("Cons (dec n) xs"), where="unify"))
        [elem] = inferred.base.args
        assert elem.base == INT_BASE
        assert session.solve().solved

    def test_first_argument_still_wins_when_known(self):
        session, env = list_session()
        env = env.bind("xs", parse_type("List Int"))
        inferred = self.scalar_of(session.infer(env, parse_term("Cons 3 xs"), where="unify"))
        [elem] = inferred.base.args
        assert elem.base == INT_BASE

    def test_binary_polymorphic_component(self):
        """A component whose second type variable only the second argument
        determines: `second n True` must elaborate at b := Bool."""
        from repro.syntax import generalize

        session, env = list_session()
        env = env.bind("second", generalize(parse_type("x:a -> y:b -> {b | nu == y}")))
        env = env.bind("n", int_type())
        inferred = self.scalar_of(session.infer(env, parse_term("second n True"), where="second"))
        from repro.syntax.types import BOOL_BASE

        assert inferred.base == BOOL_BASE
        assert session.solve().solved

    def test_monomorphic_checking_through_unified_constructor(self):
        _, outcome = check_workload(
            "\\n . \\xs . Cons (dec n) xs",
            "n:Int -> xs:List Int -> {List Int | len(nu) == 1 + len(xs)}",
            "cons-unified",
        )
        assert outcome.solved


class TestMeasureDefs:
    def test_unfold_per_constructor(self):
        length = len_measure()
        list_sort = length.arg_sort
        subject = Var("s", list_sort)
        assert length.unfold(subject, "Nil", []) == ops.eq(
            App("len", (subject,), INT), ops.int_lit(0)
        )
        head, tail = Var("h", VarSort("a")), Var("t", list_sort)
        cons = length.unfold(subject, "Cons", [head, tail])
        assert cons == ops.eq(
            App("len", (subject,), INT),
            ops.plus(ops.int_lit(1), App("len", (tail,), INT)),
        )

    def test_unfold_unknown_constructor_is_trivial(self):
        length = len_measure()
        assert length.unfold(Var("s", length.arg_sort), "Snoc", []) == ops.bool_lit(True)

    def test_unfold_arity_mismatch_raises(self):
        length = len_measure()
        with pytest.raises(ValueError, match="2 binders"):
            length.unfold(Var("s", length.arg_sort), "Cons", [])

    def test_unfold_with_untranslatable_binder_degrades(self):
        """A None argument that the case body needs yields the trivial
        axiom instead of an ill-formed one."""
        length = len_measure()
        subject = Var("s", length.arg_sort)
        assert length.unfold(subject, "Cons", [None, None]) == ops.bool_lit(True)
        # the head is not mentioned by len's Cons case, so it may be None
        tail = Var("t", length.arg_sort)
        assert length.unfold(subject, "Cons", [None, tail]) != ops.bool_lit(True)

    def test_boolean_measures_unfold_with_iff(self):
        list_sort = len_measure().arg_sort
        empty = MeasureDef(
            name="empty",
            datatype="List",
            arg_sort=list_sort,
            result_sort=ops.bool_lit(True).sort,
            cases=(MeasureCase("Nil", (), ops.bool_lit(True)),),
        )
        unfolded = empty.unfold(Var("s", list_sort), "Nil", [])
        assert unfolded == App("empty", (Var("s", list_sort),), ops.bool_lit(True).sort)

    def test_postcondition_instantiation_deduplicates(self):
        length = len_measure()
        xs = Var("xs", length.arg_sort)
        len_xs = App("len", (xs,), INT)
        formulas = [ops.ge(len_xs, ops.int_lit(1)), ops.eq(len_xs, ops.int_lit(2))]
        instances = instantiate_postconditions(formulas, {"len": length})
        assert instances == [ops.ge(len_xs, ops.int_lit(0))]
